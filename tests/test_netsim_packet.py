"""Tests for packets and their serialisation."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import PacketError
from repro.netsim.packet import (
    ETH_TYPE_IP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Packet,
    proto_name,
    proto_number,
)


class TestProtocolNames:
    def test_known_names(self):
        assert proto_name(6) == "tcp"
        assert proto_name(17) == "udp"
        assert proto_number("tcp") == 6
        assert proto_number("UDP") == 17

    def test_numeric_passthrough(self):
        assert proto_number(47) == 47
        assert proto_number("47") == 47
        assert proto_name(47) == "47"

    def test_unknown_name_rejected(self):
        with pytest.raises(PacketError):
            proto_number("carrier-pigeon")


class TestPacketConstruction:
    def test_tcp_constructor(self):
        packet = Packet.tcp("10.0.0.1", "10.0.0.2", 1234, 80, payload="hello")
        assert packet.is_tcp() and packet.is_ip()
        assert packet.five_tuple()[2] == IP_PROTO_TCP

    def test_udp_constructor(self):
        packet = Packet.udp("10.0.0.1", "10.0.0.2", 53, 53)
        assert packet.is_udp()
        assert packet.ip_proto == IP_PROTO_UDP

    def test_proto_accepts_name(self):
        packet = Packet(ip_src="1.1.1.1", ip_dst="2.2.2.2", ip_proto="udp")
        assert packet.ip_proto == IP_PROTO_UDP

    def test_port_out_of_range_rejected(self):
        with pytest.raises(PacketError):
            Packet.tcp("1.1.1.1", "2.2.2.2", 70000, 80)

    def test_vlan_out_of_range_rejected(self):
        with pytest.raises(PacketError):
            Packet(vlan_id=5000)

    def test_unique_packet_ids(self):
        assert Packet().packet_id != Packet().packet_id

    def test_non_ip_packet(self):
        packet = Packet(eth_type=0x0806)
        assert not packet.is_ip()
        assert "eth" in str(packet)


class TestPacketViews:
    def test_five_tuple(self):
        packet = Packet.tcp("10.0.0.1", "10.0.0.2", 1111, 80)
        src, dst, proto, sport, dport = packet.five_tuple()
        assert (str(src), str(dst), proto, sport, dport) == ("10.0.0.1", "10.0.0.2", 6, 1111, 80)

    def test_reply_template_swaps_everything(self):
        packet = Packet.tcp("10.0.0.1", "10.0.0.2", 1111, 80)
        reply = packet.reply_template()
        assert str(reply.ip_src) == "10.0.0.2"
        assert str(reply.ip_dst) == "10.0.0.1"
        assert reply.tp_src == 80 and reply.tp_dst == 1111

    def test_copy_gets_new_id_and_independent_metadata(self):
        packet = Packet.tcp("1.1.1.1", "2.2.2.2", 1, 2, metadata={"k": "v"})
        clone = packet.copy()
        assert clone.packet_id != packet.packet_id
        clone.metadata["k"] = "changed"
        assert packet.metadata["k"] == "v"

    def test_copy_with_overrides(self):
        packet = Packet.tcp("1.1.1.1", "2.2.2.2", 1, 2)
        clone = packet.copy(tp_dst=443)
        assert clone.tp_dst == 443 and packet.tp_dst == 2


class TestWireSize:
    def test_minimum_frame_size(self):
        assert Packet.tcp("1.1.1.1", "2.2.2.2", 1, 2).wire_size() >= 64

    def test_payload_size_override(self):
        packet = Packet.tcp("1.1.1.1", "2.2.2.2", 1, 2, payload_size=1000)
        assert packet.wire_size() >= 1000

    def test_payload_text_counted(self):
        small = Packet.tcp("1.1.1.1", "2.2.2.2", 1, 2, payload="x")
        large = Packet.tcp("1.1.1.1", "2.2.2.2", 1, 2, payload="x" * 500)
        assert large.wire_size() > small.wire_size()

    def test_vlan_tag_adds_bytes(self):
        untagged = Packet.tcp("1.1.1.1", "2.2.2.2", 1, 2, payload_size=200)
        tagged = Packet.tcp("1.1.1.1", "2.2.2.2", 1, 2, payload_size=200, vlan_id=5)
        assert tagged.wire_size() == untagged.wire_size() + 4


class TestSerialization:
    def test_round_trip(self):
        packet = Packet.tcp("10.1.2.3", "10.3.2.1", 1234, 80, payload="identpp")
        restored = Packet.deserialize(packet.serialize())
        assert restored.five_tuple() == packet.five_tuple()
        assert restored.payload == b"identpp"

    def test_truncated_data_rejected(self):
        with pytest.raises(PacketError):
            Packet.deserialize(b"\x00" * 10)

    def test_truncated_payload_rejected(self):
        data = Packet.tcp("1.1.1.1", "2.2.2.2", 1, 2, payload="long payload").serialize()
        with pytest.raises(PacketError):
            Packet.deserialize(data[:-4])

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=65535),
        st.integers(min_value=0, max_value=65535),
        st.binary(max_size=64),
    )
    def test_property_round_trip(self, src, dst, sport, dport, payload):
        packet = Packet(
            ip_src=src, ip_dst=dst, ip_proto=IP_PROTO_TCP,
            tp_src=sport, tp_dst=dport, payload=payload, eth_type=ETH_TYPE_IP,
        )
        restored = Packet.deserialize(packet.serialize())
        assert restored.five_tuple() == packet.five_tuple()
        assert restored.payload_bytes() == payload
