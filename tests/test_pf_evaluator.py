"""Tests for PF+=2 evaluation: functions, last-match semantics, state, delegation."""

import pytest

from repro.crypto.signatures import Signer
from repro.exceptions import PFEvalError, UnknownFunctionError
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.pf.evaluator import PolicyEvaluator
from repro.pf.functions import default_registry
from repro.pf.parser import parse_ruleset
from repro.pf.state import StateTable


def doc(pairs, *more_sections):
    document = ResponseDocument()
    document.add_section(dict(pairs))
    for section in more_sections:
        document.add_section(dict(section))
    return document


def evaluate(policy_text, flow=None, src=None, dst=None, default="block", registry=None):
    evaluator = PolicyEvaluator(parse_ruleset(policy_text), default_action=default,
                                registry=registry)
    return evaluator.evaluate(flow, src, dst)


FLOW = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 80)


class TestLastMatchSemantics:
    def test_default_action_when_nothing_matches(self):
        assert evaluate("", FLOW, default="pass").action == "pass"
        assert evaluate("", FLOW, default="block").action == "block"
        assert evaluate("", FLOW).default_used

    def test_last_matching_rule_wins(self):
        verdict = evaluate("block all\npass all", FLOW)
        assert verdict.is_pass
        verdict = evaluate("pass all\nblock all", FLOW)
        assert not verdict.is_pass

    def test_quick_stops_evaluation(self):
        verdict = evaluate("pass quick all\nblock all", FLOW)
        assert verdict.is_pass and verdict.quick_terminated
        # without quick, the later block would win
        assert not evaluate("pass all\nblock all", FLOW).is_pass

    def test_matched_rules_recorded(self):
        verdict = evaluate("block all\npass all\nblock from any to 1.2.3.4", FLOW)
        assert len(verdict.matched_rules) == 2
        assert verdict.rules_evaluated == 3

    def test_keep_state_reported(self):
        assert evaluate("pass all keep state", FLOW).keep_state
        assert not evaluate("pass all", FLOW).keep_state


class TestEndpointMatching:
    def test_table_and_negation(self):
        policy = (
            "table <lan> { 192.168.0.0/24 }\n"
            "block all\n"
            "pass from <lan> to !<lan>\n"
        )
        outbound = FlowSpec.tcp("192.168.0.10", "8.8.8.8", 1, 80)
        internal = FlowSpec.tcp("192.168.0.10", "192.168.0.20", 1, 80)
        inbound = FlowSpec.tcp("8.8.8.8", "192.168.0.10", 1, 80)
        assert evaluate(policy, outbound).is_pass
        assert not evaluate(policy, internal).is_pass
        assert not evaluate(policy, inbound).is_pass

    def test_literal_address_and_cidr(self):
        policy = "block all\npass from 192.168.0.10 to 192.168.1.0/24"
        assert evaluate(policy, FLOW).is_pass
        other = FlowSpec.tcp("192.168.0.11", "192.168.1.1", 1, 80)
        assert not evaluate(policy, other).is_pass

    def test_port_matching(self):
        policy = "block all\npass from any to any port 80"
        assert evaluate(policy, FLOW).is_pass
        assert not evaluate(policy, FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 22)).is_pass

    def test_source_port_matching(self):
        policy = "block all\npass from any port 40000 to any"
        assert evaluate(policy, FLOW).is_pass
        assert not evaluate(policy, FlowSpec.tcp("1.1.1.1", "2.2.2.2", 41000, 80)).is_pass

    def test_macro_as_address_list(self):
        policy = 'servers = "{ 192.168.1.1 192.168.1.2 }"\nblock all\npass from any to $servers'
        assert evaluate(policy, FLOW).is_pass
        assert not evaluate(policy, FlowSpec.tcp("1.1.1.1", "192.168.1.3", 1, 80)).is_pass

    def test_rule_with_addresses_needs_a_flow(self):
        assert not evaluate("pass from 10.0.0.1 to any", None).is_pass
        assert evaluate("pass all", None, default="block").is_pass


class TestComparisonFunctions:
    def test_eq_string_and_numeric(self):
        policy = "block all\npass all with eq(@src[name], skype)"
        assert evaluate(policy, FLOW, doc({"name": "skype"})).is_pass
        assert not evaluate(policy, FLOW, doc({"name": "pine"})).is_pass
        numeric = "block all\npass all with eq(@src[version], 210)"
        assert evaluate(numeric, FLOW, doc({"version": "210"})).is_pass
        assert evaluate(numeric, FLOW, doc({"version": "210.0"})).is_pass

    def test_eq_missing_key_is_false(self):
        policy = "block all\npass all with eq(@src[name], skype)"
        assert not evaluate(policy, FLOW, doc({})).is_pass

    def test_ordering_functions(self):
        src = doc({"version": "150"})
        assert evaluate("block all\npass all with lt(@src[version], 200)", FLOW, src).is_pass
        assert not evaluate("block all\npass all with gt(@src[version], 200)", FLOW, src).is_pass
        assert evaluate("block all\npass all with lte(@src[version], 150)", FLOW, src).is_pass
        assert evaluate("block all\npass all with gte(@src[version], 150)", FLOW, src).is_pass

    def test_lexicographic_fallback(self):
        src = doc({"codename": "beta"})
        assert evaluate("block all\npass all with gt(@src[codename], alpha)", FLOW, src).is_pass

    def test_includes(self):
        policy = "block all\npass all with includes(@dst[os-patch], MS08-067)"
        assert evaluate(policy, FLOW, None, doc({"os-patch": "MS08-067 MS08-068"})).is_pass
        assert not evaluate(policy, FLOW, None, doc({"os-patch": "MS08-001"})).is_pass
        assert not evaluate(policy, FLOW, None, doc({})).is_pass

    def test_unknown_function_raises(self):
        with pytest.raises(UnknownFunctionError):
            evaluate("pass all with frobnicate(@src[name])", FLOW, doc({"name": "x"}))

    def test_custom_function_registration(self):
        registry = default_registry()
        registry.register("starts_with", lambda ctx, args: str(args[0] or "").startswith(str(args[1])))
        policy = "block all\npass all with starts_with(@src[name], sky)"
        assert evaluate(policy, FLOW, doc({"name": "skype"}), registry=registry).is_pass
        with pytest.raises(PFEvalError):
            registry.register("eq", lambda ctx, args: True)

    def test_member_with_macro_table_and_literal(self):
        policy = (
            'approved = "{ http ssh }"\n'
            "table <servers> { 192.168.1.0/24 }\n"
            "block all\n"
            "pass all with member(@src[name], $approved)\n"
        )
        assert evaluate(policy, FLOW, doc({"name": "ssh"})).is_pass
        assert not evaluate(policy, FLOW, doc({"name": "skype"})).is_pass
        # membership in a table of addresses
        table_policy = (
            "table <servers> { 192.168.1.1 }\nblock all\n"
            "pass all with member(@src[claims-server], servers)"
        )
        assert evaluate(table_policy, FLOW, doc({"claims-server": "192.168.1.1"})).is_pass
        # bare name acts as a one-element list (group membership)
        group_policy = "block all\npass all with member(@src[groupID], research)"
        assert evaluate(group_policy, FLOW, doc({"groupID": "research users"})).is_pass
        assert not evaluate(group_policy, FLOW, doc({"groupID": "staff"})).is_pass


class TestDictionarySemantics:
    def test_latest_value_wins(self):
        policy = "block all\npass all with eq(@src[userID], trusted)"
        document = doc({"userID": "alice"}, {"userID": "trusted"})
        assert evaluate(policy, FLOW, document).is_pass

    def test_concatenated_access(self):
        policy = "block all\npass all with includes(*@src[userID], alice)"
        document = doc({"userID": "alice"}, {"userID": "override"})
        assert evaluate(policy, FLOW, document).is_pass
        # plain access only sees the override
        plain = "block all\npass all with eq(@src[userID], alice)"
        assert not evaluate(plain, FLOW, document).is_pass

    def test_named_dict_lookup(self):
        policy = (
            "dict <pubkeys> { research : key123 }\n"
            "block all\npass all with eq(@pubkeys[research], key123)"
        )
        assert evaluate(policy, FLOW).is_pass

    def test_unknown_dict_rejected(self):
        with pytest.raises(PFEvalError):
            evaluate("pass all with eq(@nosuch[key], 1)", FLOW)

    def test_unknown_macro_rejected(self):
        with pytest.raises(PFEvalError):
            evaluate("pass all with eq($missing, 1)", FLOW)


class TestDelegationFunctions:
    def test_allowed_evaluates_requirements(self):
        requirements = "block all pass all with eq(@src[name], research-app)"
        policy = "block all\npass all with allowed(@dst[requirements])"
        src = doc({"name": "research-app"})
        dst = doc({"requirements": requirements})
        assert evaluate(policy, FLOW, src, dst).is_pass
        assert not evaluate(policy, FLOW, doc({"name": "telnet"}), dst).is_pass

    def test_allowed_rejects_missing_or_malformed_rules(self):
        policy = "block all\npass all with allowed(@dst[requirements])"
        assert not evaluate(policy, FLOW, doc({}), doc({})).is_pass
        assert not evaluate(policy, FLOW, doc({}), doc({"requirements": "not pf (("})).is_pass

    def test_allowed_respects_flow_addresses_in_requirements(self):
        requirements = "block all pass from any to 192.168.1.1"
        policy = "block all\npass all with allowed(@dst[requirements])"
        dst = doc({"requirements": requirements})
        assert evaluate(policy, FLOW, doc({}), dst).is_pass
        other_flow = FlowSpec.tcp("192.168.0.10", "192.168.9.9", 1, 80)
        assert not evaluate(policy, other_flow, doc({}), dst).is_pass

    def test_allowed_recursion_bounded(self):
        # requirements that delegate to themselves must not recurse forever
        requirements = "pass all with allowed(@dst[requirements])"
        policy = "block all\npass all with allowed(@dst[requirements])"
        verdict = evaluate(policy, FLOW, doc({}), doc({"requirements": requirements}))
        assert not verdict.is_pass

    def test_verify_accepts_only_genuine_signatures(self):
        signer = Signer("research", seed=2)
        exe_hash, app, requirements = "hash-value", "research-app", "block all pass all"
        signature = signer.sign([exe_hash, app, requirements])
        policy = (
            f"dict <pubkeys> {{ research : {signer.public_key_hex} }}\n"
            "block all\n"
            "pass all with verify(@dst[req-sig], @pubkeys[research], "
            "@dst[exe-hash], @dst[app-name], @dst[requirements])"
        )
        good = doc({"req-sig": signature, "exe-hash": exe_hash, "app-name": app,
                    "requirements": requirements})
        assert evaluate(policy, FLOW, None, good).is_pass
        tampered = doc({"req-sig": signature, "exe-hash": exe_hash, "app-name": app,
                        "requirements": requirements + " pass all"})
        assert not evaluate(policy, FLOW, None, tampered).is_pass
        wrong_signer = Signer("imposter", seed=3)
        forged = doc({"req-sig": wrong_signer.sign([exe_hash, app, requirements]),
                      "exe-hash": exe_hash, "app-name": app, "requirements": requirements})
        assert not evaluate(policy, FLOW, None, forged).is_pass

    def test_verify_missing_values_fails_closed(self):
        policy = (
            "dict <pubkeys> { research : 10001.abc }\n"
            "block all\n"
            "pass all with verify(@dst[req-sig], @pubkeys[research], @dst[exe-hash])"
        )
        assert not evaluate(policy, FLOW, None, doc({"exe-hash": "x"})).is_pass


class TestStateTable:
    def test_match_both_directions(self):
        table = StateTable()
        flow = FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1000, 80)
        table.add(flow, now=0.0, cookie="c1")
        assert table.match(flow, now=1.0) is not None
        assert table.match(flow.reversed(), now=2.0) is not None
        assert flow in table and flow.reversed() in table

    def test_miss_counted(self):
        table = StateTable()
        assert table.match(FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 2)) is None
        assert table.misses == 1

    def test_idle_expiry(self):
        table = StateTable(timeout=10.0)
        flow = FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1000, 80)
        table.add(flow, now=0.0)
        assert table.match(flow, now=5.0) is not None
        assert table.match(flow, now=100.0) is None
        assert len(table) == 0

    def test_explicit_expire(self):
        table = StateTable(timeout=10.0)
        table.add(FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 2), now=0.0)
        table.add(FlowSpec.tcp("1.1.1.1", "2.2.2.2", 3, 4), now=50.0)
        assert table.expire(now=20.0) == 1
        assert len(table) == 1

    def test_remove_by_cookie(self):
        table = StateTable()
        table.add(FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 2), cookie="a")
        table.add(FlowSpec.tcp("1.1.1.1", "2.2.2.2", 3, 4), cookie="b")
        assert table.remove_by_cookie("a") == 1
        assert len(table) == 1


class TestPaperSection33Example:
    """The §3.3 example policy behaves as the prose describes."""

    POLICY = (
        "table <mail-server> {192.168.42.32}\n"
        "block all\n"
        "pass from any with member(@src[groupID], users) with eq(@src[app-name], pine) "
        "to <mail-server> with eq(@dst[userID], smtp)\n"
    )
    MAIL_FLOW = FlowSpec.tcp("10.0.0.5", "192.168.42.32", 40000, 25)

    def test_compliant_flow_passes(self):
        verdict = evaluate(self.POLICY, self.MAIL_FLOW,
                           doc({"groupID": "users staff", "app-name": "pine"}),
                           doc({"userID": "smtp"}))
        assert verdict.is_pass

    def test_wrong_application_blocked(self):
        verdict = evaluate(self.POLICY, self.MAIL_FLOW,
                           doc({"groupID": "users", "app-name": "thunderbird"}),
                           doc({"userID": "smtp"}))
        assert not verdict.is_pass

    def test_wrong_group_blocked(self):
        verdict = evaluate(self.POLICY, self.MAIL_FLOW,
                           doc({"groupID": "guests", "app-name": "pine"}),
                           doc({"userID": "smtp"}))
        assert not verdict.is_pass

    def test_wrong_destination_user_blocked(self):
        verdict = evaluate(self.POLICY, self.MAIL_FLOW,
                           doc({"groupID": "users", "app-name": "pine"}),
                           doc({"userID": "www"}))
        assert not verdict.is_pass

    def test_wrong_server_blocked(self):
        flow = FlowSpec.tcp("10.0.0.5", "192.168.42.99", 40000, 25)
        verdict = evaluate(self.POLICY, flow,
                           doc({"groupID": "users", "app-name": "pine"}),
                           doc({"userID": "smtp"}))
        assert not verdict.is_pass
