"""Tests for topology building, statistics and traces."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import TopologyError
from repro.netsim.nodes import Node
from repro.netsim.packet import Packet
from repro.netsim.statistics import Counter, Histogram, StatsRegistry
from repro.netsim.topology import Topology, build_linear_topology
from repro.netsim.trace import PacketTrace


def star_topology():
    topo = Topology("star")
    hub = topo.add_node(Node("hub"))
    leaves = [topo.add_node(Node(f"leaf{i}")) for i in range(3)]
    for leaf in leaves:
        topo.add_link(hub, leaf, latency=1e-3)
    return topo, hub, leaves


class TestTopology:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node(Node("a"))
        with pytest.raises(TopologyError):
            topo.add_node(Node("a"))

    def test_unknown_node_rejected(self):
        with pytest.raises(TopologyError):
            Topology().node("ghost")

    def test_nodes_attached_to_simulator(self):
        topo = Topology()
        node = topo.add_node(Node("a"))
        assert node.sim is topo.sim

    def test_link_between(self):
        topo, hub, leaves = star_topology()
        assert topo.link_between(hub, leaves[0]) is not None
        assert topo.link_between(leaves[0], leaves[1]) is None

    def test_self_link_rejected(self):
        topo = Topology()
        node = topo.add_node(Node("a"))
        with pytest.raises(TopologyError):
            topo.add_link(node, node)

    def test_shortest_path(self):
        topo, hub, leaves = star_topology()
        path = topo.shortest_path(leaves[0], leaves[1])
        assert [n.name for n in path] == ["leaf0", "hub", "leaf1"]

    def test_no_path_raises(self):
        topo = Topology()
        topo.add_node(Node("a"))
        topo.add_node(Node("b"))
        with pytest.raises(TopologyError):
            topo.shortest_path("a", "b")
        assert not topo.connected("a", "b")

    def test_path_latency_sums_links(self):
        topo, hub, leaves = star_topology()
        assert topo.path_latency(leaves[0], leaves[1]) == pytest.approx(2e-3)

    def test_egress_port(self):
        topo, hub, leaves = star_topology()
        port = topo.egress_port(hub, leaves[1])
        assert port.node is hub
        assert port.peer().node is leaves[1]

    def test_egress_port_non_adjacent_rejected(self):
        topo, hub, leaves = star_topology()
        with pytest.raises(TopologyError):
            topo.egress_port(leaves[0], leaves[1])

    def test_ip_registry(self):
        topo = Topology()
        node = topo.add_node(Node("host"))
        topo.register_ip("10.0.0.1", node)
        assert topo.node_for_ip("10.0.0.1") is node
        assert topo.node_for_ip("10.0.0.2") is None

    def test_ip_conflict_rejected(self):
        topo = Topology()
        a = topo.add_node(Node("a"))
        b = topo.add_node(Node("b"))
        topo.register_ip("10.0.0.1", a)
        with pytest.raises(TopologyError):
            topo.register_ip("10.0.0.1", b)

    def test_unique_macs(self):
        topo = Topology()
        assert topo.next_mac() != topo.next_mac()

    def test_describe(self):
        topo, _, _ = star_topology()
        info = topo.describe()
        assert info["diameter"] == 2
        assert len(info["links"]) == 3

    def test_linear_builder(self):
        nodes = [Node(f"n{i}") for i in range(4)]
        topo = build_linear_topology(nodes)
        assert [n.name for n in topo.shortest_path("n0", "n3")] == ["n0", "n1", "n2", "n3"]

    def test_linear_builder_needs_two_nodes(self):
        with pytest.raises(TopologyError):
            build_linear_topology([Node("only")])


class TestCounter:
    def test_increment(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        assert int(counter) == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)

    def test_reset(self):
        counter = Counter("c", initial=3)
        counter.reset()
        assert counter.value == 0

    def test_numeric_equality(self):
        counter = Counter("c")
        counter.increment(2)
        assert counter == 2


class TestHistogram:
    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        assert histogram.percentile(99) == 0.0

    def test_basic_statistics(self):
        histogram = Histogram("h")
        histogram.extend([1.0, 2.0, 3.0, 4.0])
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0
        assert histogram.median == pytest.approx(2.5)

    def test_percentile_bounds(self):
        histogram = Histogram("h")
        histogram.extend(range(101))
        assert histogram.percentile(0) == 0
        assert histogram.percentile(100) == 100
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_summary_keys(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        summary = histogram.summary()
        assert set(summary) == {"count", "mean", "min", "p50", "p95", "p99", "max", "stddev"}

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
    def test_property_percentiles_within_range(self, values):
        histogram = Histogram("h")
        histogram.extend(values)
        for pct in (0, 25, 50, 75, 100):
            assert histogram.minimum <= histogram.percentile(pct) <= histogram.maximum

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=2, max_size=50))
    def test_property_percentile_monotone(self, values):
        histogram = Histogram("h")
        histogram.extend(values)
        assert histogram.percentile(10) <= histogram.percentile(90)


class TestStatsRegistry:
    def test_counter_reuse(self):
        registry = StatsRegistry()
        registry.counter("x").increment()
        registry.counter("x").increment()
        assert registry.counter("x").value == 2

    def test_snapshot(self):
        registry = StatsRegistry()
        registry.counter("c").increment(3)
        registry.histogram("h").observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["c"] == 3.0
        assert snapshot["h"]["count"] == 1.0

    def test_reset(self):
        registry = StatsRegistry()
        registry.counter("c").increment()
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.histogram("h").count == 0


class TestTrace:
    def test_record_and_filter(self):
        trace = PacketTrace()
        packet = Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80)
        trace.record(0.0, "sw1", "forward", packet)
        trace.record(0.1, "sw1", "drop", packet)
        trace.record(0.2, "sw2", "forward", packet)
        assert len(trace) == 3
        assert len(trace.filter(where="sw1")) == 2
        assert len(trace.filter(event="drop")) == 1
        assert trace.summary() == {"forward": 2, "drop": 1}

    def test_disabled_trace_records_nothing(self):
        trace = PacketTrace(enabled=False)
        trace.record(0.0, "sw1", "forward", Packet())
        assert len(trace) == 0

    def test_flows_seen_and_bytes(self):
        trace = PacketTrace()
        first = Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80)
        second = Packet.tcp("1.1.1.1", "2.2.2.2", 2, 80)
        trace.record(0.0, "sw", "forward", first)
        trace.record(0.0, "sw", "forward", second)
        assert len(trace.flows_seen()) == 2
        assert trace.bytes_observed(event="forward") == first.wire_size() + second.wire_size()
