"""Tests for the enterprise/branch network builders and the paper config generators."""

import pytest

from repro.crypto.signatures import Signer
from repro.hosts.applications import standard_applications
from repro.identpp.daemon_config import parse_daemon_config
from repro.workloads import paper_configs
from repro.workloads.enterprise import (
    build_branch_network,
    build_enterprise_network,
    build_linear_network,
)


class TestLinearBuilder:
    def test_shape_and_daemons(self):
        net = build_linear_network(switch_count=3)
        assert set(net.switches) == {"sw1", "sw2", "sw3"}
        assert net.topology.connected("client", "server")
        assert set(net.hosts_with_daemons()) == {"client", "server"}

    def test_daemonless_variant(self):
        net = build_linear_network(switch_count=1, client_daemon=False)
        assert "client" not in net.hosts_with_daemons()

    def test_server_listens_on_http(self):
        net = build_linear_network()
        assert net.host("server").sockets.find_listener(80) is not None


class TestEnterpriseBuilder:
    def test_population(self):
        enterprise = build_enterprise_network(clients=3, research_hosts=2)
        assert len(enterprise.clients) == 3
        assert len(enterprise.research_hosts) == 2
        assert "file-server" in enterprise.servers
        net = enterprise.net
        # every named host resolves and is reachable from the clients
        for name in enterprise.clients + enterprise.servers:
            assert net.topology.connected(enterprise.clients[0], name)

    def test_server_facts_and_services(self):
        enterprise = build_enterprise_network(clients=1)
        server = enterprise.net.host("file-server")
        daemon = enterprise.net.daemon("file-server")
        assert "MS08-067" in daemon.host_facts["os-patch"]
        assert server.sockets.find_listener(445) is not None
        assert server.sockets.find_listener(445).process.user.name == "system"

    def test_internet_host_runs_no_daemon(self):
        enterprise = build_enterprise_network(clients=1)
        assert "internet-host" not in enterprise.net.hosts_with_daemons()


class TestBranchBuilder:
    def test_two_controllers_and_bottleneck(self):
        branches = build_branch_network(hosts_per_branch=2)
        assert branches.controller_a is not branches.controller_b
        assert branches.controller_a.switches()[0].name == "sw-branch-a"
        assert branches.controller_b.switches()[0].name == "sw-branch-b"
        bottleneck = next(
            link for link in branches.net.topology.links()
            if link.name == branches.bottleneck_link_name
        )
        assert bottleneck.latency > branches.net.link_latency
        # branch B hosts serve HTTP
        assert branches.net.host(branches.branch_b_hosts[0]).sockets.find_listener(80)


class TestPaperConfigGenerators:
    def test_figure3_signature_verifies_against_reported_values(self):
        signer = Signer("skype-vendor", seed=3)
        skype = next(a for a in standard_applications() if a.name == "skype")
        text = paper_configs.figure3_skype_daemon_config(skype, signer)
        app_config = parse_daemon_config(text).app_for_path(skype.path)
        assert signer.verify(
            app_config.pairs["req-sig"],
            [skype.exe_hash, skype.name, app_config.pairs["requirements"]],
        )

    def test_figure3_placeholder_without_signer(self):
        skype = next(a for a in standard_applications() if a.name == "skype")
        text = paper_configs.figure3_skype_daemon_config(skype)
        assert "21oir...w3eda" in text

    def test_figure4_signature_round_trip(self):
        signer = Signer("research", seed=11)
        app = next(a for a in standard_applications() if a.name == "research-app")
        text = paper_configs.figure4_research_daemon_config(app, signer)
        pairs = parse_daemon_config(text).app_for_path(app.path).pairs
        assert signer.verify(pairs["req-sig"], [app.exe_hash, app.name, pairs["requirements"]])

    def test_figure6_rule_maker_is_secur(self):
        secur = Signer("Secur", seed=23)
        app = next(a for a in standard_applications() if a.name == "thunderbird")
        pairs = parse_daemon_config(
            paper_configs.figure6_thunderbird_daemon_config(app, secur)
        ).app_for_path(app.path).pairs
        assert pairs["rule-maker"] == "Secur"
        assert secur.verify(pairs["req-sig"], [app.exe_hash, app.name, pairs["requirements"]])

    def test_figure5_control_uses_given_tables(self):
        files = paper_configs.figure5_research_control(
            "10001.abc", research_machines=("10.5.0.0/16",), production_machines=("10.6.0.0/16",)
        )
        combined = "\n".join(files.values())
        assert "10.5.0.0/16" in combined and "10.6.0.0/16" in combined

    def test_figure2_and_8_default_deny_first(self):
        header = paper_configs.figure2_control_files()["00-local-header.control"]
        assert "block all" in header
        rules = paper_configs.figure8_control_files()["10-user-rules.control"]
        assert rules.strip().splitlines()[1].startswith("block all")
