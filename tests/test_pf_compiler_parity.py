"""Compiled-vs-interpreted parity: both evaluator paths must agree bit-for-bit.

The compiled fast path (repro.pf.compiler) is only allowed to *skip* rules
that provably cannot match; every verdict — action, deciding rule, the
full matched-rule list, keep_state, quick termination and raised errors —
must be identical to the interpreted AST walk.  These tests sweep the
E10b benchmark rulesets and the paper-figure configurations over flow
grids that exercise ports, prefixes, tables, negation, macros, quick and
delegated allowed() rules.
"""

import pytest

from repro.exceptions import PFEvalError
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.pf.evaluator import PolicyEvaluator
from repro.pf.parser import parse_ruleset
from repro.pf.ruleset import build_ruleset
from repro.workloads.paper_configs import figure2_control_files, figure8_control_files


def doc(entries: dict) -> ResponseDocument:
    document = ResponseDocument()
    document.add_section(entries)
    return document


def assert_parity(evaluator: PolicyEvaluator, flow, src=None, dst=None) -> None:
    """Assert both execution strategies return the same verdict (or error)."""
    try:
        interpreted = evaluator.evaluate_interpreted(flow, src, dst)
    except PFEvalError as error:
        with pytest.raises(PFEvalError) as caught:
            evaluator.evaluate(flow, src, dst)
        assert str(caught.value) == str(error)
        return
    compiled = evaluator.evaluate(flow, src, dst)
    assert compiled.action == interpreted.action
    assert compiled.rule is interpreted.rule
    assert compiled.matched_rules == interpreted.matched_rules
    assert compiled.keep_state == interpreted.keep_state
    assert compiled.quick_terminated == interpreted.quick_terminated
    assert compiled.default_used == interpreted.default_used


def e10b_policy(rule_count: int) -> PolicyEvaluator:
    """The exact ruleset shape bench_latency_throughput.py sweeps."""
    lines = ["block all"]
    for index in range(rule_count):
        lines.append(
            f"pass from any to 10.{index % 250}.0.0/16 port {1000 + index} "
            f"with eq(@src[name], app{index})"
        )
    return PolicyEvaluator(parse_ruleset("\n".join(lines)), default_action="block")


class TestE10bRulesetParity:
    @pytest.mark.parametrize("size", [10, 100, 500])
    def test_port_and_prefix_sweep(self, size):
        evaluator = e10b_policy(size)
        src = doc({"name": "app1", "userID": "alice"})
        flows = []
        for port in (1000, 1001, 1000 + size - 1, 1000 + size, 80, 65000):
            for dst in ("10.1.2.3", "10.249.0.1", "11.1.2.3", "192.168.0.1"):
                flows.append(FlowSpec.tcp("192.168.0.10", dst, 40000, port))
        for flow in flows:
            assert_parity(evaluator, flow, src, None)
            assert_parity(evaluator, flow, doc({"name": "nomatch"}), None)

    def test_matching_app_names(self):
        evaluator = e10b_policy(200)
        for index in (0, 7, 199):
            flow = FlowSpec.tcp("1.2.3.4", f"10.{index % 250}.0.9", 40000, 1000 + index)
            assert_parity(evaluator, flow, doc({"name": f"app{index}"}), None)

    def test_index_actually_used(self):
        evaluator = e10b_policy(500)
        flow = FlowSpec.tcp("1.2.3.4", "10.1.0.9", 40000, 1001)
        evaluator.evaluate(flow, doc({"name": "app1"}), None)
        stats = evaluator.stats()
        assert stats["indexed_rules"] == 500
        assert stats["scan_bucket_rules"] == 1  # the block-all header
        # One decision should visit ~2 candidates, not the full ruleset.
        assert stats["candidates_visited"] <= 4


class TestPaperFigureParity:
    def figure2_evaluator(self) -> PolicyEvaluator:
        return PolicyEvaluator(build_ruleset(figure2_control_files()), default_action="block")

    def test_figure2_grid(self):
        evaluator = self.figure2_evaluator()
        addresses = ["192.168.0.10", "192.168.1.1", "123.123.123.7", "8.8.8.8"]
        documents = [
            None,
            doc({"name": "skype", "version": "400"}),
            doc({"name": "skype", "version": "150"}),
            doc({"name": "http"}),
            doc({"name": "pine"}),
        ]
        for src_ip in addresses:
            for dst_ip in addresses:
                for port in (80, 443, 5060):
                    flow = FlowSpec.tcp(src_ip, dst_ip, 40000, port)
                    for src_doc in documents:
                        for dst_doc in (None, doc({"name": "skype"})):
                            assert_parity(evaluator, flow, src_doc, dst_doc)

    def test_figure8_grid(self):
        evaluator = PolicyEvaluator(build_ruleset(figure8_control_files()), default_action="block")
        for dst_ip in ("192.168.1.40", "10.0.0.1"):
            for port in (445, 139, 80):
                flow = FlowSpec.tcp("192.168.0.10", dst_ip, 40000, port)
                for dst_doc in (
                    None,
                    doc({"os-patch": "MS08-067 MS08-068"}),
                    doc({"os-patch": "MS08-001"}),
                ):
                    assert_parity(evaluator, flow, None, dst_doc)


class TestLanguageFeatureParity:
    FEATURES = """\
table <lan> { 192.168.0.0/24 10.0.0.0/8 }
servers = "192.168.1.1 192.168.1.2"
appset = "{ pine mutt }"
block all
pass quick from 172.16.0.1 to any port 22
pass from <lan> to !<lan> keep state
pass from $servers to any port 25
block from any to !192.168.5.0/24 with eq(@src[name], leaky)
pass from any to <lan> port http with member(@src[app], $appset)
pass from any to 203.0.113.7 with allowed(@src[requirements])
"""

    def evaluator(self) -> PolicyEvaluator:
        return PolicyEvaluator(parse_ruleset(self.FEATURES), default_action="block")

    def test_feature_grid(self):
        evaluator = self.evaluator()
        sources = ["172.16.0.1", "192.168.0.9", "192.168.1.1", "10.2.3.4", "8.8.4.4"]
        destinations = ["192.168.0.1", "192.168.5.5", "203.0.113.7", "1.1.1.1"]
        documents = [
            None,
            doc({"name": "leaky", "app": "pine"}),
            doc({"app": "mutt"}),
            doc({"requirements": "pass from any to any port 443"}),
            doc({"requirements": "not valid pf text ((("}),
        ]
        for src_ip in sources:
            for dst_ip in destinations:
                for port in (22, 25, 80, 443):
                    flow = FlowSpec.tcp(src_ip, dst_ip, 41000, port)
                    for src_doc in documents:
                        assert_parity(evaluator, flow, src_doc, None)

    def test_flowless_parity(self):
        evaluator = self.evaluator()
        assert_parity(evaluator, None, doc({"name": "x"}), None)
        stats = evaluator.stats()
        assert stats["fallback_scans"] >= 1.0

    def test_unknown_macro_raises_identically(self):
        evaluator = PolicyEvaluator(
            parse_ruleset("block all\npass from $nosuch to any"), default_action="block"
        )
        flow = FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 2)
        assert_parity(evaluator, flow)

    def test_unknown_table_raises_identically(self):
        evaluator = PolicyEvaluator(
            parse_ruleset("block all\npass from <nosuch> to any port 99"), default_action="block"
        )
        flow = FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 99)
        assert_parity(evaluator, flow)
        # Port-indexing may not skip the raising rule for other ports either:
        # the interpreted path raises while evaluating src before dst port.
        assert_parity(evaluator, FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 80))

    def test_table_redefinition_triggers_recompile(self):
        evaluator = PolicyEvaluator(
            parse_ruleset("table <lan> { 10.0.0.0/8 }\nblock all\npass from <lan> to any"),
            default_action="block",
        )
        inside = FlowSpec.tcp("10.1.1.1", "2.2.2.2", 1, 2)
        outside = FlowSpec.tcp("192.168.7.7", "2.2.2.2", 1, 2)
        assert evaluator.evaluate(inside, None, None).is_pass
        assert not evaluator.evaluate(outside, None, None).is_pass
        evaluator.tables.add_table("lan", ["192.168.0.0/16"])
        assert_parity(evaluator, inside)
        assert_parity(evaluator, outside)
        assert evaluator.evaluate(outside, None, None).is_pass
        assert not evaluator.evaluate(inside, None, None).is_pass


class TestBatchParity:
    def test_batch_matches_single(self):
        evaluator = e10b_policy(100)
        src = doc({"name": "app3"})
        items = [
            (FlowSpec.tcp("1.2.3.4", f"10.{i % 250}.0.1", 40000, 1000 + i), src, None)
            for i in range(0, 100, 7)
        ]
        batch = evaluator.evaluate_batch(items)
        singles = [evaluator.evaluate(flow, s, d) for flow, s, d in items]
        assert [v.action for v in batch] == [v.action for v in singles]
        assert [v.rule for v in batch] == [v.rule for v in singles]
        stats = evaluator.stats()
        assert stats["batches"] == 1.0
        assert stats["max_batch_size"] == len(items)
