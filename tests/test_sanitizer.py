"""Tests for the runtime simulation sanitizer and the determinism gate.

Covers the three detector classes from ``repro.netsim.sanitizer`` —
deterministic event-trace hashing, same-instant ordering divergence via
shadow replay, and stale-continuation reporting from the decision core —
plus the double-run determinism regression over the queryload and
decision-core bench scenarios.
"""

import pytest

from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPNetwork
from repro.netsim.events import Simulator
from repro.netsim.sanitizer import (
    KIND_ORDER_DIVERGENCE,
    KIND_STALE_CONTINUATION,
    EventTraceHasher,
    SimulationSanitizer,
    callback_name,
    shadow_replay,
)
from repro.workloads.determinism import (
    DeterminismGate,
    decision_core_scenario,
    queryload_scenario,
)


def run_counting_scenario(sim, delays):
    fired = []
    for delay in delays:
        sim.schedule(delay, fired.append, delay)
    sim.run()
    return fired


class TestTraceHash:
    def test_identical_runs_hash_identically(self):
        hashes = []
        for _ in range(2):
            sim = Simulator(sanitize=True)
            run_counting_scenario(sim, [0.3, 0.1, 0.1, 0.2])
            hashes.append(sim.sanitizer.trace_hash)
        assert hashes[0] == hashes[1]

    def test_different_schedules_hash_differently(self):
        first = Simulator(sanitize=True)
        run_counting_scenario(first, [0.1, 0.2])
        second = Simulator(sanitize=True)
        run_counting_scenario(second, [0.1, 0.3])
        assert first.sanitizer.trace_hash != second.sanitizer.trace_hash

    def test_hash_counts_every_event(self):
        sim = Simulator(sanitize=True)
        run_counting_scenario(sim, [0.1, 0.2, 0.3])
        assert sim.sanitizer.hasher.events == 3
        assert sim.sanitizer.hasher.events == sim.events_processed

    def test_callback_name_is_address_free(self):
        class Owner:
            name = "sw-edge"

            def tick(self):
                pass

        first, second = Owner(), Owner()
        assert callback_name(first.tick) == callback_name(second.tick)
        assert "0x" not in callback_name(first.tick)
        assert "sw-edge" in callback_name(first.tick)

    def test_same_instant_grouping_stats(self):
        sim = Simulator(sanitize=True)
        run_counting_scenario(sim, [0.1, 0.1, 0.1, 0.2, 0.3, 0.3])
        assert sim.sanitizer.same_instant_groups == 2
        assert sim.sanitizer.max_same_instant == 3

    def test_summary_shape(self):
        sim = Simulator(sanitize=True)
        run_counting_scenario(sim, [0.1, 0.1])
        summary = sim.sanitizer.summary()
        assert summary["events_hashed"] == 2
        assert summary["same_instant_groups"] == 1
        assert summary["reports"] == 0
        assert summary["trace_hash"] == sim.sanitizer.trace_hash


class TestSanitizerAttachment:
    def test_off_by_default(self):
        sim = Simulator()
        assert sim.sanitizer is None
        assert not sim.sanitize

    def test_enable_sanitizer_is_idempotent(self):
        sim = Simulator()
        first = sim.enable_sanitizer()
        second = sim.enable_sanitizer()
        assert first is second
        assert isinstance(first, SimulationSanitizer)
        assert sim.sanitize

    def test_report_stamps_virtual_time(self):
        sim = Simulator(sanitize=True)
        sim.schedule(1.5, lambda: sim.sanitizer.report("custom", "planted"))
        sim.run()
        (finding,) = sim.sanitizer.reports_of("custom")
        assert finding.time == 1.5
        assert "planted" in str(finding)


class TestShadowReplay:
    def test_order_sensitive_pair_is_detected(self):
        # Planted race: two same-instant events whose relative order
        # decides the final state (last writer wins).
        def scenario(sim):
            state = {}
            sim.schedule(1.0, state.__setitem__, "winner", "a")
            sim.schedule(1.0, state.__setitem__, "winner", "b")
            sim.run()
            return state

        report = shadow_replay(scenario)
        assert report.diverged
        assert report.same_instant_groups == 1
        kinds = {finding.kind for finding in report.reports}
        assert KIND_ORDER_DIVERGENCE in kinds
        assert report.as_dict()["diverged"] is True

    def test_commutative_same_instant_events_pass(self):
        # Same-instant events that commute (both increment) must not flag.
        def scenario(sim):
            state = {"count": 0}

            def bump():
                state["count"] += 1

            sim.schedule(1.0, bump)
            sim.schedule(1.0, bump)
            sim.run()
            return state

        report = shadow_replay(scenario)
        assert not report.diverged
        assert report.same_instant_groups == 1
        assert report.reports == []

    def test_trace_hashes_differ_under_perturbation_even_when_state_agrees(self):
        # The *trace* legitimately differs (ties served in reverse); only
        # the state digest decides divergence.
        def scenario(sim):
            sim.schedule(1.0, lambda: None, label="a")
            sim.schedule(1.0, lambda: None, label="b")
            sim.run()
            return "done"

        report = shadow_replay(scenario)
        assert not report.diverged
        assert report.baseline_trace_hash != report.shadow_trace_hash


def _build_stale_net():
    """A net whose pending deadline is far shorter than daemon latency.

    Every punt expires (failed closed) while its queries are still in
    flight, so each daemon answer arrives as a stale continuation.
    """
    net = IdentPPNetwork(
        "sanitizer-stale",
        link_latency=50e-6,
        controller_config=ControllerConfig(
            decision_core="async",
            serialize_decisions=True,
            nonblocking_inbox=True,
            pending_deadline=0.001,
        ),
        policy_default_action="block",
    )
    sw = net.add_switch("sw1")
    net.add_host(
        HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users",)}),
        switch=sw,
    )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=sw)
    server.run_server("httpd", "root", 80)
    net.set_policy(
        {"00-stale.control": "block all\npass from any to any port 80\n"}
    )
    for daemon in net.daemons.values():
        daemon.processing_delay = 0.01
    return net


class TestStaleContinuationDetection:
    def test_expired_punts_surface_as_stale_continuations(self):
        net = _build_stale_net()
        sanitizer = net.topology.sim.enable_sanitizer()
        net.host("client").open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        assert int(net.controller.summary()["pending_expired"]) >= 1
        stale = sanitizer.reports_of(KIND_STALE_CONTINUATION)
        assert stale, "expired punt's late answers were discarded silently"
        assert any("superseded" in finding.detail for finding in stale)

    def test_without_sanitizer_discards_stay_silent(self):
        net = _build_stale_net()
        net.host("client").open_flow("http", "alice", "192.168.1.1", 80)
        net.run()  # must not raise: discards are correct behaviour
        assert net.topology.sim.sanitizer is None
        assert int(net.controller.summary()["pending_expired"]) >= 1


class TestDeterminismRegression:
    """Satellite: bench scenarios double-run to identical trace hashes."""

    @pytest.mark.parametrize(
        "scenario", [decision_core_scenario, queryload_scenario]
    )
    def test_double_run_trace_hashes_match(self, scenario):
        first = scenario(11, flows=30)
        second = scenario(11, flows=30)
        assert first.trace_hash == second.trace_hash
        assert first.events == second.events
        assert first.decided == second.decided
        assert first.decided > 0

    def test_different_seeds_change_the_trace(self):
        assert (
            decision_core_scenario(11, flows=30).trace_hash
            != decision_core_scenario(12, flows=30).trace_hash
        )

    def test_gate_summary_records_seed_and_verdict(self):
        payload = DeterminismGate(seed=11).as_dict()
        assert payload["seed"] == 11
        assert payload["all_identical"] is True
        for name in ("decision_core", "queryload"):
            entry = payload[name]
            assert entry["identical"] is True
            assert entry["first"]["trace_hash"] == entry["second"]["trace_hash"]
