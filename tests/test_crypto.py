"""Tests for the signature substrate: hashing, RSA, canonical signing, key store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import KeyError_, SignatureError
from repro.crypto.hashing import executable_hash, sha256_hex, sha256_int
from repro.crypto.keystore import KeyStore
from repro.crypto.rsa import RSAPublicKey, generate_keypair
from repro.crypto.signatures import Signer, canonical_message, sign_values, verify_values


class TestHashing:
    def test_sha256_hex_matches_known_value(self):
        assert sha256_hex(b"") == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"

    def test_str_and_bytes_agree(self):
        assert sha256_hex("identpp") == sha256_hex(b"identpp")
        assert sha256_int("identpp") == int(sha256_hex("identpp"), 16)

    def test_executable_hash_stability(self):
        assert executable_hash("/usr/bin/skype", "bits", "210") == executable_hash("/usr/bin/skype", "bits", "210")

    def test_executable_hash_changes_with_contents_and_version(self):
        base = executable_hash("/usr/bin/skype", "bits", "210")
        assert executable_hash("/usr/bin/skype", "trojan", "210") != base
        assert executable_hash("/usr/bin/skype", "bits", "211") != base


class TestRSA:
    def test_deterministic_keygen_with_seed(self):
        first = generate_keypair("research", seed=1)
        second = generate_keypair("research", seed=1)
        assert first.public.n == second.public.n

    def test_different_seeds_differ(self):
        assert generate_keypair("a", seed=1).public.n != generate_keypair("a", seed=2).public.n

    def test_sign_verify_round_trip(self):
        keypair = generate_keypair("owner", seed=5)
        signature = keypair.sign("message")
        assert keypair.verify("message", signature)

    def test_tampered_message_rejected(self):
        keypair = generate_keypair("owner", seed=5)
        signature = keypair.sign("message")
        assert not keypair.verify("message!", signature)

    def test_wrong_key_rejected(self):
        signer = generate_keypair("owner", seed=5)
        other = generate_keypair("other", seed=6)
        assert not other.verify("message", signer.sign("message"))

    def test_garbage_signature_rejected(self):
        keypair = generate_keypair("owner", seed=5)
        assert not keypair.verify("message", "not-hex")
        assert not keypair.verify("message", 0)

    def test_public_key_serialisation_round_trip(self):
        keypair = generate_keypair("owner", seed=5)
        restored = RSAPublicKey.from_hex(keypair.public.to_hex())
        assert restored == keypair.public
        assert restored.verify("m", keypair.sign("m"))

    def test_serialised_key_is_single_pf_word(self):
        # dict <pubkeys> values must lex as one WORD (no colons or spaces).
        text = generate_keypair("owner", seed=5).public.to_hex()
        assert ":" not in text and " " not in text

    def test_malformed_key_rejected(self):
        with pytest.raises(SignatureError):
            RSAPublicKey.from_hex("zz")

    def test_too_small_modulus_rejected(self):
        with pytest.raises(SignatureError):
            generate_keypair("owner", bits=64)

    def test_fingerprint_length(self):
        assert len(generate_keypair("owner", seed=5).public.fingerprint(12)) == 12


class TestCanonicalSigning:
    def test_canonical_message_strips_whitespace(self):
        assert canonical_message([" a ", "b"]) == canonical_message(["a", " b "])

    def test_canonical_message_order_matters(self):
        assert canonical_message(["a", "b"]) != canonical_message(["b", "a"])

    def test_sign_and_verify_values(self):
        keypair = generate_keypair("research", seed=7)
        values = ["exe-hash-value", "research-app", "block all pass all"]
        signature = sign_values(keypair, values)
        assert verify_values(keypair.public, signature, values)
        assert verify_values(keypair.public.to_hex(), signature, values)

    def test_verify_values_rejects_any_change(self):
        keypair = generate_keypair("research", seed=7)
        values = ["hash", "app", "rules"]
        signature = sign_values(keypair, values)
        assert not verify_values(keypair.public, signature, ["hash", "app", "other rules"])
        assert not verify_values(keypair.public, signature, ["hash", "app"])

    def test_verify_values_with_malformed_key_returns_false(self):
        assert not verify_values("garbage", "00", ["a"])
        assert not verify_values(12345, "00", ["a"])

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.text(alphabet=st.characters(blacklist_characters="\x1f"), max_size=20), min_size=1, max_size=4))
    def test_property_signatures_verify(self, values):
        keypair = generate_keypair("prop", seed=9)
        signature = sign_values(keypair, values)
        assert verify_values(keypair.public, signature, values)


class TestSigner:
    def test_signer_records_messages(self):
        signer = Signer("research", seed=0)
        signer.sign(["a", "b"])
        assert len(signer.signed_messages()) == 1

    def test_signer_verify(self):
        signer = Signer("research", seed=0)
        signature = signer.sign(["a", "b"])
        assert signer.verify(signature, ["a", "b"])
        assert not signer.verify(signature, ["a", "c"])

    def test_signers_are_deterministic_per_name(self):
        assert Signer("x", seed=1).public_key_hex == Signer("x", seed=1).public_key_hex
        assert Signer("x", seed=1).public_key_hex != Signer("y", seed=1).public_key_hex


class TestKeyStore:
    def test_add_and_get(self):
        store = KeyStore()
        signer = Signer("research", seed=0)
        store.add("research", signer)
        assert store.get("research") == signer.public_key_hex
        assert "research" in store
        assert store.public_key("research").verify("m", signer.keypair.sign("m"))

    def test_add_public_key_and_hex(self):
        store = KeyStore()
        keypair = generate_keypair("a", seed=1)
        store.add("by-key", keypair.public)
        store.add("by-hex", keypair.public.to_hex())
        assert store.get("by-key") == store.get("by-hex")

    def test_missing_key_raises(self):
        with pytest.raises(KeyError_):
            KeyStore().get("ghost")

    def test_lookup_returns_none_for_missing(self):
        assert KeyStore().lookup("ghost") is None

    def test_remove(self):
        store = KeyStore()
        store.add("a", Signer("a", seed=0))
        store.remove("a")
        assert "a" not in store
        with pytest.raises(KeyError_):
            store.remove("a")

    def test_invalid_key_type_rejected(self):
        with pytest.raises(KeyError_):
            KeyStore().add("bad", 42)

    def test_as_pf_dict(self):
        store = KeyStore()
        store.add("research", Signer("research", seed=0))
        assert set(store.as_pf_dict()) == {"research"}
