"""Tests for the core package: cache, audit, delegation, interception, policy engine."""

import pytest

from repro.core.audit import AuditLog, DecisionRecord
from repro.core.cache import DecisionCache
from repro.core.delegation import DelegationManager
from repro.core.interception import InterceptionPolicy
from repro.core.policy_engine import PolicyEngine
from repro.crypto.signatures import Signer
from repro.exceptions import DelegationError
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.identpp.wire import IdentQuery

FLOW = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 80)


def doc(pairs):
    document = ResponseDocument()
    document.add_section(dict(pairs))
    return document


class TestDecisionCache:
    def test_store_and_lookup(self):
        cache = DecisionCache(ttl=10.0)
        cache.store(FLOW, "pass", "cookie-1", now=0.0)
        assert cache.lookup(FLOW, now=5.0).is_pass
        assert cache.hit_rate() == 1.0

    def test_ttl_expiry(self):
        cache = DecisionCache(ttl=10.0)
        cache.store(FLOW, "pass", "cookie-1", now=0.0)
        assert cache.lookup(FLOW, now=20.0) is None

    def test_reverse_direction_only_for_keep_state(self):
        cache = DecisionCache()
        cache.store(FLOW, "pass", "c1", now=0.0, keep_state=True)
        assert cache.lookup(FLOW.reversed(), now=1.0) is not None
        plain = DecisionCache()
        plain.store(FLOW, "pass", "c1", now=0.0, keep_state=False)
        assert plain.lookup(FLOW.reversed(), now=1.0) is None

    def test_block_decision_does_not_cover_reverse(self):
        cache = DecisionCache()
        cache.store(FLOW, "block", "c1", now=0.0, keep_state=True)
        assert cache.lookup(FLOW.reversed(), now=1.0) is None

    def test_invalidate_cookie(self):
        cache = DecisionCache()
        cache.store(FLOW, "pass", "c1", now=0.0, keep_state=True)
        assert cache.invalidate_cookie("c1") == 1
        assert FLOW not in cache
        assert len(cache.state_table) == 0


class TestAuditLog:
    def record(self, action="pass", delegated=False, cached=False):
        return DecisionRecord(
            time=0.0, flow=FLOW, action=action, rule_text="pass all", rule_origin="00-x.control",
            cookie="c1", delegated=delegated, cached=cached,
            src_keys={"userID": "alice"},
        )

    def test_summary_counts(self):
        log = AuditLog()
        log.record(self.record("pass"))
        log.record(self.record("block"))
        log.record(self.record("pass", delegated=True))
        summary = log.summary()
        assert summary == {"total": 3, "pass": 2, "block": 1, "delegated": 1, "cached": 0}

    def test_filters(self):
        log = AuditLog()
        log.record(self.record("pass"))
        log.record(self.record("block", delegated=True))
        assert len(log.filter(action="block")) == 1
        assert len(log.delegated_decisions()) == 1
        assert len(log.decisions_for_user("alice")) == 2
        assert len(log.filter(flow=FLOW.reversed())) == 0


class TestDelegationManager:
    def test_grant_and_pubkeys(self):
        manager = DelegationManager()
        signer = Signer("research", seed=1)
        manager.grant("research", signer)
        assert manager.is_active("research")
        assert manager.pubkeys_dict()["research"] == signer.public_key_hex

    def test_duplicate_grant_rejected(self):
        manager = DelegationManager()
        manager.grant("research", Signer("research", seed=1))
        with pytest.raises(DelegationError):
            manager.grant("research", Signer("research", seed=2))

    def test_revoke_removes_key(self):
        manager = DelegationManager()
        manager.grant("research", Signer("research", seed=1))
        manager.record_use("research", "cookie-1")
        grant = manager.revoke("research")
        assert grant.revoked and grant.decisions == ["cookie-1"]
        assert "research" not in manager.pubkeys_dict()
        with pytest.raises(DelegationError):
            manager.revoke("research")


class TestInterceptionPolicy:
    def test_static_answer_for_subnet(self):
        policy = InterceptionPolicy("edge")
        policy.answer_for_subnet("192.168.0.0/24", {"userID": "registered"})
        query = IdentQuery(flow=FLOW, target_role="src")
        answer = policy.intercept_query(query)
        assert answer is not None
        assert answer.document.latest("userID") == "registered"
        # hosts outside the subnet are not answered for
        other = IdentQuery(flow=FlowSpec.tcp("10.9.9.9", "192.168.1.1", 1, 2), target_role="src")
        assert policy.intercept_query(other) is None

    def test_augmentation_with_predicate(self):
        policy = InterceptionPolicy("branch-b")
        policy.augment_flows_to("192.168.1.0/24", {"remote-accept": "no"})
        query = IdentQuery(flow=FLOW, target_role="dst")
        from repro.identpp.wire import IdentResponse
        response = IdentResponse(flow=FLOW, document=doc({"userID": "bob"}))
        policy.augment_response(query, response)
        assert response.document.latest("remote-accept") == "no"
        assert response.document.section_count() == 2

    def test_augmentation_skips_non_matching_flows(self):
        policy = InterceptionPolicy("branch-b")
        policy.augment_flows_to("10.2.0.0/16", {"remote-accept": "no"})
        from repro.identpp.wire import IdentResponse
        response = IdentResponse(flow=FLOW, document=doc({"userID": "bob"}))
        policy.augment_response(IdentQuery(flow=FLOW, target_role="dst"), response)
        assert response.document.latest("remote-accept") is None


class TestPolicyEngine:
    def test_alphabetical_concatenation_and_decisions(self):
        engine = PolicyEngine(default_action="pass")
        engine.add_control_files({
            "00-default.control": "block all\n",
            "50-apps.control": "pass all with eq(@src[name], http)\n",
        })
        assert engine.rule_count() == 2
        assert engine.decide(FLOW, doc({"name": "http"})).is_pass
        assert not engine.decide(FLOW, doc({"name": "telnet"})).is_pass

    def test_rebuild_after_file_change(self):
        engine = PolicyEngine()
        engine.add_control_file("00-a.control", "block all\n")
        assert not engine.decide(FLOW, doc({})).is_pass
        engine.add_control_file("00-a.control", "pass all\n")
        assert engine.decide(FLOW, doc({})).is_pass
        engine.remove_control_file("00-a.control")
        assert engine.rule_count() == 0

    def test_delegation_detection_and_principals(self):
        signer = Signer("research", seed=4)
        engine = PolicyEngine()
        engine.delegations.grant("research", signer)
        engine.add_control_files({
            "00-default.control": "block all\n",
            "30-research.control": (
                "pass all with allowed(@src[requirements]) "
                "with verify(@src[req-sig], @pubkeys[research], @src[requirements])\n"
            ),
        })
        requirements = "block all pass all"
        signature = signer.sign([requirements])
        decision = engine.decide(FLOW, doc({"requirements": requirements, "req-sig": signature}))
        assert decision.is_pass
        assert decision.delegated
        assert set(decision.delegation_functions) == {"allowed", "verify"}
        assert decision.principals == ("research",)

    def test_revoked_grant_stops_verifying(self):
        signer = Signer("research", seed=4)
        engine = PolicyEngine()
        engine.delegations.grant("research", signer)
        engine.add_control_files({
            "00-default.control": "block all\n",
            "30-research.control": "pass all with verify(@src[req-sig], @pubkeys[research], @src[data])\n",
        })
        signature = signer.sign(["payload"])
        src = doc({"req-sig": signature, "data": "payload"})
        assert engine.decide(FLOW, src).is_pass
        engine.delegations.revoke("research")
        assert not engine.decide(FLOW, src).is_pass

    def test_config_pubkeys_override_grants(self):
        signer = Signer("research", seed=4)
        other = Signer("other", seed=5)
        engine = PolicyEngine()
        engine.delegations.grant("research", other)
        engine.add_control_files({
            "00-default.control": "block all\n",
            "30-research.control": (
                f"dict <pubkeys> {{ research : {signer.public_key_hex} }}\n"
                "pass all with verify(@src[req-sig], @pubkeys[research], @src[data])\n"
            ),
        })
        src = doc({"req-sig": signer.sign(["payload"]), "data": "payload"})
        assert engine.decide(FLOW, src).is_pass

    def test_stats(self):
        engine = PolicyEngine()
        engine.add_control_file("00-a.control", "block all\n")
        engine.decide(FLOW, doc({}))
        stats = engine.stats()
        assert stats["decisions_made"] == 1.0
        assert stats["control_files"] == 1.0
