"""Integration tests: the ident++ controller driving the full datapath."""

import pytest

from repro.core.network import HostSpec, IdentPPNetwork
from repro.identpp.flowspec import FlowSpec
from repro.security.attacks import Attacker


BASIC_POLICY = {
    "00-default.control": (
        "block all\n"
        "pass from any to any with member(@src[name], approved) keep state\n"
        'approved = "{ http ssh }"\n'
    ),
}

# Macros must be defined before use for readability, but PF reads the whole
# file before evaluating, so ordering inside the file does not matter for the
# evaluator.  Keep a second, conventional layout for most tests.
POLICY = {
    "00-default.control": (
        'approved = "{ http ssh }"\n'
        "block all\n"
        "pass from any to any with member(@src[name], $approved) keep state\n"
    ),
}


def build_network(policy=None):
    net = IdentPPNetwork("test-net")
    left = net.add_switch("sw-left")
    right = net.add_switch("sw-right")
    net.connect(left, right)
    net.add_host(HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users", "staff")}),
                 switch=left)
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1", users={}), switch=right)
    server.run_server("httpd", "root", 80)
    net.set_policy(policy or POLICY)
    return net


class TestControllerDatapath:
    def test_allowed_flow_is_delivered_and_audited(self):
        net = build_network()
        result = net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        assert result.delivered and result.decision_action == "pass"
        assert net.controller.audit.summary()["pass"] == 1
        assert net.controller.flow_setup_latency.count == 1

    def test_blocked_flow_never_reaches_the_server(self):
        net = build_network()
        result = net.send_flow("client", "telnet", "alice", "192.168.1.1", 23)
        assert not result.delivered and result.decision_action == "block"
        assert net.host("server").delivered == []

    def test_flow_entries_installed_along_path(self):
        net = build_network()
        net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        assert len(net.switches["sw-left"].flow_table) >= 1
        assert len(net.switches["sw-right"].flow_table) >= 1

    def test_second_packet_uses_cached_entry(self):
        net = build_network()
        client = net.host("client")
        _, socket, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        punts_after_first = int(net.switches["sw-left"].punts.value)
        client.send_on_socket(socket)
        net.run()
        assert int(net.switches["sw-left"].punts.value) == punts_after_first
        assert len(net.host("server").delivered) == 2

    def test_keep_state_allows_reverse_direction(self):
        net = build_network()
        net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        server = net.host("server")
        reply_flow = FlowSpec.tcp("192.168.1.1", "192.168.0.10", 80, net.host("server").delivered[0].tp_src)
        # send the server's reply; it must be covered by the cached keep-state decision
        reply = server.delivered[0].reply_template()
        server.transmit(reply)
        net.run()
        client_flows = net.host("client").delivered_flows()
        assert reply_flow.as_tuple() in {f for f in client_flows}

    def test_same_flow_from_two_switches_queries_once(self):
        net = build_network()
        # Second packet of the same flow punted by the downstream switch while
        # the first is still pending is answered from the pending table.
        client = net.host("client")
        packet, socket, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
        client.send_on_socket(socket)
        net.run()
        audit = net.controller.audit.records()
        non_cached = [r for r in audit if not r.cached]
        assert len(non_cached) == 1

    def test_revoke_decision_removes_entries(self):
        net = build_network()
        net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        cookie = net.controller.audit.records()[-1].cookie
        removed = net.controller.revoke_decision(cookie)
        assert removed >= 1
        assert all(len(switch.flow_table.find(lambda e: e.cookie == cookie)) == 0
                   for switch in net.switches.values())

    def test_decide_flow_direct_api(self):
        net = build_network()
        from repro.identpp.keyvalue import ResponseDocument
        doc = ResponseDocument()
        doc.add_section({"name": "http"})
        flow = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 41000, 80)
        assert net.controller.decide_flow(flow, doc).is_pass

    def test_summary_structure(self):
        net = build_network()
        net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        summary = net.controller.summary()
        assert summary["packet_ins"] >= 1
        assert "flow_setup_latency" in summary
        assert net.summary()["topology"]["nodes"]

    def test_query_timeout_for_daemonless_host_fails_closed(self):
        net = IdentPPNetwork("no-daemon")
        switch = net.add_switch("sw")
        net.add_host(HostSpec(name="legacy", ip="192.168.0.99", users={"alice": ("staff",)},
                              run_daemon=False), switch=switch)
        server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=switch)
        server.run_server("httpd", "root", 80)
        net.set_policy(POLICY)
        result = net.send_flow("legacy", "http", "alice", "192.168.1.1", 80)
        assert not result.delivered and result.decision_action == "block"


class TestCompromisedComponents:
    def test_compromised_controller_forwards_everything(self):
        net = build_network()
        Attacker().compromise_controller(net.controller)
        result = net.send_flow("client", "telnet", "alice", "192.168.1.1", 23)
        assert result.delivered
        # nothing is audited while the controller is owned
        assert len(net.controller.audit) == 0

    def test_compromised_switch_forwards_blocked_traffic(self):
        # Single-switch network: the compromised switch is the only enforcement
        # point on the path, so blocked traffic now gets through (§5.2).
        net = IdentPPNetwork("single-switch")
        switch = net.add_switch("sw")
        net.add_host(HostSpec(name="client", ip="192.168.0.10", users={"alice": ("staff",)}),
                     switch=switch)
        server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=switch)
        server.run_server("httpd", "root", 80)
        net.set_policy(POLICY)
        attacker = Attacker()
        record = attacker.compromise_switch(switch)
        result = net.send_flow("client", "telnet", "alice", "192.168.1.1", 23)
        assert result.delivered
        record.revert()
        result = net.send_flow("client", "telnet", "alice", "192.168.1.1", 2323)
        assert not result.delivered

    def test_compromised_switch_does_not_disable_other_switches(self):
        # With a second, honest switch on the path the flow is still blocked:
        # compromising one switch "does not necessarily enable the compromise
        # of the controller" or of the rest of the network (§5.2).
        net = build_network()
        Attacker().compromise_switch(net.switches["sw-left"])
        result = net.send_flow("client", "telnet", "alice", "192.168.1.1", 23)
        assert not result.delivered

    def test_compromised_host_daemon_spoofs_identity(self):
        net = build_network()
        attacker = Attacker()
        attacker.compromise_end_host(net.host("client"), spoofed_pairs={"name": "http"})
        # telnet now claims to be the approved browser and slips through
        result = net.send_flow("client", "telnet", "alice", "192.168.1.1", 23)
        assert result.delivered

    def test_application_masquerade_blocked_by_setgid_isolation(self):
        net = build_network()
        client = net.host("client")
        # the administrator runs the browser setgid-isolated (§5.4)
        client.processes.spawn(client.users.user("alice"),
                               client.applications.require("http"),
                               setgid_isolated=True)
        attacker = Attacker()
        record = attacker.compromise_application(client, "skype", "alice", masquerade_as="http")
        assert record.details["masquerade_succeeded"] == "no"

    def test_application_masquerade_succeeds_without_isolation(self):
        net = build_network()
        client = net.host("client")
        client.processes.spawn(client.users.user("alice"), client.applications.require("http"))
        attacker = Attacker()
        record = attacker.compromise_application(client, "skype", "alice", masquerade_as="http")
        assert record.details["masquerade_succeeded"] == "yes"
        attacker.revert_all()
        assert len(attacker) == 0
