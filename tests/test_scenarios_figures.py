"""End-to-end checks that every paper figure's scenario behaves as described.

These are the highest-level integration tests in the suite: each one
stands up the full simulated network for a figure, drives the flow
matrix through switches, controller, ident++ queries and PF+=2 policy,
and asserts the verdicts match the paper's prose.
"""

import pytest

from repro.analysis.report import format_table, series_to_rows
from repro.workloads.comparative import (
    CollaborationScenario,
    NATIdentificationScenario,
    PartialDeploymentScenario,
    SecurityComparisonScenario,
)
from repro.workloads.generators import FlowGenerator, FlowTemplate, zipf_weights
from repro.workloads.scenarios import (
    ConfickerScenario,
    FlowSetupScenario,
    ResearchDelegationScenario,
    SkypeScenario,
    ThirdPartyTrustScenario,
)


# -- E1: Figure 1 ------------------------------------------------------------

class TestFlowSetupScenario:
    def test_flow_is_delivered_and_latency_decomposes(self):
        measurement = FlowSetupScenario(switch_count=2).run()
        assert measurement.delivered
        assert measurement.query_latency > 0
        # the controller's decision time includes the queries and the policy
        assert measurement.controller_decision_latency >= measurement.query_latency
        # end-to-end delivery includes the decision plus datapath traversal
        assert measurement.end_to_end_delivery > measurement.controller_decision_latency

    def test_latency_grows_with_link_latency(self):
        scenario = FlowSetupScenario(switch_count=2)
        fast, slow = scenario.sweep_link_latency([50e-6, 5e-3])
        assert slow.end_to_end_delivery > fast.end_to_end_delivery
        assert slow.query_latency > fast.query_latency


# -- E2..E6: Figures 2-8 -----------------------------------------------------

@pytest.mark.parametrize("scenario_class", [
    SkypeScenario, ResearchDelegationScenario, ThirdPartyTrustScenario, ConfickerScenario,
])
def test_figure_scenarios_match_paper_expectations(scenario_class):
    scenario = scenario_class()
    scenario.run()
    mismatches = scenario.mismatches()
    assert not mismatches, "unexpected verdicts: " + "; ".join(
        f"{r.label}: expected {r.expected_action}, got {r.actual_action}" for r in mismatches
    )


class TestSkypeScenarioDetails:
    def test_delegated_and_blocked_counts(self):
        scenario = SkypeScenario()
        results = scenario.run()
        passes = [r for r in results if r.expected_action == "pass"]
        blocks = [r for r in results if r.expected_action == "block"]
        assert len(passes) == 5 and len(blocks) == 4
        audit = scenario.net.controller.audit.summary()
        assert audit["pass"] >= len(passes)
        assert audit["block"] >= len(blocks)


class TestResearchScenarioDetails:
    def test_delegation_recorded_in_audit(self):
        scenario = ResearchDelegationScenario()
        scenario.run()
        delegated = scenario.net.controller.audit.delegated_decisions()
        assert any(record.is_pass for record in delegated)


# -- E7: collaboration --------------------------------------------------------

class TestCollaboration:
    def test_collaboration_saves_bottleneck_traffic(self):
        without = CollaborationScenario(collaborate=False, flows=12, packets_per_flow=3).run()
        with_collab = CollaborationScenario(collaborate=True, flows=12, packets_per_flow=3).run()
        assert with_collab.bottleneck_bytes < without.bottleneck_bytes
        # wanted traffic is unaffected
        assert with_collab.wanted_delivered == without.wanted_delivered
        # the remote controller sees less load
        assert with_collab.remote_packet_ins < without.remote_packet_ins
        # unwanted traffic never reaches branch B hosts either way
        assert without.unwanted_delivered == with_collab.unwanted_delivered == 0


# -- E8: incremental benefit ---------------------------------------------------

class TestIncrementalBenefit:
    def test_nat_user_identification(self):
        with_daemon = NATIdentificationScenario(flows_per_user=3).run()
        assert with_daemon.identified_fraction == 1.0
        assert with_daemon.distinct_users_reported == with_daemon.distinct_users_actual == 2
        without_daemon = NATIdentificationScenario(flows_per_user=3, with_daemon=False).run()
        assert without_daemon.identified_fraction == 0.0

    def test_partial_deployment_sweep_points(self):
        half = PartialDeploymentScenario(clients=4, deployment_fraction=0.5).run()
        assert half.allowed_fraction == 0.5
        helped = PartialDeploymentScenario(clients=4, deployment_fraction=0.5,
                                           controller_answers_for_legacy=True).run()
        assert helped.allowed_fraction == 1.0
        full = PartialDeploymentScenario(clients=4, deployment_fraction=1.0).run()
        assert full.allowed_fraction == 1.0


# -- E9: security matrix --------------------------------------------------------

class TestSecurityMatrix:
    def test_matrix_shape_and_ordering(self):
        scenario = SecurityComparisonScenario()
        matrix = scenario.build_matrix()
        assert len(matrix.architectures()) == 5
        assert len(matrix.scenarios()) == 4

        def exposure(arch, scenario_name):
            for row in matrix.exposure_rows():
                if scenario_name in row["scenario"]:
                    return row[arch]
            raise AssertionError(scenario_name)

        # controller compromise disables everything everywhere (§5.1)
        assert exposure("identpp", "controller") == 1.0
        assert exposure("vanilla-firewall", "controller") == 1.0
        # a compromised switch does not affect end-host-enforced firewalls (§6)
        assert exposure("distributed-firewall", "switch") < 1.0
        # under ident++ an application compromise is confined to that user's
        # privileges; owning the whole host (and daemon) is strictly worse (§5.3/5.4)
        assert exposure("identpp", "user-application") <= exposure("identpp", "end-host")
        # spoofed daemon responses fool ident++ but not address-based baselines (§5.3)
        assert exposure("identpp", "end-host") >= exposure("vanilla-firewall", "end-host")

    def test_truthful_attacker_is_mostly_contained_by_identpp(self):
        scenario = SecurityComparisonScenario()
        allowed = [p for p in scenario.probes if scenario.identpp_decider_truthful(p)]
        # an unapproved tool under the attacker's own identity gets nowhere
        assert allowed == []


# -- workload generators and report helpers -------------------------------------

class TestGeneratorsAndReport:
    def make_templates(self):
        return [
            FlowTemplate("c1", "s1", "192.168.0.10", "192.168.1.1", 80, "http", "alice"),
            FlowTemplate("c2", "s1", "192.168.0.11", "192.168.1.1", 22, "ssh", "bob"),
        ]

    def test_zipf_weights_normalised_and_skewed(self):
        weights = zipf_weights(5, 1.0)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert weights[0] > weights[-1]
        with pytest.raises(Exception):
            zipf_weights(0)

    def test_flow_generator_deterministic(self):
        first = FlowGenerator(self.make_templates(), seed=7)
        second = FlowGenerator(self.make_templates(), seed=7)
        draws_a = [flow.as_tuple() for _, flow in first.sequence(10)]
        draws_b = [flow.as_tuple() for _, flow in second.sequence(10)]
        assert draws_a == draws_b

    def test_flow_generator_zipf_prefers_popular(self):
        generator = FlowGenerator(self.make_templates(), seed=1, zipf_skew=2.0)
        counts = {"c1": 0, "c2": 0}
        for _ in range(200):
            template = generator.draw_template()
            counts[template.src_host] += 1
        assert counts["c1"] > counts["c2"]

    def test_sequence_reuses_flows_for_established_traffic(self):
        generator = FlowGenerator(self.make_templates(), seed=1)
        flows = [flow for _, flow in generator.sequence(50, new_connection_probability=0.1)]
        assert len({flow.as_tuple() for flow in flows}) < len(flows)

    def test_format_table_and_series(self):
        rows = series_to_rows("x", [1, 2], {"y": [10.0, 20.0], "z": [3, None]})
        text = format_table(rows, title="demo")
        assert "demo" in text and "x" in text and "20" in text
        assert format_table([]) == "(no rows)"
