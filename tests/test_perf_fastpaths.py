"""Tests for the controller/datapath fast paths added with the compiler.

Covers the decision-cache reverse/cookie indexes, the flow-table
exact-match cache, Packet.wire_size caching and the policy engine's
batched decisions + @pubkeys epoch caching.
"""

from repro.core.cache import DecisionCache
from repro.core.delegation import DelegationManager
from repro.core.policy_engine import PolicyEngine
from repro.crypto.signatures import Signer
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.netsim.packet import Packet
from repro.openflow.actions import OutputAction
from repro.openflow.flow_table import FlowTable, make_entry
from repro.openflow.match import Match

FLOW = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 80)


def doc(entries: dict) -> ResponseDocument:
    document = ResponseDocument()
    document.add_section(entries)
    return document


class TestDecisionCacheIndexes:
    def test_reverse_lookup_still_works(self):
        cache = DecisionCache()
        cache.store(FLOW, "pass", "c1", now=0.0, keep_state=True)
        assert cache.lookup(FLOW.reversed(), now=1.0) is not None

    def test_reverse_skip_counter_tracks_entries(self):
        cache = DecisionCache()
        assert cache._reverse_candidates == 0
        cache.store(FLOW, "pass", "c1", now=0.0, keep_state=True)
        assert cache._reverse_candidates == 1
        # A block with keep_state never covers reverse traffic: not counted.
        other = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2)
        cache.store(other, "block", "c2", now=0.0, keep_state=True)
        assert cache._reverse_candidates == 1
        assert cache.lookup(other.reversed(), now=0.5) is None
        # Overwriting the keep-state entry unwinds the counter.
        cache.store(FLOW, "block", "c3", now=0.0, keep_state=False)
        assert cache._reverse_candidates == 0
        cache.invalidate(FLOW)
        assert cache._reverse_candidates == 0

    def test_invalidate_cookie_uses_index(self):
        cache = DecisionCache()
        flows = [FlowSpec.tcp("10.0.0.1", "10.0.1.1", 1000 + i, 80) for i in range(20)]
        for i, flow in enumerate(flows):
            cache.store(flow, "pass", f"cookie-{i % 2}", now=0.0, keep_state=(i % 3 == 0))
        assert cache.invalidate_cookie("cookie-0") == 10
        assert cache.invalidate_cookie("cookie-0") == 0
        assert len(cache) == 10
        assert cache.invalidate_cookie("cookie-1") == 10
        assert len(cache) == 0
        assert cache._reverse_candidates == 0
        assert cache._by_cookie == {}

    def test_clear_resets_indexes(self):
        cache = DecisionCache()
        cache.store(FLOW, "pass", "c1", now=0.0, keep_state=True)
        cache.clear()
        assert cache._reverse_candidates == 0
        assert cache._by_cookie == {}
        assert cache.lookup(FLOW.reversed(), now=0.0) is None


class TestFlowTableExactCache:
    def packet(self) -> Packet:
        return Packet.tcp("10.0.0.1", "10.0.0.2", 40000, 80)

    def test_repeat_lookup_hits_exact_cache(self):
        table = FlowTable()
        match = Match.from_five_tuple("10.0.0.1", "10.0.0.2", 6, 40000, 80)
        table.install(make_entry(match, [OutputAction(1)]))
        first = table.lookup(self.packet(), now=0.0)
        second = table.lookup(self.packet(), now=0.1)
        assert first is second
        assert table.exact_hits == 1
        assert table.stats()["exact_hits"] == 1.0

    def test_cache_invalidated_by_higher_priority_install(self):
        table = FlowTable()
        broad = Match(nw_dst="10.0.0.0/8")
        table.install(make_entry(broad, [OutputAction(1)], priority=10))
        assert table.lookup(self.packet(), now=0.0).priority == 10
        specific = Match.from_five_tuple("10.0.0.1", "10.0.0.2", 6, 40000, 80)
        table.install(make_entry(specific, [OutputAction(2)], priority=200))
        assert table.lookup(self.packet(), now=0.0).priority == 200

    def test_cache_invalidated_by_removal(self):
        table = FlowTable()
        match = Match.from_five_tuple("10.0.0.1", "10.0.0.2", 6, 40000, 80)
        table.install(make_entry(match, [OutputAction(1)], cookie="c1"))
        assert table.lookup(self.packet(), now=0.0) is not None
        table.remove_by_cookie("c1")
        assert table.lookup(self.packet(), now=0.0) is None

    def test_expired_cached_entry_rescans(self):
        table = FlowTable()
        match = Match.from_five_tuple("10.0.0.1", "10.0.0.2", 6, 40000, 80)
        table.install(make_entry(match, [OutputAction(1)], idle_timeout=1.0), now=0.0)
        fallback = Match(nw_dst="10.0.0.0/8")
        table.install(make_entry(fallback, [OutputAction(2)], priority=5), now=0.0)
        assert table.lookup(self.packet(), now=0.5).priority == 100
        # Past the idle timeout the specific entry is dead; the cached
        # winner must not be returned and the scan finds the fallback.
        assert table.lookup(self.packet(), now=10.0).priority == 5

    def test_wire_size_cached(self):
        packet = Packet.tcp("10.0.0.1", "10.0.0.2", 1, 2, payload="x" * 100)
        first = packet.wire_size()
        assert packet._wire_size == first
        assert packet.wire_size() == first
        # copies recompute rather than inheriting the cache
        clone = packet.copy(payload="y" * 500)
        assert clone.wire_size() == first + 400


class TestPolicyEngineBatching:
    def engine(self) -> PolicyEngine:
        engine = PolicyEngine(default_action="block")
        engine.add_control_file(
            "00-policy",
            "block all\npass from any to any port 80 with eq(@src[name], web)",
        )
        return engine

    def test_decide_batch_matches_decide(self):
        engine = self.engine()
        items = [
            (FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1000 + i, 80 if i % 2 else 443),
             doc({"name": "web"}), None)
            for i in range(10)
        ]
        batch = engine.decide_batch(items)
        singles = [engine.decide(flow, src, dst) for flow, src, dst in items]
        assert [d.action for d in batch] == [d.action for d in singles]
        stats = engine.stats()
        assert stats["batch_decisions"] == 10.0
        assert stats["decision_batches"] == 1.0
        assert stats["decisions_made"] == 20.0

    def test_pubkeys_refresh_only_on_epoch_change(self):
        engine = self.engine()
        flow = FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 80)
        for _ in range(5):
            engine.decide(flow, doc({"name": "web"}), None)
        assert engine.stats()["pubkeys_refreshes"] == 1.0
        engine.delegations.grant("research", Signer("research").public_key)
        engine.decide(flow, None, None)
        assert engine.stats()["pubkeys_refreshes"] == 2.0
        assert "research" in engine.evaluator.dicts["pubkeys"]
        engine.delegations.revoke("research")
        engine.decide(flow, None, None)
        assert engine.stats()["pubkeys_refreshes"] == 3.0
        assert "research" not in engine.evaluator.dicts["pubkeys"]

    def test_ruleset_change_invalidates_pubkeys_cache(self):
        engine = self.engine()
        flow = FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 80)
        engine.decide(flow, None, None)
        engine.add_control_file("10-extra", "pass from any to any port 22")
        engine.decide(flow, None, None)
        assert engine.stats()["pubkeys_refreshes"] == 2.0


class TestGeneratorBatches:
    def generator(self, **kwargs):
        from repro.workloads.generators import FlowGenerator, FlowTemplate

        templates = [
            FlowTemplate(
                src_host=f"h{i}",
                dst_host="server",
                src_ip=f"10.0.0.{i + 1}",
                dst_ip="10.1.0.1",
                dst_port=80,
                app_name="web",
                user_name="alice",
            )
            for i in range(4)
        ]
        return FlowGenerator(templates, seed=3, **kwargs)

    def test_draw_batch_matches_sequence_semantics(self):
        drawn = self.generator().draw_batch(10)
        assert len(drawn) == 10
        assert all(flow.dst_port == 80 for _, flow in drawn)

    def test_batches_chunking(self):
        chunks = list(self.generator().batches(10, 4))
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]

    def test_batches_rejects_bad_size(self):
        import pytest

        from repro.exceptions import WorkloadError

        with pytest.raises(WorkloadError):
            list(self.generator().batches(10, 0))


class TestControllerFlushIsolation:
    def test_bad_flow_does_not_poison_the_batch(self):
        """A PFEvalError for one queued flow must not lose the others.

        The erroring flow itself fails *closed*: it is resolved through
        ``_fail_closed`` (audited drop) instead of re-raising, so its
        pending packets can never leak.
        """
        from repro.core.policy_engine import PolicyEngine

        engine = PolicyEngine(default_action="block")
        # The unknown macro sits behind the port-81 gate: only port-81
        # flows ever evaluate it (the dst port check precedes the dst
        # address on both execution paths).
        engine.add_control_file(
            "00", "block all\npass from any to any port 80\npass from any to $typo port 81"
        )

        class FakeController:
            # Borrow the real flush logic without building a topology.
            from repro.core.controller import IdentPPController as _real

            def __init__(self, engine):
                self.policy = engine
                self._decision_queue = []
                self._flush_scheduled = False
                self.halted = False
                # The real flush skips flows whose punt generation no
                # longer matches; here every queued flow is current.
                self._pending_since = {}
                self.finished = []
                self.failed_closed = []

            def _finish_decision(self, entry, decision):
                self.finished.append((entry[0], decision.action))

            def _fail_closed(self, entry, error):
                self.failed_closed.append((entry[0], error))

            _flush_decisions = _real._flush_decisions

        controller = FakeController(engine)
        good_a = FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1000, 80)
        bad = FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1001, 81)
        good_b = FlowSpec.tcp("1.1.1.1", "2.2.2.3", 1002, 80)
        controller._decision_queue = [
            (good_a, None, None, [], 0.0),
            (bad, None, None, [], 0.0),
            (good_b, None, None, [], 0.0),
        ]
        controller._pending_since = {good_a: 0.0, bad: 0.0, good_b: 0.0}
        from repro.exceptions import PFEvalError

        controller._flush_decisions()
        # Both healthy flows still completed despite the poisoned batch.
        assert [(flow, action) for flow, action in controller.finished] == [
            (good_a, "pass"),
            (good_b, "pass"),
        ]
        # The poisoned flow was resolved fail-closed, not re-raised.
        assert [flow for flow, _ in controller.failed_closed] == [bad]
        assert isinstance(controller.failed_closed[0][1], PFEvalError)
        assert controller._decision_queue == []
