"""Flow-state lifecycle: bounded caches, fail-closed punts, expiry bookkeeping."""

import pytest

from repro.core.cache import DecisionCache
from repro.core.controller import ControllerConfig
from repro.core.lifecycle import ExpiryHeap, LifecycleService
from repro.core.network import HostSpec, IdentPPNetwork
from repro.identpp.flowspec import FlowSpec
from repro.netsim.events import Simulator
from repro.workloads.invariants import check_bounded_state, network_flow_state


POLICY = {
    "00-default.control": (
        'approved = "{ http ssh }"\n'
        "block all\n"
        "pass from any to any with member(@src[name], $approved) keep state\n"
    ),
}

#: Evaluating a port-6666 flow calls an unregistered function -> PFError.
ERROR_POLICY = {
    "00-error.control": (
        "block all\n"
        "pass from any to any port 80 keep state\n"
        "pass from any to any port 6666 with bogus(@src[name])\n"
    ),
}


def build_network(policy=None, config=None):
    net = IdentPPNetwork("lifecycle-net", controller_config=config)
    left = net.add_switch("sw-left")
    right = net.add_switch("sw-right")
    net.connect(left, right)
    net.add_host(
        HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users", "staff")}),
        switch=left,
    )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1", users={}), switch=right)
    server.run_server("httpd", "root", 80)
    net.set_policy(policy or POLICY)
    return net


class TestExpiryHeap:
    def test_pop_due_returns_only_due_payloads_in_order(self):
        heap = ExpiryHeap()
        heap.push(3.0, "c", "t3")
        heap.push(1.0, "a", "t1")
        heap.push(2.0, "b", "t2")
        assert list(heap.pop_due(2.0)) == [("a", "t1"), ("b", "t2")]
        assert len(heap) == 1
        assert heap.next_due() == 3.0

    def test_equal_deadlines_pop_in_insertion_order(self):
        heap = ExpiryHeap()
        heap.push(1.0, "first", None)
        heap.push(1.0, "second", None)
        assert [key for key, _ in heap.pop_due(1.0)] == ["first", "second"]

    def test_clear(self):
        heap = ExpiryHeap()
        heap.push(1.0, "a")
        heap.clear()
        assert len(heap) == 0 and heap.next_due() is None


class TestDecisionCacheLifecycle:
    def flow(self, port=1000):
        return FlowSpec.tcp("10.0.0.1", "10.0.1.1", port, 80)

    def test_expired_lookup_evicts_and_unwinds_bookkeeping(self):
        cache = DecisionCache(ttl=1.0)
        flow = self.flow()
        cache.store(flow, "pass", "c1", 0.0, keep_state=True)
        assert len(cache) == 1 and cache._reverse_candidates == 1
        assert cache.lookup(flow, 5.0) is None
        # The stale entry is gone, not just invisible.
        assert len(cache) == 0
        assert cache._reverse_candidates == 0
        assert cache._by_cookie == {}
        assert cache.expirations == 1

    def test_expired_reverse_entry_evicted_on_lookup(self):
        cache = DecisionCache(ttl=1.0)
        flow = self.flow()
        cache.store(flow, "pass", "c1", 0.0, keep_state=True)
        # Reverse lookup within TTL hits; after TTL it evicts the entry.
        assert cache.lookup(flow.reversed(), 0.5) is not None
        assert cache.lookup(flow.reversed(), 5.0) is None
        assert len(cache) == 0 and cache._reverse_candidates == 0

    def test_heap_expire_sweeps_only_due_entries(self):
        cache = DecisionCache(ttl=1.0)
        old, fresh = self.flow(1000), self.flow(1001)
        cache.store(old, "pass", "c1", 0.0, keep_state=True)
        cache.store(fresh, "block", "c2", 0.5)
        assert cache.expire(1.2) == 1  # old (due 1.0) expires, fresh (due 1.5) stays
        assert old not in cache and fresh in cache
        assert cache._reverse_candidates == 0

    def test_store_drains_due_entries_itself(self):
        # A store whose clock has moved past another entry's deadline
        # evicts it on the spot (no sweep needed).
        cache = DecisionCache(ttl=1.0)
        old, fresh = self.flow(1000), self.flow(1001)
        cache.store(old, "pass", "c1", 0.0)
        cache.store(fresh, "block", "c2", 5.0)
        assert old not in cache and fresh in cache
        assert cache.expirations == 1

    def test_expire_at_exact_deadline_still_evicts(self):
        # Regression: an entry whose deadline coincides with the sweep
        # instant must not consume its heap record while staying cached.
        cache = DecisionCache(ttl=2.0)
        flow = self.flow()
        cache.store(flow, "pass", "c1", 0.0)
        assert cache.expire(2.0) == 1
        assert len(cache) == 0

    def test_refreshed_entry_survives_stale_heap_record(self):
        cache = DecisionCache(ttl=1.0)
        flow = self.flow()
        cache.store(flow, "pass", "c1", 0.0)
        cache.store(flow, "pass", "c2", 2.0)  # refreshed under a new cookie
        assert cache.expire(1.5) == 0  # c1's record is stale, c2 not due
        assert cache.lookup(flow, 2.5).cookie == "c2"
        assert cache.expire(3.5) == 1
        assert len(cache) == 0

    def test_capacity_bound_evicts_lru(self):
        cache = DecisionCache(ttl=0.0, capacity=2)
        a, b, c = self.flow(1), self.flow(2), self.flow(3)
        cache.store(a, "pass", "ca", 0.0, keep_state=True)
        cache.store(b, "pass", "cb", 0.0)
        cache.lookup(a, 0.0)  # refresh a's recency; b becomes the victim
        cache.store(c, "pass", "cc", 0.0)
        assert len(cache) == 2
        assert a in cache and c in cache and b not in cache
        assert cache.evictions == 1
        # Evicting a keep-state pass later unwinds the reverse counter.
        cache.store(self.flow(4), "pass", "cd", 0.0)
        cache.store(self.flow(5), "pass", "ce", 0.0)
        assert cache._reverse_candidates == 0

    def test_expiry_heap_stays_bounded_without_sweeps(self):
        # Regression: with lifecycle sweeps disabled, store() itself must
        # drain due heap records or the heap grows one record per
        # decision forever (unbounded memory under churn).
        cache = DecisionCache(ttl=1.0)
        for i in range(500):
            cache.store(self.flow(i % 100), "pass", f"c{i}", float(i))
        # Only records still inside the TTL window may remain.
        assert cache.expirable_count() <= 2
        assert len(cache) == 1  # everything older than the TTL was evicted

    def test_stats_shape(self):
        cache = DecisionCache(ttl=1.0, capacity=8)
        cache.store(self.flow(), "pass", "c1", 0.0, keep_state=True)
        stats = cache.stats()
        for key in ("entries", "hits", "misses", "hit_rate", "expirations",
                    "evictions", "reverse_candidates", "pending_deadlines"):
            assert key in stats
        assert stats["entries"] == 1.0
        assert stats["reverse_candidates"] == 1.0


class TestLifecycleService:
    def test_manual_sweep_accumulates_reclaimed(self):
        cache = DecisionCache(ttl=1.0)
        cache.store(FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 2), "pass", "c", 0.0)
        service = LifecycleService()
        service.register("decisions", cache.expire, lambda: len(cache))
        assert service.sweep(0.5) == {"decisions": 0}
        assert service.sweep(2.0) == {"decisions": 1}
        assert service.reclaimed["decisions"] == 1
        assert service.total_reclaimed() == 1
        assert service.stats()["sweeps"] == 2

    def test_periodic_sweeping_stops_when_state_drains(self):
        sim = Simulator()
        cache = DecisionCache(ttl=1.0)
        cache.store(FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 2), "pass", "c", 0.0)
        service = LifecycleService(interval=0.5)
        service.register("decisions", cache.expire, lambda: len(cache))
        service.attach(sim)
        service.kick()
        # The queue must drain by itself: the service deschedules once the
        # cache is empty instead of ticking forever.
        sim.run()
        assert len(cache) == 0
        assert not service.scheduled
        # Sweeps at 0.5 and 1.0; the 1.0 sweep lands exactly on the TTL
        # deadline, evicts, and the now-idle service deschedules itself.
        assert sim.now == pytest.approx(1.0)

    def test_unexpirable_state_does_not_hang_the_simulator(self):
        # ttl=0 entries can never expire; the service must not keep
        # rescheduling sweeps over them, or an unbounded run() never ends.
        sim = Simulator()
        cache = DecisionCache(ttl=0.0)
        cache.store(FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 2), "pass", "c", 0.0)
        service = LifecycleService(interval=0.5)
        service.register("decisions", cache.expire, cache.expirable_count)
        service.attach(sim)
        service.kick()
        sim.run()  # would never return if _tick kept returning True
        assert len(cache) == 1  # the entry legitimately stays
        assert not service.scheduled

    def test_sweep_follows_state_table_rebind_after_clear(self):
        # DecisionCache.clear() replaces .state_table; the registered
        # reclaimer must resolve the attribute per call, not capture the
        # orphaned bound method — and the configured timeout must survive.
        net = build_network()
        controller = net.controller
        controller.cache.state_table.timeout = 1.0
        controller.cache.clear()
        assert controller.cache.state_table.timeout == 1.0
        controller.cache.state_table.add(
            FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 2), 0.0, cookie="c"
        )
        swept = controller.lifecycle.sweep(100.0)
        assert swept["states"] == 1
        assert len(controller.cache.state_table) == 0

    def test_kick_rearms_after_idle(self):
        sim = Simulator()
        cache = DecisionCache(ttl=1.0)
        service = LifecycleService(interval=0.5)
        service.register("decisions", cache.expire, lambda: len(cache))
        service.attach(sim)
        service.kick()
        sim.run()
        assert not service.scheduled
        cache.store(FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 2), "pass", "c", sim.now)
        service.kick()
        assert service.scheduled
        sim.run()
        assert len(cache) == 0


class TestFailClosedPuntPipeline:
    def test_policy_error_drops_audits_and_leaves_no_pending(self):
        net = build_network(policy=ERROR_POLICY)
        result = net.send_flow("client", "http", "alice", "192.168.1.1", 6666)
        controller = net.controller
        assert not result.delivered
        # Regression: the erroring flow's pending entry used to leak and
        # its buffered PacketIns were stranded at the switches forever.
        bounded = check_bounded_state(
            network_flow_state(net), {"pending": 0, "buffered": 0}
        )
        assert bounded.passed, bounded.violations
        assert controller._pending_deadline_events == {}
        errors = [r for r in controller.audit.records() if r.rule_origin == "error"]
        assert len(errors) == 1
        assert errors[0].action == "block"
        assert "policy evaluation failed" in errors[0].note
        assert controller.policy_errors == 1
        # The healthy rule set still works after the failure.
        ok = net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        assert ok.delivered

    def test_error_decision_is_cached_as_block(self):
        net = build_network(policy=ERROR_POLICY)
        net.send_flow("client", "http", "alice", "192.168.1.1", 6666)
        flow = net.controller.audit.records()[-1].flow
        cached = net.controller.cache.lookup(flow, net.topology.sim.now)
        assert cached is not None and cached.action == "block"

    def test_lost_decision_hits_pending_deadline(self):
        config = ControllerConfig(pending_deadline=0.5)
        net = build_network(config=config)
        controller = net.controller
        # Simulate a lost decision: the completion callback never runs.
        controller._complete_decision = lambda *args, **kwargs: None
        client = net.host("client")
        client.open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        assert controller._pending == {}
        assert controller.pending_expired == 1
        assert all(s.buffered_count() == 0 for s in net.switches.values())
        records = [r for r in controller.audit.records() if r.rule_origin == "error"]
        assert len(records) == 1 and "deadline" in records[0].note
        assert net.host("server").delivered == []

    def test_sweep_backstops_pending_flow_whose_deadline_event_was_lost(self):
        # The one-shot deadline event normally covers every punt; the
        # lifecycle sweep backstops flows whose event disappeared (e.g. a
        # simulator reset dropped the queue but _pending survived).
        net = build_network(config=ControllerConfig(pending_deadline=0.5))
        controller = net.controller
        controller._complete_decision = lambda *args, **kwargs: None  # decision lost
        net.host("client").open_flow("http", "alice", "192.168.1.1", 80)
        net.run(duration=0.1)
        (flow,) = controller._pending
        # Simulate the event being lost: cancel and forget it.
        controller._pending_deadline_events.pop(flow).cancel()
        assert controller._uncovered_pending() == [flow]
        assert controller._next_pending_deadline() is not None
        swept = controller.lifecycle.sweep(net.topology.sim.now + 1.0)
        assert swept["pending"] == 1
        assert controller._pending == {} and controller.pending_expired == 1

    def test_completed_decision_cancels_the_deadline(self):
        net = build_network()
        net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        controller = net.controller
        assert controller._pending_deadline_events == {}
        assert controller.pending_expired == 0


class TestDropEntryReevaluation:
    def test_drop_entries_carry_hard_timeout(self):
        from repro.openflow.actions import DropAction

        net = build_network()
        net.send_flow("client", "telnet", "alice", "192.168.1.1", 23)
        drops = [
            entry
            for switch in net.switches.values()
            for entry in switch.flow_table.find(
                lambda e: all(isinstance(a, DropAction) for a in e.actions)
            )
        ]
        assert drops
        assert all(e.hard_timeout == net.controller.config.decision_ttl for e in drops)

    def test_chatty_blocked_flow_reevaluated_after_ttl(self):
        # idle_timeout alone would let a chatty blocked flow refresh its
        # drop entry forever; the hard cap forces a fresh decision.
        config = ControllerConfig(decision_ttl=0.2, idle_timeout=10.0)
        net = build_network(config=config)
        client = net.host("client")
        _, socket, _ = client.open_flow("telnet", "alice", "192.168.1.1", 23)
        net.run()
        fresh_decisions = len([r for r in net.controller.audit.records() if not r.cached])
        assert fresh_decisions == 1
        net.run(duration=0.5)  # let both the drop entry and the cache TTL lapse
        client.send_on_socket(socket)
        net.run()
        fresh_decisions = len([r for r in net.controller.audit.records() if not r.cached])
        assert fresh_decisions == 2  # the flow was re-evaluated, not silently dropped


class TestLifecycleSweepsNetwork:
    def test_sweeps_reclaim_all_flow_state_under_churn(self):
        config = ControllerConfig(
            decision_ttl=0.2, idle_timeout=0.2, lifecycle_interval=0.1,
            pending_deadline=1.0,
        )
        net = build_network(config=config)
        controller = net.controller
        controller.cache.state_table.timeout = 0.2
        client = net.host("client")
        for port in (80, 81, 82, 83):
            client.open_flow("http", "alice", "192.168.1.1", port)
        # Settle just long enough for the decisions to land, well before
        # the TTLs: the caches must be populated at this point.
        net.run(duration=0.05)
        assert len(controller.cache) > 0
        # Drain: the lifecycle keeps sweeping while state remains, then
        # deschedules itself so the run can end.  The shared bounded-state
        # checker proves every flow structure was reclaimed to zero.
        net.run()
        drained = network_flow_state(net)
        bounded = check_bounded_state(drained, {name: 0 for name in drained})
        assert bounded.passed, bounded.violations
        stats = controller.lifecycle.stats()
        assert stats["sweeps"] > 0
        assert stats["reclaimed_total"] > 0
        assert stats["reclaimable_entries"] == 0
        assert not controller.lifecycle.scheduled

    def test_summary_reports_lifecycle_sections(self):
        net = build_network()
        net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        summary = net.controller.summary()
        assert "lifecycle" in summary and "state_table" in summary
        assert summary["pending_flows"] == 0
        assert summary["policy_errors"] == 0
        assert summary["cache"]["expirations"] == 0.0


class TestInterceptorLatencyCache:
    def test_mean_is_cached_and_invalidated_by_mutation_epoch(self):
        net = build_network()
        qc = net.controller.query_client
        switch = net.switches["sw-left"]
        first = qc._interceptor_latency(switch)
        links = net.topology.links()
        expected = 2.0 * (sum(l.latency for l in links) / len(links))
        assert first == pytest.approx(expected)
        assert qc._mean_link_latency == (
            net.topology.mutation_epoch, pytest.approx(expected / 2.0)
        )
        # Growing the topology invalidates the cached mean.
        extra = net.add_switch("sw-extra")
        net.connect(extra, "sw-right", latency=10.0)
        second = qc._interceptor_latency(switch)
        links = net.topology.links()
        assert second == pytest.approx(2.0 * sum(l.latency for l in links) / len(links))
        assert second != first

    def test_remove_then_add_link_recomputes_mean(self):
        # Regression: the mean used to be keyed on the *link count*, so
        # removing a link and adding a different-latency one (count
        # unchanged) served the stale mean forever.
        net = build_network()
        qc = net.controller.query_client
        switch = net.switches["sw-left"]
        extra = net.add_switch("sw-extra")
        net.connect(extra, "sw-right", latency=1.0)
        before = qc._interceptor_latency(switch)
        count_before = net.topology.link_count()
        net.topology.remove_link(extra, "sw-right")
        net.connect(extra, "sw-right", latency=25.0)
        assert net.topology.link_count() == count_before
        after = qc._interceptor_latency(switch)
        links = net.topology.links()
        assert after == pytest.approx(2.0 * sum(l.latency for l in links) / len(links))
        assert after != before
