"""Tests for the ident++ protocol: flow specs, key/value documents, wire format."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import WireFormatError
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import KeyValueSection, ResponseDocument
from repro.identpp.wire import (
    IDENT_PP_PORT,
    IdentQuery,
    IdentResponse,
    parse_query_packet,
    parse_query_payload,
    parse_response_payload,
)
from repro.netsim.packet import Packet


class TestFlowSpec:
    def test_from_packet(self):
        packet = Packet.tcp("10.0.0.1", "10.0.0.2", 1234, 80)
        flow = FlowSpec.from_packet(packet)
        assert str(flow.src_ip) == "10.0.0.1"
        assert flow.dst_port == 80
        assert flow.proto_name() == "tcp"
        assert flow.matches_packet(packet)

    def test_reversed(self):
        flow = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1234, 80)
        back = flow.reversed()
        assert back.src_port == 80 and back.dst_port == 1234
        assert back.reversed() == flow

    def test_hashable(self):
        a = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2)
        b = FlowSpec.tcp("10.0.0.1", "10.0.0.2", 1, 2)
        assert a == b and len({a, b}) == 1

    def test_udp_constructor(self):
        assert FlowSpec.udp("1.1.1.1", "2.2.2.2", 53, 53).proto_name() == "udp"

    def test_string_form(self):
        assert str(FlowSpec.tcp("1.1.1.1", "2.2.2.2", 1, 2)) == "tcp 1.1.1.1:1 -> 2.2.2.2:2"


class TestKeyValueSections:
    def test_section_last_duplicate_wins(self):
        section = KeyValueSection()
        section.add("name", "skype")
        section.add("name", "http")
        assert section.get("name") == "http"
        assert section.keys() == ["name"]
        assert len(section) == 2

    def test_empty_key_rejected(self):
        with pytest.raises(WireFormatError):
            KeyValueSection().add("  ", "value")

    def test_latest_takes_last_section(self):
        document = ResponseDocument()
        document.add_section({"userID": "alice"}, source="daemon")
        document.add_section({"userID": "trusted-override"}, source="controller")
        assert document.latest("userID") == "trusted-override"

    def test_concatenated_joins_all_sections(self):
        document = ResponseDocument()
        document.add_section({"userID": "alice"})
        document.add_section({"userID": "alice"})
        document.add_section({"userID": "mallory"})
        assert document.concatenated("userID") == "alice alice mallory"
        assert document.all_values("userID") == ["alice", "alice", "mallory"]

    def test_missing_key(self):
        document = ResponseDocument()
        document.add_section({"a": "1"})
        assert document.latest("missing") is None
        assert document.concatenated("missing") == ""
        assert not document.has_key("missing")

    def test_empty_sections_not_stored(self):
        document = ResponseDocument()
        document.add_section({})
        assert document.section_count() == 0
        assert not document

    def test_augment_appends_new_section(self):
        document = ResponseDocument()
        document.add_section({"userID": "alice"}, source="daemon")
        document.augment({"remote-accept": "no"}, source="branch-b")
        assert document.section_count() == 2
        assert document.sources() == ["daemon", "branch-b"]

    def test_body_round_trip(self):
        document = ResponseDocument()
        document.add_section({"userID": "alice", "name": "skype"})
        document.add_section({"requirements": "block all pass all"})
        restored = ResponseDocument.from_body(document.to_body())
        assert restored.section_count() == 2
        assert restored.latest("requirements") == "block all pass all"
        assert restored.as_flat_dict() == document.as_flat_dict()

    def test_malformed_body_rejected(self):
        with pytest.raises(WireFormatError):
            ResponseDocument.from_body("no colon here")

    def test_copy_is_independent(self):
        document = ResponseDocument()
        document.add_section({"a": "1"})
        clone = document.copy()
        clone.augment({"b": "2"})
        assert document.section_count() == 1 and clone.section_count() == 2

    @given(st.dictionaries(
        st.text(alphabet="abcdefghij-", min_size=1, max_size=8),
        st.text(alphabet="abcdefghij0123456789 ", min_size=0, max_size=12).map(str.strip),
        min_size=1, max_size=5,
    ))
    def test_property_body_round_trip(self, pairs):
        document = ResponseDocument()
        document.add_section(pairs)
        restored = ResponseDocument.from_body(document.to_body())
        assert restored.as_flat_dict() == {k: v for k, v in pairs.items()}


class TestWireFormat:
    def flow(self):
        return FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 80)

    def test_query_payload_format(self):
        query = IdentQuery(flow=self.flow(), target_role="src", keys=("userID", "name"))
        lines = query.to_payload().splitlines()
        assert lines[0] == "TCP 40000 80"
        assert lines[1:] == ["userID", "name"]

    def test_query_packet_spoofs_source_ip(self):
        query = IdentQuery(flow=self.flow(), target_role="src")
        packet = query.to_packet()
        # query to the flow's source carries the flow's destination as its source IP
        assert str(packet.ip_src) == "192.168.1.1"
        assert str(packet.ip_dst) == "192.168.0.10"
        assert packet.tp_dst == IDENT_PP_PORT

    def test_query_packet_to_destination(self):
        query = IdentQuery(flow=self.flow(), target_role="dst")
        packet = query.to_packet()
        assert str(packet.ip_src) == "192.168.0.10"
        assert str(packet.ip_dst) == "192.168.1.1"

    def test_query_round_trip_via_packet(self):
        query = IdentQuery(flow=self.flow(), target_role="src", keys=("userID",))
        parsed = parse_query_packet(query.to_packet())
        assert parsed.flow == self.flow()
        assert parsed.keys == ("userID",)
        assert parsed.target_role == "src"

    def test_query_round_trip_destination_role(self):
        query = IdentQuery(flow=self.flow(), target_role="dst")
        parsed = parse_query_packet(query.to_packet())
        assert parsed.flow == self.flow()

    def test_unknown_role_rejected(self):
        with pytest.raises(WireFormatError):
            IdentQuery(flow=self.flow(), target_role="middle")

    def test_parse_query_payload_defaults_keys(self):
        parsed = parse_query_payload(
            "TCP 40000 80", query_src_ip="192.168.1.1", query_dst_ip="192.168.0.10"
        )
        assert parsed.keys  # falls back to the default hint list

    @pytest.mark.parametrize("payload", ["", "TCP 1", "TCP a b", "TCP 99999 80"])
    def test_malformed_query_payload_rejected(self, payload):
        with pytest.raises(WireFormatError):
            parse_query_payload(payload, query_src_ip="1.1.1.1", query_dst_ip="2.2.2.2")

    def test_non_identpp_packet_rejected(self):
        with pytest.raises(WireFormatError):
            parse_query_packet(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80))

    def test_response_payload_round_trip(self):
        document = ResponseDocument()
        document.add_section({"userID": "alice", "name": "skype"}, source="daemon")
        document.add_section({"remote-accept": "no"}, source="controller")
        response = IdentResponse(flow=self.flow(), document=document, responder="host-a")
        payload = response.to_payload()
        assert payload.splitlines()[0] == "TCP 40000 80"
        assert "" in payload.splitlines()  # blank line separates sections
        parsed = parse_response_payload(payload, flow=self.flow())
        assert parsed.document.latest("userID") == "alice"
        assert parsed.document.section_count() == 2

    def test_response_flow_mismatch_rejected(self):
        response = IdentResponse(flow=self.flow(), document=ResponseDocument())
        other_flow = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 22)
        with pytest.raises(WireFormatError):
            parse_response_payload(response.to_payload(), flow=other_flow)

    def test_response_to_packet_reverses_query(self):
        query_packet = IdentQuery(flow=self.flow(), target_role="src").to_packet()
        response = IdentResponse(flow=self.flow(), document=ResponseDocument(), responder="h")
        reply = response.to_packet(query_packet)
        assert reply.ip_dst == query_packet.ip_src
        assert reply.tp_dst == IDENT_PP_PORT
