"""Tests for the baseline architectures and the security analysis harness."""

import pytest

from repro.baselines.distributed_firewall import DistributedFirewall
from repro.baselines.ethane import EthanePolicy
from repro.baselines.vanilla_firewall import FirewallRule, VanillaFirewall, enterprise_default_rules
from repro.baselines.vlan import VLANSegmentation
from repro.identpp.flowspec import FlowSpec
from repro.security.analysis import AttackProbe, SecurityMatrix, impact_of_compromise
from repro.security.threat_model import CompromiseScenario, ThreatModel

LAN_TO_SERVER_HTTP = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 80)
LAN_TO_SERVER_SMB = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 445)
EXTERNAL_TO_LAN = FlowSpec.tcp("203.0.113.5", "192.168.0.10", 40000, 80)


class TestVanillaFirewall:
    def test_first_match_wins(self):
        firewall = VanillaFirewall([
            FirewallRule("block", dst_port=445),
            FirewallRule("pass", dst="192.168.1.0/24"),
            FirewallRule("block"),
        ])
        assert firewall.decide(LAN_TO_SERVER_SMB) == "block"
        assert firewall.decide(LAN_TO_SERVER_HTTP) == "pass"
        assert firewall.decide(EXTERNAL_TO_LAN) == "block"

    def test_default_action(self):
        assert VanillaFirewall([]).decide(LAN_TO_SERVER_HTTP) == "block"
        assert VanillaFirewall([], default_action="pass").decide(LAN_TO_SERVER_HTTP) == "pass"

    def test_stateful_return_traffic(self):
        firewall = VanillaFirewall([FirewallRule("pass", dst="192.168.1.0/24", keep_state=True),
                                    FirewallRule("block")])
        assert firewall.decide(LAN_TO_SERVER_HTTP) == "pass"
        assert firewall.decide(LAN_TO_SERVER_HTTP.reversed()) == "pass"

    def test_ignores_context(self):
        from repro.baselines.base import FlowContext
        firewall = VanillaFirewall([FirewallRule("block")])
        context = FlowContext(src_user="system", src_app="Server")
        assert firewall.decide(LAN_TO_SERVER_SMB, context) == "block"

    def test_allow_deny_helpers_and_defaults(self):
        firewall = VanillaFirewall()
        firewall.allow(dst="192.168.1.0/24", dst_port=80)
        firewall.deny()
        assert firewall.decide(LAN_TO_SERVER_HTTP) == "pass"
        assert len(firewall) == 2
        assert firewall.uses_information() == ("5-tuple",)

    def test_enterprise_default_rules_shape(self):
        firewall = VanillaFirewall(enterprise_default_rules())
        assert firewall.decide(LAN_TO_SERVER_HTTP) == "pass"
        assert firewall.decide(EXTERNAL_TO_LAN) == "block"


class TestDistributedFirewall:
    def test_same_policy_as_vanilla_when_uncompromised(self):
        firewall = DistributedFirewall(enterprise_default_rules())
        assert firewall.decide(LAN_TO_SERVER_HTTP) == "pass"
        assert firewall.decide(EXTERNAL_TO_LAN) == "block"

    def test_compromised_destination_enforces_nothing(self):
        firewall = DistributedFirewall(enterprise_default_rules())
        assert firewall.decide(EXTERNAL_TO_LAN) == "block"
        firewall.mark_host_compromised("192.168.0.10")
        assert firewall.decide(EXTERNAL_TO_LAN) == "pass"


class TestEthane:
    def build(self):
        policy = EthanePolicy()
        policy.register_host("192.168.0.10", "alice", groups=["staff"])
        policy.register_host("192.168.0.5", "system", groups=["system"])
        policy.register_host("192.168.1.1", "system", groups=["system"])
        policy.allow(src_group="staff", dst="192.168.1.0/24", dst_port=80)
        policy.allow(src_user="system", dst="192.168.1.0/24", dst_port=445)
        policy.deny()
        return policy

    def test_user_based_rules(self):
        policy = self.build()
        assert policy.decide(LAN_TO_SERVER_HTTP) == "pass"
        assert policy.decide(LAN_TO_SERVER_SMB) == "block"
        admin_flow = FlowSpec.tcp("192.168.0.5", "192.168.1.1", 40000, 445)
        assert policy.decide(admin_flow) == "pass"

    def test_unregistered_host_blocked(self):
        policy = self.build()
        assert policy.decide(EXTERNAL_TO_LAN) == "block"
        assert policy.binding_for("203.0.113.5") is None

    def test_cannot_express_application_rules(self):
        # Ethane ignores application context entirely: telnet and http from the
        # same user/host are indistinguishable.
        from repro.baselines.base import FlowContext
        policy = self.build()
        http = policy.decide(LAN_TO_SERVER_HTTP, FlowContext(src_app="http"))
        telnet = policy.decide(LAN_TO_SERVER_HTTP, FlowContext(src_app="telnet"))
        assert http == telnet == "pass"
        assert "authenticated users" in policy.uses_information()


class TestVLAN:
    def build(self):
        vlan = VLANSegmentation()
        vlan.assign("lan", ["192.168.0.0/24"])
        vlan.assign("servers", ["192.168.1.0/24"])
        vlan.allow_between("lan", "servers")
        return vlan

    def test_intra_segment_allowed(self):
        vlan = self.build()
        assert vlan.decide(FlowSpec.tcp("192.168.0.1", "192.168.0.2", 1, 2)) == "pass"

    def test_whitelisted_inter_segment_allowed(self):
        assert self.build().decide(LAN_TO_SERVER_HTTP) == "pass"

    def test_unknown_and_unlisted_blocked(self):
        vlan = self.build()
        assert vlan.decide(EXTERNAL_TO_LAN) == "block"
        vlan.assign("research", ["192.168.2.0/24"])
        research_flow = FlowSpec.tcp("192.168.0.1", "192.168.2.1", 1, 7777)
        assert vlan.decide(research_flow) == "block"

    def test_segment_of(self):
        vlan = self.build()
        assert vlan.segment_of("192.168.0.7") == "lan"
        assert vlan.segment_of("8.8.8.8") is None
        assert vlan.segments() == ["lan", "servers"]


class TestSecurityAnalysis:
    def make_probes(self):
        return [
            AttackProbe.build(LAN_TO_SERVER_HTTP, {"userID": "alice"}, description="web"),
            AttackProbe.build(LAN_TO_SERVER_SMB, {"userID": "system"}, description="smb",
                              requires_spoofing=True),
        ]

    def test_impact_of_compromise(self):
        probes = self.make_probes()
        scenario = CompromiseScenario("end-host", "c1")
        result = impact_of_compromise(
            "test-arch", scenario,
            decider_before=lambda probe: probe.description == "web",
            decider_after=lambda probe: True,
            probes=probes,
        )
        assert result.total_probes == 2
        assert result.gained_count == 1
        assert result.gained_fraction == 0.5
        assert result.exposure_after == 1.0
        assert {p.description for p in result.gained} == {"smb"}

    def test_matrix_rows(self):
        matrix = SecurityMatrix()
        probes = self.make_probes()
        for arch in ("a", "b"):
            result = impact_of_compromise(
                arch, CompromiseScenario("switch", "sw1"),
                lambda probe: False, lambda probe: True, probes,
            )
            matrix.add(result)
        rows = matrix.rows()
        assert len(rows) == 1 and rows[0]["a"] == 2 and rows[0]["b"] == 2
        assert matrix.architectures() == ["a", "b"]
        assert len(matrix) == 2

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError):
            CompromiseScenario("toaster", "x")

    def test_threat_model_assumptions(self):
        model = ThreatModel()
        assumptions = model.assumptions()
        assert assumptions["users_hold_private_keys"]
        assert CompromiseScenario("controller", "c").difficulty() > CompromiseScenario(
            "user-application", "a").difficulty()

    def test_probe_claims_round_trip(self):
        probe = AttackProbe.build(LAN_TO_SERVER_SMB, {"b": "2", "a": "1"})
        assert probe.claims() == {"a": "1", "b": "2"}
