"""Tests for the experiment harness and the shared invariant checkers.

Three layers:

* spec expansion — grid product, seed threading, validation of
  axis combos, repeat aggregation in :class:`Experiment`;
* every invariant checker in :mod:`repro.workloads.invariants`
  exercised against a synthetic passing run AND a deliberately
  violated run, so the matrix's gates are proven able to fail;
* one small end-to-end matrix run under ``sanitize=True``.
"""

from dataclasses import dataclass, replace

import pytest

from repro.workloads import invariants
from repro.workloads.experiment import (
    ARCH_IDENTPP,
    BASELINE_ARCHITECTURES,
    Experiment,
    ScenarioSpec,
    applicable_invariants,
    default_matrix,
    expand_grid,
)


# ----------------------------------------------------------------------
# Synthetic audit records (the shape the checkers classify on)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FakeRecord:
    """Just enough of an audit record for the checkers: flow + origin."""

    flow: str
    cached: bool = False
    rule_origin: str = "rule"
    time: float = 0.0


# ----------------------------------------------------------------------
# Spec expansion
# ----------------------------------------------------------------------

class TestScenarioSpec:
    def test_cell_id_joins_axes(self):
        spec = ScenarioSpec()
        assert spec.cell_id() == "edge_core/single/web_open/web_burst/none"

    def test_cell_id_marks_partial_daemon_fleets(self):
        spec = ScenarioSpec(daemon_fraction=0.1)
        assert spec.cell_id().endswith("/daemons10%")

    def test_unknown_axis_value_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            ScenarioSpec(topology="moebius_strip").validate()

    def test_kill_shard_requires_a_cluster(self):
        with pytest.raises(ValueError, match="cluster"):
            ScenarioSpec(failure="kill_shard", control="single").validate()

    def test_partition_heal_requires_spine_leaf(self):
        with pytest.raises(ValueError, match="spine_leaf"):
            ScenarioSpec(failure="partition_heal", topology="edge_core").validate()

    def test_retenant_failure_and_traffic_pair_up(self):
        with pytest.raises(ValueError, match="retenant"):
            ScenarioSpec(failure="retenant", traffic="web_burst").validate()
        with pytest.raises(ValueError, match="retenant"):
            ScenarioSpec(traffic="retenant", failure="none").validate()

    def test_quarantine_race_needs_worm_traffic(self):
        with pytest.raises(ValueError, match="worm"):
            ScenarioSpec(failure="quarantine_race", control="cluster2").validate()


class TestExpandGrid:
    def test_cartesian_product_over_sorted_axes(self):
        specs = expand_grid({
            "topology": ["edge_core", "spine_leaf"],
            "control": ["single", "cluster2"],
        })
        assert len(specs) == 4
        combos = {(s.topology, s.control) for s in specs}
        assert combos == {
            ("edge_core", "single"), ("edge_core", "cluster2"),
            ("spine_leaf", "single"), ("spine_leaf", "cluster2"),
        }

    def test_seed_threads_from_base_in_stable_order(self):
        base = ScenarioSpec(seed=7000)
        specs = expand_grid({"control": ["single", "cluster2"]}, base=base)
        assert [s.seed for s in specs] == [7000, 7001]
        # Same grid, same order, same seeds — the expansion is stable.
        again = expand_grid({"control": ["single", "cluster2"]}, base=base)
        assert [s.seed for s in again] == [s.seed for s in specs]

    def test_cells_are_named_after_their_axes(self):
        (spec,) = expand_grid({"topology": ["spine_leaf"]})
        assert spec.name == spec.cell_id()

    def test_expansion_validates_each_cell(self):
        with pytest.raises(ValueError):
            expand_grid({"failure": ["kill_shard"]})  # base control is single

    def test_default_matrix_has_20_plus_uniquely_named_cells(self):
        cells = default_matrix()
        assert len(cells) >= 20
        assert len({c.name for c in cells}) == len(cells)
        for cell in cells:
            cell.validate()


# ----------------------------------------------------------------------
# Invariant checkers: one passing and one violated run each
# ----------------------------------------------------------------------

class TestFailClosedChecker:
    def test_passes_when_every_flow_reaches_a_verdict(self):
        records = [FakeRecord("f1"), FakeRecord("f2", rule_origin="error")]
        result = invariants.check_fail_closed(["f1", "f2"], records)
        assert result.passed
        assert result.details["decided"] == 1
        assert result.details["failed_closed"] == 1

    def test_planted_open_ended_flow_fails(self):
        records = [FakeRecord("f1")]
        result = invariants.check_fail_closed(["f1", "lost"], records)
        assert not result.passed
        assert any("lost" in v for v in result.violations)

    def test_undrained_pending_or_buffers_fail(self):
        result = invariants.check_fail_closed(["f1"], [FakeRecord("f1")], pending=2)
        assert not result.passed and "pending" in result.violations[0]
        result = invariants.check_fail_closed(["f1"], [FakeRecord("f1")], buffered=3)
        assert not result.passed and "buffered" in result.violations[0]

    def test_cached_replays_do_not_count_as_verdicts(self):
        records = [FakeRecord("f1", cached=True)]
        result = invariants.check_fail_closed(["f1"], records)
        assert not result.passed


class TestZeroLossChecker:
    def test_passes_when_each_flow_decided_exactly_once(self):
        records = [FakeRecord("f1"), FakeRecord("f2")]
        result = invariants.check_zero_loss(["f1", "f2"], records)
        assert result.passed and result.name == invariants.ZERO_LOSS

    def test_double_decision_fails(self):
        records = [FakeRecord("f1"), FakeRecord("f1")]
        result = invariants.check_zero_loss(["f1"], records)
        assert not result.passed
        assert any("decided 2 times" in v for v in result.violations)

    def test_fail_closed_then_fresh_decision_is_fine(self):
        # The error verdict is the backstop, not a decision: a flow that
        # failed closed on the corpse and was re-decided after adoption
        # still counts as decided exactly once.
        records = [FakeRecord("f1", rule_origin="error"), FakeRecord("f1")]
        assert invariants.check_zero_loss(["f1"], records).passed


class TestContainmentChecker:
    def test_pre_quarantine_traffic_is_expected(self):
        deliveries = [(1.0, "10.0.0.1", "10.0.1.1")]
        result = invariants.check_containment(deliveries, {"10.0.0.1": 2.0})
        assert result.passed
        assert result.details["breaches"] == 0

    def test_post_quarantine_delivery_is_a_breach(self):
        deliveries = [(3.0, "10.0.0.1", "10.0.1.1")]
        result = invariants.check_containment(deliveries, {"10.0.0.1": 2.0})
        assert not result.passed
        assert "quarantined host 10.0.0.1" in result.violations[0]

    def test_grace_window_tolerates_propagation(self):
        deliveries = [(2.05, "10.0.0.1", "10.0.1.1")]
        assert not invariants.check_containment(deliveries, {"10.0.0.1": 2.0})
        assert invariants.check_containment(
            deliveries, {"10.0.0.1": 2.0}, grace=0.1
        ).passed


class TestCacheCoherenceChecker:
    def test_fresh_decisions_matching_new_identity_pass(self):
        probes = [invariants.CoherenceProbe("srv:80", "block", "block", requeried=True)]
        assert invariants.check_cache_coherence(probes).passed

    def test_stale_cached_identity_fails(self):
        probes = [invariants.CoherenceProbe("srv:80", "block", "pass")]
        result = invariants.check_cache_coherence(probes)
        assert not result.passed
        assert "stale cached identity" in result.violations[0]

    def test_serving_without_requery_fails(self):
        probes = [invariants.CoherenceProbe("srv:80", "block", "block", requeried=False)]
        result = invariants.check_cache_coherence(probes)
        assert not result.passed
        assert "without re-querying" in result.violations[0]


class TestBoundedStateChecker:
    def test_peaks_within_caps_pass(self):
        result = invariants.check_bounded_state(
            {"cache": 10, "extra_uncapped": 999}, {"cache": 16}
        )
        assert result.passed

    def test_overflowing_structure_fails(self):
        result = invariants.check_bounded_state({"cache": 33}, {"cache": 16})
        assert not result.passed
        assert "reached 33" in result.violations[0]

    def test_unmeasured_capped_structure_fails(self):
        result = invariants.check_bounded_state({}, {"cache": 16})
        assert not result.passed
        assert "never measured" in result.violations[0]


# ----------------------------------------------------------------------
# The experiment runner
# ----------------------------------------------------------------------

SMALL = ScenarioSpec(topology="single", flows=8, clients=2, servers=1,
                     duration=6.0, sanitize=True)


class TestExperimentRunner:
    def test_rejects_nonpositive_repeats(self):
        with pytest.raises(ValueError):
            Experiment("bad", nb_repeats=0)

    def test_scenarios_default_is_not_shared_between_instances(self):
        # The exemplar's mutable-default trap (lint rule R5): two
        # experiments must never share a scenario list.
        first = Experiment("first").add(SMALL)
        second = Experiment("second")
        assert second.scenarios == []
        assert first.scenarios != second.scenarios

    def test_repeat_aggregation_sums_identpp_outcomes(self):
        single = Experiment("one", [SMALL], nb_repeats=1).run()
        double = Experiment("two", [SMALL], nb_repeats=2).run()
        one, two = single.cells[0], double.cells[0]
        assert one.repeats == 1 and two.repeats == 2
        one_counts = one.architectures[ARCH_IDENTPP]
        two_counts = two.architectures[ARCH_IDENTPP]
        judged_one = one_counts["allowed"] + one_counts["blocked"]
        judged_two = two_counts["allowed"] + two_counts["blocked"]
        assert judged_two == 2 * judged_one
        # Baselines are evaluated once per cell, not per repeat.
        for arch in BASELINE_ARCHITECTURES:
            assert two.architectures[arch] == one.architectures[arch]

    def test_repeats_thread_distinct_seeds(self):
        report = Experiment("seeded", [SMALL], nb_repeats=2).run()
        hashes = report.cells[0].trace_hashes
        assert len(hashes) == 2
        # Different repeat seeds produce different traffic timelines.
        assert hashes[0] != hashes[1]

    def test_identical_runs_are_deterministic(self):
        first = Experiment("det", [SMALL]).run()
        second = Experiment("det", [SMALL]).run()
        assert first.cells[0].trace_hashes == second.cells[0].trace_hashes
        assert first.cells[0].architectures == second.cells[0].architectures


class TestEndToEndMatrix:
    def test_four_cell_matrix_runs_sanitized_and_passes(self):
        specs = expand_grid(
            {"control": ["single", "cluster2"],
             "topology": ["edge_core", "spine_leaf"]},
            base=replace(SMALL, topology="edge_core"),
        )
        assert len(specs) == 4
        report = Experiment("e2e", specs, nb_repeats=1).run()
        assert report.passed, [c.as_dict() for c in report.failed_cells()]
        for cell in report.cells:
            # Every applicable invariant ran and passed...
            assert set(cell.invariants) == set(applicable_invariants(cell.spec))
            assert all(entry["passed"] for entry in cell.invariants.values())
            # ...ident++ and all four baselines are compared...
            assert set(cell.architectures) == {ARCH_IDENTPP, *BASELINE_ARCHITECTURES}
            # ...and the sanitizer hash was recorded for the repeat.
            assert cell.trace_hashes
        payload = report.as_dict()
        assert payload["cells_total"] == 4 and payload["cells_failed"] == 0
