"""Tests for the OpenFlow switch datapath, control channel and controllers."""

import pytest

from repro.exceptions import ChannelError
from repro.netsim.nodes import Node
from repro.netsim.packet import Packet
from repro.netsim.topology import Topology
from repro.openflow.actions import DropAction, FloodAction, OutputAction
from repro.openflow.controller_base import Controller, LearningSwitchController
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod, FlowModCommand, PacketIn, PacketOut, StatsRequest
from repro.openflow.switch import OpenFlowSwitch


class SinkNode(Node):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def receive(self, packet, in_port):
        super().receive(packet, in_port)
        self.received.append(packet)


class RecordingController(Controller):
    """Controller that records packet-ins and applies a canned reaction."""

    def __init__(self, reaction=None):
        super().__init__("recording")
        self.messages = []
        self.reaction = reaction

    def on_packet_in(self, message):
        self.messages.append(message)
        if self.reaction is not None:
            self.reaction(self, message)


def build_fabric(controller=None):
    """host_a -- switch -- host_b with an optional controller attached."""
    topo = Topology("fabric")
    switch = topo.add_node(OpenFlowSwitch("sw1"))
    host_a = topo.add_node(SinkNode("host-a"))
    host_b = topo.add_node(SinkNode("host-b"))
    topo.add_link(host_a, switch)
    topo.add_link(host_b, switch)
    if controller is not None:
        controller.attach(topo.sim)
        controller.register_switch(switch)
    return topo, switch, host_a, host_b


class TestSwitchDatapath:
    def test_fail_secure_drops_on_miss_without_controller(self):
        topo, switch, host_a, host_b = build_fabric()
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert host_b.received == []
        assert switch.drops.value == 1

    def test_fail_open_floods_on_miss_without_controller(self):
        topo = Topology()
        switch = topo.add_node(OpenFlowSwitch("sw1", fail_mode="open"))
        host_a = topo.add_node(SinkNode("a"))
        host_b = topo.add_node(SinkNode("b"))
        topo.add_link(host_a, switch)
        topo.add_link(host_b, switch)
        host_a.send(Packet(), host_a.port(1))
        topo.run()
        assert len(host_b.received) == 1

    def test_installed_entry_forwards(self):
        topo, switch, host_a, host_b = build_fabric()
        # host_b hangs off switch port 2
        switch.handle_message(FlowMod(match=Match(tp_dst=80), actions=[OutputAction(2)]))
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert len(host_b.received) == 1
        assert switch.forwarded.value == 1

    def test_drop_entry_drops(self):
        topo, switch, host_a, host_b = build_fabric()
        switch.handle_message(FlowMod(match=Match(tp_dst=80), actions=[DropAction()]))
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert host_b.received == []

    def test_miss_punts_and_buffers(self):
        controller = RecordingController()
        topo, switch, host_a, host_b = build_fabric(controller)
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert len(controller.messages) == 1
        assert controller.messages[0].in_port == 1
        assert switch.punts.value == 1
        assert switch.buffered_count() == 1

    def test_packet_out_releases_buffer(self):
        def release(controller, message):
            controller.send_packet_out(message.switch, actions=[OutputAction(2)],
                                       buffer_id=message.buffer_id)

        controller = RecordingController(reaction=release)
        topo, switch, host_a, host_b = build_fabric(controller)
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert len(host_b.received) == 1
        assert switch.buffered_count() == 0

    def test_flow_mod_with_buffer_releases_and_caches(self):
        def install(controller, message):
            controller.install_flow(message.switch, Match.from_packet(message.packet),
                                    [OutputAction(2)], buffer_id=message.buffer_id)

        controller = RecordingController(reaction=install)
        topo, switch, host_a, host_b = build_fabric(controller)
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert len(host_b.received) == 2
        assert len(controller.messages) == 1  # second packet hit the cached entry

    def test_flow_mod_delete(self):
        topo, switch, *_ = build_fabric()
        switch.handle_message(FlowMod(match=Match(tp_dst=80), actions=[OutputAction(2)]))
        switch.handle_message(FlowMod(match=Match(), command=FlowModCommand.DELETE))
        assert len(switch.flow_table) == 0

    def test_compromised_switch_floods_everything(self):
        topo, switch, host_a, host_b = build_fabric()
        switch.handle_message(FlowMod(match=Match(), actions=[DropAction()]))
        switch.mark_compromised()
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert len(host_b.received) == 1
        switch.restore()
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert len(host_b.received) == 1

    def test_stats_request(self):
        replies = []

        class StatsController(RecordingController):
            def on_port_stats(self, message):
                replies.append(message)

        controller = StatsController()
        topo, switch, host_a, host_b = build_fabric(controller)
        controller.channel_for(switch).send_to_switch(StatsRequest())
        topo.run()
        assert replies and set(replies[0].stats) == {1, 2}

    def test_packet_out_without_buffer_or_packet_rejected(self):
        topo, switch, *_ = build_fabric()
        with pytest.raises(Exception):
            switch.handle_message(PacketOut(actions=[FloodAction()]))


class TestControllerBase:
    def test_duplicate_switch_registration_rejected(self):
        controller = RecordingController()
        topo, switch, *_ = build_fabric(controller)
        with pytest.raises(ChannelError):
            controller.register_switch(switch)

    def test_unknown_switch_channel_rejected(self):
        controller = RecordingController()
        with pytest.raises(ChannelError):
            controller.channel_for("ghost")

    def test_disconnected_channel_drops_messages(self):
        controller = RecordingController()
        topo, switch, host_a, host_b = build_fabric(controller)
        controller.channel_for(switch).disconnect()
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert controller.messages == []
        # fail-secure switch dropped the packet instead
        assert switch.drops.value == 1

    def test_broadcast_flow(self):
        controller = RecordingController()
        topo = Topology()
        switches = [topo.add_node(OpenFlowSwitch(f"sw{i}")) for i in range(3)]
        controller.attach(topo.sim)
        for switch in switches:
            controller.register_switch(switch)
        controller.broadcast_flow(Match(tp_dst=80), [DropAction()])
        topo.run()
        assert all(len(switch.flow_table) == 1 for switch in switches)

    def test_counters(self):
        def install(controller, message):
            controller.install_flow(message.switch, Match.from_packet(message.packet),
                                    [OutputAction(2)], buffer_id=message.buffer_id)

        controller = RecordingController(reaction=install)
        topo, switch, host_a, host_b = build_fabric(controller)
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert controller.packet_ins.value == 1
        assert controller.flow_mods.value == 1


class TestMultiChannelRouting:
    """A switch with one channel per controller and a shard router."""

    def build_two_controller_fabric(self):
        topo = Topology("fabric")
        switch = topo.add_node(OpenFlowSwitch("sw1"))
        host_a = topo.add_node(SinkNode("host-a"))
        host_b = topo.add_node(SinkNode("host-b"))
        topo.add_link(host_a, switch)
        topo.add_link(host_b, switch)
        primary, backup = RecordingController(), RecordingController()
        primary.name, backup.name = "ctrl-a", "ctrl-b"
        for controller in (primary, backup):
            controller.attach(topo.sim)
            controller.register_switch(switch)
        switch.set_shard_router(lambda packet: ["ctrl-a", "ctrl-b"])
        return topo, switch, host_a, primary, backup

    def test_punt_goes_to_the_preferred_channel(self):
        topo, switch, host_a, primary, backup = self.build_two_controller_fabric()
        assert sorted(switch.channels) == ["ctrl-a", "ctrl-b"]
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert len(primary.messages) == 1
        assert backup.messages == []

    def test_dropped_channel_rehomes_punts_to_the_successor(self):
        topo, switch, host_a, primary, backup = self.build_two_controller_fabric()
        switch.channels["ctrl-a"].disconnect()
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert primary.messages == []
        assert len(backup.messages) == 1
        switch.channels["ctrl-a"].reconnect()
        host_a.send(Packet.tcp("3.3.3.3", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert len(primary.messages) == 1

    def test_all_channels_down_follows_fail_mode(self):
        topo, switch, host_a, primary, backup = self.build_two_controller_fabric()
        switch.channels["ctrl-a"].disconnect()
        switch.channels["ctrl-b"].disconnect()
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert primary.messages == [] and backup.messages == []
        assert switch.drops.value == 1  # fail-secure

    def test_channel_counters_are_attributable_per_controller(self):
        topo, switch, host_a, primary, backup = self.build_two_controller_fabric()
        assert (switch.channels["ctrl-a"].to_controller_messages.name
                == "sw1->ctrl-a.messages")
        assert (switch.channels["ctrl-b"].to_switch_messages.name
                == "ctrl-b->sw1.messages")
        host_a.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), host_a.port(1))
        topo.run()
        assert switch.channels["ctrl-a"].to_controller_messages.value == 1
        assert switch.channels["ctrl-b"].to_controller_messages.value == 0

    def test_stats_reply_returns_on_the_requesting_channel(self):
        topo, switch, host_a, primary, backup = self.build_two_controller_fabric()
        replies = {"ctrl-a": [], "ctrl-b": []}
        primary.on_port_stats = lambda m: replies["ctrl-a"].append(m)
        backup.on_port_stats = lambda m: replies["ctrl-b"].append(m)
        backup.channel_for(switch).send_to_switch(StatsRequest())
        topo.run()
        # The reply goes to the requester, not the last-attached channel.
        assert replies["ctrl-a"] == []
        assert len(replies["ctrl-b"]) == 1

    def test_channel_drop_mid_punt_repunts_without_pending_leak(self):
        """End-to-end satellite: owner dies mid-punt, the successor decides,
        and no controller is left holding a ``_pending`` entry."""
        from repro.core.network import HostSpec, IdentPPClusterNetwork
        from repro.identpp.flowspec import FlowSpec

        net = IdentPPClusterNetwork(
            "rehome", shards=3, policy_default_action="block",
            heartbeat_interval=0.05, miss_threshold=2,
        )
        sw = net.add_switch("sw")
        net.add_host(HostSpec(name="client", ip="192.168.0.10",
                              users={"alice": ("users",)}), switch=sw)
        server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=sw)
        server.run_server("httpd", "root", 80)
        net.set_policy({"00.control": "block all\npass from any to any port 80 keep state\n"})

        packet, _, _ = net.host("client").open_flow("http", "alice", "192.168.1.1", 80)
        flow = FlowSpec.from_packet(packet)
        owner = net.cluster.shard_map.owner(flow)
        net.run(0.0005)  # punt now pending at the owner
        assert net.cluster.replicas[owner].pending_flows() == [flow]

        net.start_monitoring()
        net.cluster.kill(owner)
        net.run(1.0)
        net.stop_monitoring()
        net.run()

        assert len(server.delivered) == 1
        assert all(c.pending_flows() == [] for c in net.cluster.replicas.values())
        assert sw.buffered_count() == 0
        assert net.cluster.repunted_flows == 1


class TestLearningSwitch:
    def test_learns_and_installs_path(self):
        controller = LearningSwitchController()
        topo, switch, host_a, host_b = build_fabric(controller)
        a_to_b = Packet(eth_src="02:00:00:00:00:01", eth_dst="02:00:00:00:00:02",
                        ip_src="1.1.1.1", ip_dst="2.2.2.2", tp_src=1, tp_dst=2)
        host_a.send(a_to_b, host_a.port(1))
        topo.run()
        # unknown destination: flooded, source learned
        assert len(host_b.received) == 1
        assert controller.learned_port(switch, "02:00:00:00:00:01") == 1

        b_to_a = Packet(eth_src="02:00:00:00:00:02", eth_dst="02:00:00:00:00:01",
                        ip_src="2.2.2.2", ip_dst="1.1.1.1", tp_src=2, tp_dst=1)
        host_b.send(b_to_a, host_b.port(1))
        topo.run()
        assert len(host_a.received) == 1
        # now a flow entry exists for b->a traffic
        assert len(switch.flow_table) >= 1
