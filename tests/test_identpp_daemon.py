"""Tests for the ident++ daemon, its configuration files and the query client."""

import pytest

from repro.exceptions import DaemonConfigError, QueryError
from repro.hosts.applications import standard_applications
from repro.hosts.endhost import EndHost
from repro.identpp.client import QueryClient
from repro.identpp.daemon import IdentPPDaemon
from repro.identpp.daemon_config import DaemonConfig, parse_daemon_config
from repro.identpp.flowspec import FlowSpec
from repro.identpp.wire import IdentQuery
from repro.netsim.nodes import Node
from repro.netsim.topology import Topology

SKYPE_CONFIG = """\
@app /usr/bin/skype {
name : skype
version : 210
vendor : skype.com
type : voip
requirements : \\
pass from any port http \\
with eq(@src[name], skype) \\
pass from any port https \\
with eq(@src[name], skype)
req-sig : 21oir...w3eda
}
"""


class TestDaemonConfigParser:
    def test_figure3_parses(self):
        config = parse_daemon_config(SKYPE_CONFIG, source="system")
        app = config.app_for_path("/usr/bin/skype")
        assert app is not None
        assert app.pairs["name"] == "skype"
        assert app.pairs["version"] == "210"
        assert app.pairs["req-sig"] == "21oir...w3eda"
        # continuations collapse into one requirements value
        assert app.pairs["requirements"].startswith("pass from any port http")
        assert "pass from any port https" in app.pairs["requirements"]

    def test_global_pairs_outside_blocks(self):
        config = parse_daemon_config("os-patch : MS08-067\n" + SKYPE_CONFIG)
        assert config.global_pairs == {"os-patch": "MS08-067"}

    def test_comments_ignored(self):
        config = parse_daemon_config("# a comment\nkey : value  # trailing\n")
        assert config.global_pairs == {"key": "value"}

    @pytest.mark.parametrize("text", [
        "@app /usr/bin/x {\nname : x\n",               # unterminated block
        "@app /usr/bin/x\nname : x\n}",                # missing brace
        "@app {\nname : x\n}",                          # missing path
        "@app /usr/bin/x {\n@app /usr/bin/y {\n}\n}",  # nesting
        "}",                                            # stray close
        "@app /usr/bin/x {\njust-a-word\n}",           # key without colon
    ])
    def test_malformed_rejected(self, text):
        with pytest.raises(DaemonConfigError):
            parse_daemon_config(text)

    def test_daemon_config_collection(self):
        config = DaemonConfig()
        config.load(SKYPE_CONFIG, source="system")
        config.load("@app /usr/bin/skype {\nextra : yes\n}", source="user")
        sections = config.sections_for_path("/usr/bin/skype")
        assert len(sections) == 2
        assert sections[0].get("name") == "skype"
        assert sections[1].get("extra") == "yes"
        assert config.app_config("/usr/bin/skype").pairs == {"extra": "yes"}


def make_host(name="client", ip="192.168.0.10"):
    host = EndHost(name, ip)
    host.install_all(standard_applications())
    host.add_user("alice", ("users", "staff"))
    return host


class TestDaemonAnswers:
    def test_source_side_answer(self):
        host = make_host()
        daemon = IdentPPDaemon(host, host_facts={"os-name": "linux"})
        daemon.load_system_config(SKYPE_CONFIG)
        packet, _, _ = host.open_flow("skype", "alice", "192.168.1.1", 5060, send=False)
        flow = FlowSpec.from_packet(packet)
        response = daemon.answer(IdentQuery(flow=flow, target_role="src"))
        doc = response.document
        assert doc.latest("userID") == "alice"
        assert "staff" in doc.latest("groupID")
        assert doc.latest("name") == "skype"
        assert doc.latest("version") == "210"
        assert doc.latest("os-name") == "linux"
        assert doc.latest("requirements") is not None
        # OS facts and config file pairs live in different sections
        assert doc.section_count() >= 2

    def test_destination_side_answer_for_listener(self):
        host = make_host("server", "192.168.1.1")
        daemon = IdentPPDaemon(host)
        host.run_server("httpd", "root", 80)
        flow = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 80)
        response = daemon.answer(IdentQuery(flow=flow, target_role="dst"))
        assert response.document.latest("name") == "httpd"
        assert response.document.latest("userID") == "root"

    def test_unknown_flow_reports_no_process(self):
        host = make_host()
        daemon = IdentPPDaemon(host)
        flow = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 41000, 80)
        response = daemon.answer(IdentQuery(flow=flow, target_role="src"))
        assert response.document.latest("no-process") == "true"
        assert response.document.latest("userID") is None

    def test_query_for_wrong_host_rejected(self):
        host = make_host()
        daemon = IdentPPDaemon(host)
        flow = FlowSpec.tcp("10.9.9.9", "192.168.1.1", 41000, 80)
        with pytest.raises(QueryError):
            daemon.answer(IdentQuery(flow=flow, target_role="src"))

    def test_runtime_keys_from_application(self):
        host = make_host()
        daemon = IdentPPDaemon(host)
        packet, _, process = host.open_flow(
            "http", "alice", "192.168.1.1", 80, send=False,
            runtime_keys={"user-initiated": "yes"},
        )
        flow = FlowSpec.from_packet(packet)
        daemon.runtime.publish_for_flow(flow, {"click-id": "42"})
        daemon.runtime.publish_for_process(process, {"window": "main"})
        response = daemon.answer(IdentQuery(flow=flow, target_role="src"))
        doc = response.document
        assert doc.latest("user-initiated") == "yes"
        assert doc.latest("click-id") == "42"
        assert doc.latest("window") == "main"

    def test_spoofed_responses_replace_everything(self):
        host = make_host()
        daemon = IdentPPDaemon(host)
        packet, _, _ = host.open_flow("telnet", "alice", "192.168.1.1", 23, send=False)
        flow = FlowSpec.from_packet(packet)
        daemon.spoof_responses({"userID": "system", "name": "http"})
        response = daemon.answer(IdentQuery(flow=flow, target_role="src"))
        assert response.document.latest("userID") == "system"
        assert response.document.latest("name") == "http"
        daemon.spoof_responses(None)
        response = daemon.answer(IdentQuery(flow=flow, target_role="src"))
        assert response.document.latest("userID") == "alice"

    def test_daemon_registers_port_783_service(self):
        host = make_host()
        IdentPPDaemon(host)
        assert getattr(host, "identpp_daemon", None) is not None


class TestQueryClient:
    def build_topology(self, *, with_daemon=True):
        topo = Topology("query-test")
        switch = topo.add_node(Node("mid"))
        client = EndHost("client", "192.168.0.10")
        client.install_all(standard_applications())
        client.add_user("alice", ("users",))
        server = EndHost("server", "192.168.1.1")
        topo.add_node(client)
        topo.add_node(server)
        topo.add_link(client, switch, latency=1e-3)
        topo.add_link(server, switch, latency=1e-3)
        topo.register_ip(client.ip, client)
        topo.register_ip(server.ip, server)
        if with_daemon:
            IdentPPDaemon(client)
        return topo, switch, client, server

    def test_query_returns_daemon_answer_and_latency(self):
        topo, switch, client, server = self.build_topology()
        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80, send=False)
        flow = FlowSpec.from_packet(packet)
        outcome = QueryClient(topo).query(flow, "src", from_node=switch)
        assert outcome.succeeded()
        assert outcome.document.latest("userID") == "alice"
        # round trip over a 1 ms link plus daemon processing
        assert outcome.latency >= 2e-3

    def test_query_times_out_without_daemon(self):
        topo, switch, client, server = self.build_topology(with_daemon=False)
        flow = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 80)
        outcome = QueryClient(topo).query(flow, "src", from_node=switch)
        assert outcome.timed_out and not outcome.succeeded()
        assert outcome.document.as_flat_dict() == {}

    def test_interceptor_can_answer(self):
        topo, switch, client, server = self.build_topology(with_daemon=False)

        class Interceptor:
            name = "edge-controller"

            def intercept_query(self, query):
                from repro.identpp.keyvalue import ResponseDocument
                from repro.identpp.wire import IdentResponse
                doc = ResponseDocument()
                doc.add_section({"userID": "registered"}, source="edge")
                return IdentResponse(flow=query.flow, document=doc, responder="edge")

            def augment_response(self, query, response):
                raise AssertionError("must not be called when the query was answered")

        flow = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 80)
        outcome = QueryClient(topo).query(flow, "src", from_node=switch,
                                          interceptors=[Interceptor()])
        assert outcome.intercepted
        assert outcome.document.latest("userID") == "registered"

    def test_interceptor_augments_real_response(self):
        topo, switch, client, server = self.build_topology()

        class Augmenter:
            name = "branch-b"

            def intercept_query(self, query):
                return None

            def augment_response(self, query, response):
                response.document.augment({"remote-accept": "no"}, source="branch-b")

        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80, send=False)
        flow = FlowSpec.from_packet(packet)
        outcome = QueryClient(topo).query(flow, "src", from_node=switch,
                                          interceptors=[Augmenter()])
        assert not outcome.intercepted
        assert outcome.document.latest("remote-accept") == "no"
        assert outcome.document.latest("userID") == "alice"
        assert outcome.augmented_by == ["branch-b"]

    def test_query_both_ends_combined_latency(self):
        topo, switch, client, server = self.build_topology()
        IdentPPDaemon(server)
        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80, send=False)
        flow = FlowSpec.from_packet(packet)
        client_query = QueryClient(topo)
        outcomes = client_query.query_both_ends(flow, from_node=switch)
        assert len(outcomes) == 2
        assert QueryClient.combined_latency(outcomes) == max(o.latency for o in outcomes)
