"""Tests for the push identity plane (PR 10).

Covers the wire-v2 SUBSCRIBE / DELTA / UNSUBSCRIBE messages and their
capability negotiation, the daemon-side delta fan-out, the engine's
resident store (promotion, zero-query steady state, duplicate-delta
idempotency, idle demotion and the stale-subscription leak fix,
failover export/adopt) and the controller's ``identity_plane`` switch.
"""

import pytest

from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPNetwork
from repro.exceptions import ControllerError, WireFormatError
from repro.identpp.client import QueryClient
from repro.identpp.daemon import IdentPPDaemon
from repro.identpp.engine import QueryEngine
from repro.identpp.flowspec import FlowSpec
from repro.identpp.wire import (
    CAP_SUBSCRIBE,
    IdentDelta,
    IdentSubscribe,
    IdentSubscribeAck,
    IdentUnsubscribe,
    WIRE_VERSION_PULL,
    WIRE_VERSION_PUSH,
    parse_push_payload,
)
from repro.workloads.invariants import check_bounded_state, network_flow_state

from tests.test_query_engine import build_world, flow_to_server

POLICY = {"00.control": "block all\npass from any to any port 80 keep state\n"}

SERVER_IP = "192.168.1.1"


# ----------------------------------------------------------------------
# Wire format (version 2)
# ----------------------------------------------------------------------


class TestPushWire:
    def test_subscribe_round_trip(self):
        msg = IdentSubscribe(host_ip=SERVER_IP, subscriber="ctl", keys=("name", "userID"))
        parsed = parse_push_payload(msg.to_payload(), host_ip=SERVER_IP)
        assert parsed == msg

    def test_subscribe_defaults_the_key_hint(self):
        msg = IdentSubscribe(host_ip=SERVER_IP, subscriber="ctl")
        parsed = parse_push_payload(msg.to_payload(), host_ip=SERVER_IP)
        assert parsed.keys == msg.keys and len(parsed.keys) > 0

    def test_subscribe_ack_round_trips_both_verdicts(self):
        accepted = IdentSubscribeAck(
            host_ip=SERVER_IP, accepted=True, capabilities=(CAP_SUBSCRIBE,), serial=7
        )
        refused = IdentSubscribeAck(
            host_ip=SERVER_IP, accepted=False, version=WIRE_VERSION_PULL
        )
        assert parse_push_payload(accepted.to_payload(), host_ip=SERVER_IP) == accepted
        assert parse_push_payload(refused.to_payload(), host_ip=SERVER_IP) == refused

    def test_delta_round_trip(self):
        msg = IdentDelta(host_ip=SERVER_IP, serial=3, reason="socket-table", keys=("name",))
        assert parse_push_payload(msg.to_payload(), host_ip=SERVER_IP) == msg
        # An empty reason survives as empty (the "-" placeholder).
        bare = IdentDelta(host_ip=SERVER_IP, serial=0)
        assert parse_push_payload(bare.to_payload(), host_ip=SERVER_IP) == bare

    def test_unsubscribe_round_trip(self):
        msg = IdentUnsubscribe(host_ip=SERVER_IP, subscriber="ctl")
        assert parse_push_payload(msg.to_payload(), host_ip=SERVER_IP) == msg

    @pytest.mark.parametrize(
        "payload",
        [
            "",
            "   ",
            "HELLO 1 ctl",
            "SUBSCRIBE 1 ctl",  # downlevel SUBSCRIBE is malformed, not negotiable
            "SUBSCRIBE x ctl",
            "SUBSCRIBE 2",
            "SUBSCRIBE-ACK 2 maybe 0",
            "SUBSCRIBE-ACK 2 ok x",
            "DELTA x -",
            "DELTA 1",
            "UNSUBSCRIBE",
        ],
    )
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(WireFormatError):
            parse_push_payload(payload, host_ip=SERVER_IP)

    def test_invalid_fields_raise_at_construction(self):
        with pytest.raises(WireFormatError):
            IdentDelta(host_ip=SERVER_IP, serial=-1)
        with pytest.raises(WireFormatError):
            IdentSubscribe(host_ip=SERVER_IP, subscriber="has space")
        with pytest.raises(WireFormatError):
            IdentUnsubscribe(host_ip=SERVER_IP, subscriber="")


# ----------------------------------------------------------------------
# Daemon: negotiation and delta fan-out
# ----------------------------------------------------------------------


class TestDaemonPush:
    def test_capable_daemon_accepts_and_streams_serialized_deltas(self):
        _, _, _, server, daemon = build_world()
        received = []
        ack = daemon.subscribe(
            IdentSubscribe(host_ip=server.ip, subscriber="eng"), received.append
        )
        assert ack.accepted
        assert CAP_SUBSCRIBE in ack.capabilities
        assert ack.version == WIRE_VERSION_PUSH
        base = ack.serial
        assert base == daemon.delta_serial

        daemon.notify_invalidation("test-a")
        daemon.notify_invalidation("test-b")
        assert [d.serial for d in received] == [base + 1, base + 2]
        assert int(daemon.deltas_published.value) == 2

        assert daemon.unsubscribe("eng") is True
        assert daemon.unsubscribe("eng") is False
        daemon.notify_invalidation("test-c")
        # The serial still advances for future subscribers, but nothing
        # is delivered to the cancelled sink.
        assert daemon.delta_serial == base + 3
        assert len(received) == 2

    def test_legacy_daemon_refuses_with_pull_ack(self):
        _, _, _, server, _ = build_world()
        legacy = IdentPPDaemon(server, push_capable=False)
        ack = legacy.subscribe(
            IdentSubscribe(host_ip=server.ip, subscriber="eng"), lambda d: None
        )
        assert not ack.accepted
        assert ack.version == WIRE_VERSION_PULL
        assert ack.capabilities == ()
        assert legacy.subscriber_count() == 0

    def test_downlevel_subscribe_is_refused(self):
        _, _, _, server, daemon = build_world()
        stale = IdentSubscribe(host_ip=server.ip, subscriber="eng", version=1)
        ack = daemon.subscribe(stale, lambda d: None)
        assert not ack.accepted and ack.version == WIRE_VERSION_PULL

    def test_latest_registration_per_subscriber_wins(self):
        _, _, _, server, daemon = build_world()
        first, second = [], []
        daemon.subscribe(IdentSubscribe(host_ip=server.ip, subscriber="eng"), first.append)
        daemon.subscribe(IdentSubscribe(host_ip=server.ip, subscriber="eng"), second.append)
        assert daemon.subscriber_count() == 1
        daemon.notify_invalidation("test")
        assert first == [] and len(second) == 1

    def test_remove_invalidation_listener_is_idempotent(self):
        _, _, _, _, daemon = build_world()
        fired = []
        daemon.add_invalidation_listener(fired.append)
        daemon.remove_invalidation_listener(fired.append)
        daemon.remove_invalidation_listener(fired.append)  # absent: no-op
        daemon.notify_invalidation("test")
        assert fired == []


# ----------------------------------------------------------------------
# Engine: resident store, promotion, demotion, failover hand-off
# ----------------------------------------------------------------------


def make_engine(topo, *, ttl=5.0, push=True, **kwargs):
    return QueryEngine(QueryClient(topo), ttl=ttl, name="eng", push=push, **kwargs)


class TestEnginePush:
    def test_promotion_upgrades_fresh_ttl_entries_in_place(self):
        # The hot answer usually fills *before* the punt that trips the
        # promotion threshold: subscribing must upgrade it, or the next
        # steady-state punt pays one more TTL round-trip.
        topo, switch, _, server, daemon = build_world()
        engine = make_engine(topo)
        engine.query(flow_to_server(), "dst", from_node=switch)
        assert int(daemon.queries_answered.value) == 1
        assert engine.stats()["resident_entries"] == 0

        assert engine.subscribe_host(server.ip) is True
        assert engine.resident_fills == 1
        assert engine.stats()["resident_entries"] == 1

        topo.sim.run(until=topo.sim.now + 1.0)  # let the fill's round trip land
        outcome = engine.query(flow_to_server(41000), "dst", from_node=switch)
        assert outcome.succeeded()
        assert engine.resident_hits == 1
        assert int(daemon.queries_answered.value) == 1  # no new round trip

    def test_resident_answers_never_expire_by_ttl(self):
        topo, switch, _, server, daemon = build_world()
        engine = make_engine(topo, ttl=0.5)
        assert engine.subscribe_host(server.ip) is True
        engine.query(flow_to_server(), "dst", from_node=switch)
        assert int(daemon.queries_answered.value) == 1
        topo.sim.run(until=topo.sim.now + 10.0)
        engine.query(flow_to_server(41000), "dst", from_node=switch)
        assert int(daemon.queries_answered.value) == 1
        assert engine.resident_hits == 1

    def test_subscribe_refusals(self):
        # Push plane off.
        topo, _, _, server, _ = build_world()
        assert make_engine(topo, push=False).subscribe_host(server.ip) is False
        # No daemon on the host at all.
        topo2, _, _, server2, _ = build_world(server_daemon=False)
        assert make_engine(topo2).subscribe_host(server2.ip) is False
        # A legacy daemon refuses — and the refusing daemon object is
        # memoized so the engine never re-knocks it.
        topo3, _, _, server3, _ = build_world()
        IdentPPDaemon(server3, push_capable=False)
        engine = make_engine(topo3)
        assert engine.subscribe_host(server3.ip) is False
        assert engine.subscribe_host(server3.ip) is False
        assert engine.subscriptions_opened == 0

    def test_subscription_table_cap(self):
        topo, _, client, server, _ = build_world()
        engine = make_engine(topo, push_max_subscriptions=1)
        assert engine.subscribe_host(server.ip) is True
        assert engine.subscribe_host(client.ip) is False
        assert engine.subscription_count() == 1

    def test_delta_refreshes_resident_and_duplicates_are_dropped(self):
        topo, switch, _, server, daemon = build_world()
        engine = make_engine(topo)
        assert engine.subscribe_host(server.ip) is True
        engine.query(flow_to_server(), "dst", from_node=switch)
        topo.sim.run(until=topo.sim.now + 1.0)  # let the fill's round trip land
        assert engine.stats()["resident_entries"] == 1

        daemon.set_host_fact("os-patch", "MS08-067")
        topo.sim.run(until=topo.sim.now + 1.0)
        sub = engine._subs[str(server.ip)]
        assert sub.serial == daemon.delta_serial
        assert engine.resident_refreshes >= 1
        assert engine.stats()["resident_entries"] == 1
        # The refreshed resident answer carries the new fact — punts
        # converge without a daemon round trip on the punt path.
        outcome = engine.query(flow_to_server(41000), "dst", from_node=switch)
        assert outcome.response.document.latest("os-patch") == "MS08-067"

        # A replayed delta (serial already applied) is a no-op.
        applied_before = engine.deltas_applied
        engine._on_delta(IdentDelta(host_ip=server.ip, serial=sub.serial))
        assert engine.duplicate_deltas == 1
        assert engine.deltas_applied == applied_before

    def test_unsubscribe_unregisters_everything_daemon_side(self):
        # The stale-subscription leak fix: a demoted host strands
        # neither a delta sink nor an invalidation listener.
        topo, switch, _, server, daemon = build_world()
        engine = make_engine(topo, ttl=0.0)
        assert engine.subscribe_host(server.ip) is True
        engine.query(flow_to_server(), "dst", from_node=switch)
        assert daemon.subscriber_count() == 1
        assert len(daemon._invalidation_listeners) == 1

        demoted = []
        engine.on_demote = demoted.append
        assert engine.unsubscribe_host(server.ip) is True
        assert demoted == [server.ip]
        assert daemon.subscriber_count() == 0
        assert len(daemon._invalidation_listeners) == 0
        assert engine.stats()["resident_entries"] == 0
        assert engine.unsubscribe_host(server.ip) is False

    def test_idle_demotion_sweeps_only_idle_subscriptions(self):
        topo, switch, _, server, daemon = build_world()
        engine = make_engine(topo, push_idle_demote=2.0)
        assert engine.subscribe_host(server.ip, now=0.0) is True
        assert engine.demote_idle(1.0) == 0
        assert engine.demote_idle(3.0) == 1
        assert not engine.is_subscribed(server.ip)
        assert daemon.subscriber_count() == 0

    def test_replaced_daemon_renegotiates_from_scratch(self):
        topo, switch, _, server, old_daemon = build_world()
        engine = make_engine(topo)
        assert engine.subscribe_host(server.ip) is True
        engine.query(flow_to_server(), "dst", from_node=switch)
        assert old_daemon.subscriber_count() == 1

        new_daemon = IdentPPDaemon(server)  # upgrade: replaces the old object
        assert engine.subscribe_host(server.ip) is True
        assert old_daemon.subscriber_count() == 0
        assert new_daemon.subscriber_count() == 1
        # Answers from the dead daemon's era were dropped with it.
        assert engine.stats()["resident_entries"] == 0

    def test_export_and_fresh_adopt_preserve_entries_and_serial(self):
        topo, switch, _, server, daemon = build_world()
        first = make_engine(topo)
        assert first.subscribe_host(server.ip) is True
        first.query(flow_to_server(), "dst", from_node=switch)

        records = first.export_push_state()
        assert [r["host_ip"] for r in records] == [server.ip]
        assert records[0]["entries"]
        # The dying engine is fully torn down.
        assert first.subscription_count() == 0
        assert daemon.subscriber_count() == 0

        second = make_engine(topo)
        assert second.adopt_push_state(records) == 1
        assert second.subscriptions_adopted == 1
        assert second.adoptions_stale == 0
        assert second.is_subscribed(server.ip)
        assert second.stats()["resident_entries"] == 1
        # Verbatim install: adoption cost zero daemon round trips.
        answered = int(daemon.queries_answered.value)
        second.query(flow_to_server(41000), "dst", from_node=switch)
        assert int(daemon.queries_answered.value) == answered

    def test_stale_adopt_reprimes_resident_answers(self):
        topo, switch, _, server, daemon = build_world()
        first = make_engine(topo)
        assert first.subscribe_host(server.ip) is True
        first.query(flow_to_server(), "dst", from_node=switch)
        topo.sim.run(until=topo.sim.now + 1.0)
        records = first.export_push_state()

        # A delta lands in the hand-off gap: the exported serial is stale.
        daemon.set_host_fact("os-patch", "MS08-067")

        second = make_engine(topo)
        assert second.adopt_push_state(records) == 1
        assert second.adoptions_stale == 1
        topo.sim.run(until=topo.sim.now + 1.0)
        # The successor re-primed through a refresh, so its resident
        # answer reflects the delta it never saw.
        outcome = second.query(flow_to_server(41000), "dst", from_node=switch)
        assert outcome.response.document.latest("os-patch") == "MS08-067"
        assert second._subs[str(server.ip)].serial == daemon.delta_serial


# ----------------------------------------------------------------------
# Controller integration: the identity_plane switch
# ----------------------------------------------------------------------


def build_net(**config_kwargs):
    defaults = dict(identity_plane="push", push_promote_punts=2, query_cache_ttl=0.0)
    defaults.update(config_kwargs)
    net = IdentPPNetwork(
        "push-plane",
        policy_default_action="block",
        controller_config=ControllerConfig(**defaults),
    )
    sw = net.add_switch("sw")
    net.add_host(
        HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users",)}),
        switch=sw,
    )
    server = net.add_host(HostSpec(name="server", ip=SERVER_IP), switch=sw)
    server.run_server("httpd", "root", 80)
    net.set_policy(POLICY)
    return net


class TestControllerPlaneSwitch:
    def test_invalid_identity_plane_is_rejected(self):
        with pytest.raises(ControllerError):
            build_net(identity_plane="sideways")

    def test_pull_plane_never_subscribes(self):
        net = build_net(identity_plane="pull")
        client = net.host("client")
        for _ in range(6):
            client.open_flow("http", "alice", SERVER_IP, 80)
        net.run()
        assert net.controller.query_engine.subscription_count() == 0
        assert net.daemon("server").subscriber_count() == 0
        assert network_flow_state(net)["subscriptions"] == 0

    def test_promotion_needs_the_configured_punt_count(self):
        net = build_net()
        client = net.host("client")
        client.open_flow("http", "alice", SERVER_IP, 80)
        net.run()
        engine = net.controller.query_engine
        assert not engine.is_subscribed(SERVER_IP)  # 1 punt < threshold 2
        client.open_flow("http", "alice", SERVER_IP, 80)
        net.run()
        assert engine.is_subscribed(SERVER_IP)
        assert net.daemon("server").subscriber_count() == 1
        # Only destinations are promoted — the client end keeps pulling.
        assert not engine.is_subscribed("192.168.0.10")

    def test_steady_state_punts_issue_zero_daemon_queries(self):
        net = build_net()
        client = net.host("client")
        daemon = net.daemon("server")
        for _ in range(2):
            client.open_flow("http", "alice", SERVER_IP, 80)
        net.run()
        assert net.controller.query_engine.is_subscribed(SERVER_IP)

        answered = int(daemon.queries_answered.value)
        for _ in range(5):
            client.open_flow("http", "alice", SERVER_IP, 80)
        net.run()
        assert int(daemon.queries_answered.value) == answered
        assert net.controller.query_engine.resident_hits >= 5
        state = network_flow_state(net)
        bounded = check_bounded_state(
            {"subscriptions": state["subscriptions"]}, {"subscriptions": 1.0}
        )
        assert bounded.passed, bounded.violations

    def test_quarantine_demotes_before_invalidating(self):
        net = build_net()
        client = net.host("client")
        for _ in range(2):
            client.open_flow("http", "alice", SERVER_IP, 80)
        net.run()
        engine = net.controller.query_engine
        assert engine.is_subscribed(SERVER_IP)

        net.controller.quarantine_host(SERVER_IP)
        assert not engine.is_subscribed(SERVER_IP)
        assert net.daemon("server").subscriber_count() == 0
        assert engine.stats()["resident_entries"] == 0

    def test_lifecycle_drain_demotes_and_punt_history_resets(self):
        net = build_net(lifecycle_interval=0.1, push_idle_demote=0.5)
        client = net.host("client")
        daemon = net.daemon("server")
        for _ in range(2):
            client.open_flow("http", "alice", SERVER_IP, 80)
        net.run(0.1)
        engine = net.controller.query_engine
        assert engine.is_subscribed(SERVER_IP)

        net.run()  # drain: the sweeper demotes the idle subscription
        assert not engine.is_subscribed(SERVER_IP)
        assert daemon.subscriber_count() == 0
        assert len(daemon._invalidation_listeners) == 0
        assert network_flow_state(net)["subscriptions"] == 0
        # Demotion reset the tally: the host re-earns residency from
        # fresh punt history, so one punt is not enough...
        client.open_flow("http", "alice", SERVER_IP, 80)
        net.run(0.1)
        assert not engine.is_subscribed(SERVER_IP)
        # ...but the threshold re-promotes.
        client.open_flow("http", "alice", SERVER_IP, 80)
        net.run(0.1)
        assert engine.is_subscribed(SERVER_IP)
