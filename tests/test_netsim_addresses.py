"""Unit and property-based tests for IPv4/MAC addressing."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import AddressError
from repro.netsim.addresses import BROADCAST_MAC, IPv4Address, IPv4Network, MACAddress


class TestIPv4Address:
    def test_parse_dotted_quad(self):
        assert IPv4Address("192.168.42.32").to_int() == 3232246304

    def test_round_trip_string(self):
        assert str(IPv4Address("10.0.0.1")) == "10.0.0.1"

    def test_from_int(self):
        assert str(IPv4Address(0)) == "0.0.0.0"
        assert str(IPv4Address(2**32 - 1)) == "255.255.255.255"

    def test_copy_constructor(self):
        original = IPv4Address("1.2.3.4")
        assert IPv4Address(original) == original

    def test_octets(self):
        assert IPv4Address("1.2.3.4").octets() == (1, 2, 3, 4)

    def test_to_bytes(self):
        assert IPv4Address("1.2.3.4").to_bytes() == bytes([1, 2, 3, 4])

    def test_equality_with_string_and_int(self):
        assert IPv4Address("10.0.0.1") == "10.0.0.1"
        assert IPv4Address("10.0.0.1") == IPv4Address("10.0.0.1").to_int()

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")

    def test_hashable_and_usable_as_dict_key(self):
        table = {IPv4Address("10.0.0.1"): "host"}
        assert table[IPv4Address("10.0.0.1")] == "host"

    def test_addition(self):
        assert IPv4Address("10.0.0.1") + 5 == IPv4Address("10.0.0.6")

    def test_private_detection(self):
        assert IPv4Address("192.168.1.1").is_private()
        assert IPv4Address("10.1.2.3").is_private()
        assert not IPv4Address("8.8.8.8").is_private()

    def test_loopback_and_multicast(self):
        assert IPv4Address("127.0.0.1").is_loopback()
        assert IPv4Address("224.0.0.1").is_multicast()
        assert not IPv4Address("192.168.0.1").is_multicast()

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1.2.3.-1"])
    def test_invalid_strings_rejected(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    @pytest.mark.parametrize("bad", [-1, 2**32])
    def test_invalid_integers_rejected(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    def test_invalid_type_rejected(self):
        with pytest.raises(AddressError):
            IPv4Address(1.5)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_int_round_trip(self, value):
        assert IPv4Address(str(IPv4Address(value))).to_int() == value


class TestIPv4Network:
    def test_contains_address(self):
        network = IPv4Network("192.168.0.0/24")
        assert IPv4Address("192.168.0.7") in network
        assert IPv4Address("192.168.1.7") not in network

    def test_contains_string(self):
        assert "10.0.0.1" in IPv4Network("10.0.0.0/8")

    def test_host_route(self):
        network = IPv4Network("192.168.1.1")
        assert network.prefix_len == 32
        assert IPv4Address("192.168.1.1") in network
        assert IPv4Address("192.168.1.2") not in network

    def test_network_and_broadcast(self):
        network = IPv4Network("10.0.0.0/30")
        assert str(network.network_address) == "10.0.0.0"
        assert str(network.broadcast_address) == "10.0.0.3"

    def test_base_address_masked(self):
        assert str(IPv4Network("192.168.1.77/24")) == "192.168.1.0/24"

    def test_num_addresses(self):
        assert IPv4Network("10.0.0.0/30").num_addresses() == 4
        assert IPv4Network("0.0.0.0/0").num_addresses() == 2**32

    def test_hosts_excludes_network_and_broadcast(self):
        hosts = list(IPv4Network("10.0.0.0/30").hosts())
        assert [str(h) for h in hosts] == ["10.0.0.1", "10.0.0.2"]

    def test_hosts_for_point_to_point(self):
        assert len(list(IPv4Network("10.0.0.0/31").hosts())) == 2

    def test_network_containment(self):
        assert IPv4Network("192.168.1.0/24") in IPv4Network("192.168.0.0/16")
        assert IPv4Network("192.168.0.0/16") not in IPv4Network("192.168.1.0/24")

    def test_overlaps(self):
        assert IPv4Network("10.0.0.0/8").overlaps(IPv4Network("10.1.0.0/16"))
        assert not IPv4Network("10.0.0.0/8").overlaps(IPv4Network("11.0.0.0/8"))

    def test_equality_and_hash(self):
        assert IPv4Network("10.0.0.0/8") == IPv4Network("10.0.0.0/8")
        assert len({IPv4Network("10.0.0.0/8"), IPv4Network("10.0.0.0/8")}) == 1

    @pytest.mark.parametrize("bad", ["10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/abc"])
    def test_invalid_prefix_rejected(self, bad):
        with pytest.raises(AddressError):
            IPv4Network(bad)

    def test_zero_prefix_contains_everything(self):
        assert "255.255.255.255" in IPv4Network("0.0.0.0/0")

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=32))
    def test_property_network_contains_its_own_base(self, value, prefix):
        network = IPv4Network(f"{IPv4Address(value)}/{prefix}")
        assert network.network_address in network
        assert network.broadcast_address in network


class TestMACAddress:
    def test_parse_colon_form(self):
        assert MACAddress("00:11:22:33:44:55").to_int() == 0x001122334455

    def test_parse_dash_form(self):
        assert MACAddress("00-11-22-33-44-55") == MACAddress("00:11:22:33:44:55")

    def test_round_trip(self):
        assert str(MACAddress("aa:bb:cc:dd:ee:ff")) == "aa:bb:cc:dd:ee:ff"

    def test_from_index_unique_and_unicast(self):
        first = MACAddress.from_index(1)
        second = MACAddress.from_index(2)
        assert first != second
        assert not first.is_multicast()

    def test_broadcast(self):
        assert BROADCAST_MAC.is_broadcast()
        assert BROADCAST_MAC.is_multicast()

    def test_to_bytes_length(self):
        assert len(MACAddress("aa:bb:cc:dd:ee:ff").to_bytes()) == 6

    @pytest.mark.parametrize("bad", ["", "aa:bb:cc", "zz:bb:cc:dd:ee:ff", "aabbccddeeff"])
    def test_invalid_rejected(self, bad):
        with pytest.raises(AddressError):
            MACAddress(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(AddressError):
            MACAddress(2**48)

    def test_from_index_out_of_range(self):
        with pytest.raises(AddressError):
            MACAddress.from_index(2**40)

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_property_string_round_trip(self, value):
        assert MACAddress(str(MACAddress(value))).to_int() == value
