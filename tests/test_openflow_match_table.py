"""Tests for the OpenFlow match structure and flow table."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import FlowTableError, MatchError
from repro.netsim.packet import IP_PROTO_TCP, Packet
from repro.openflow.actions import DropAction, OutputAction, describe_actions, is_drop
from repro.openflow.flow_table import FlowEntry, FlowTable, make_entry
from repro.openflow.match import Match


def tcp_packet(src="10.0.0.1", dst="10.0.0.2", sport=1234, dport=80):
    return Packet.tcp(src, dst, sport, dport)


class TestMatch:
    def test_wildcard_matches_everything(self):
        assert Match.wildcard().matches(tcp_packet())
        assert Match.wildcard().matches(Packet(eth_type=0x0806))

    def test_exact_match_from_packet(self):
        packet = tcp_packet()
        match = Match.from_packet(packet, in_port=3)
        assert match.matches(packet, in_port=3)
        assert not match.matches(packet, in_port=4)
        assert match.is_exact()

    def test_five_tuple_match_ignores_l2(self):
        packet = tcp_packet()
        match = Match.from_five_tuple(packet.ip_src, packet.ip_dst, packet.ip_proto,
                                      packet.tp_src, packet.tp_dst)
        other_mac = packet.copy(eth_src="02:00:00:00:00:99")
        assert match.matches(other_mac)

    def test_cidr_match(self):
        match = Match(nw_src="10.0.0.0/24")
        assert match.matches(tcp_packet(src="10.0.0.7"))
        assert not match.matches(tcp_packet(src="10.0.1.7"))

    def test_port_and_proto_fields(self):
        match = Match(nw_proto=IP_PROTO_TCP, tp_dst=80)
        assert match.matches(tcp_packet(dport=80))
        assert not match.matches(tcp_packet(dport=22))
        assert not match.matches(Packet(eth_type=0x0806))

    def test_specificity_counts_fields(self):
        assert Match.wildcard().specificity() == 0
        assert Match(tp_dst=80, nw_proto=6).specificity() == 2

    def test_invalid_port_rejected(self):
        with pytest.raises(MatchError):
            Match(tp_dst=70000)

    def test_covers(self):
        broad = Match(nw_dst="10.0.0.0/8")
        narrow = Match(nw_dst="10.1.0.0/16")
        assert broad.covers(narrow)
        assert not narrow.covers(broad)
        assert Match.wildcard().covers(narrow)
        exact = Match(nw_dst="10.1.2.3", tp_dst=80)
        assert broad.covers(exact)
        assert not Match(tp_dst=22).covers(exact)

    def test_string_form(self):
        assert str(Match.wildcard()) == "Match(*)"
        assert "tp_dst=80" in str(Match(tp_dst=80))

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=65535))
    def test_property_from_packet_always_matches_itself(self, src, dport):
        packet = Packet.tcp(src, src ^ 0xFFFF, 1000, dport)
        assert Match.from_packet(packet, in_port=1).matches(packet, in_port=1)


class TestActions:
    def test_describe(self):
        assert describe_actions([OutputAction(3)]) == "output:3"
        assert describe_actions([]) == "drop(implicit)"

    def test_is_drop(self):
        assert is_drop([])
        assert is_drop([DropAction()])
        assert not is_drop([OutputAction(1)])


class TestFlowTable:
    def test_install_and_lookup(self):
        table = FlowTable()
        entry = make_entry(Match(tp_dst=80), [OutputAction(2)])
        table.install(entry)
        hit = table.lookup(tcp_packet(), in_port=1)
        assert hit is entry
        assert entry.packet_count == 1
        assert table.hit_rate() == 1.0

    def test_miss_counted(self):
        table = FlowTable()
        assert table.lookup(tcp_packet()) is None
        assert table.misses == 1

    def test_priority_wins(self):
        table = FlowTable()
        low = make_entry(Match(), [OutputAction(1)], priority=10)
        high = make_entry(Match(tp_dst=80), [DropAction()], priority=200)
        table.install(low)
        table.install(high)
        assert table.lookup(tcp_packet(dport=80)) is high
        assert table.lookup(tcp_packet(dport=22)) is low

    def test_specificity_breaks_priority_ties(self):
        table = FlowTable()
        broad = make_entry(Match(), [OutputAction(1)], priority=100)
        narrow = make_entry(Match(tp_dst=80, nw_proto=6), [OutputAction(2)], priority=100)
        table.install(broad)
        table.install(narrow)
        assert table.lookup(tcp_packet(dport=80)) is narrow

    def test_replace_same_match_and_priority(self):
        table = FlowTable()
        table.install(make_entry(Match(tp_dst=80), [OutputAction(1)]))
        table.install(make_entry(Match(tp_dst=80), [OutputAction(2)]))
        assert len(table) == 1
        with pytest.raises(FlowTableError):
            table.install(make_entry(Match(tp_dst=80), [OutputAction(3)]), replace=False)

    def test_idle_timeout_refreshed_by_traffic(self):
        table = FlowTable()
        entry = make_entry(Match(tp_dst=80), [OutputAction(1)], idle_timeout=10.0)
        table.install(entry, now=0.0)
        assert table.lookup(tcp_packet(dport=80), now=8.0) is entry
        # the lookup refreshed the idle timer, so at t=12 the entry survives
        assert table.expire(now=12.0) == []
        # but 10 idle seconds after the last packet it goes away
        assert table.expire(now=20.0) == [entry]

    def test_idle_timeout_removes_entry(self):
        table = FlowTable()
        entry = make_entry(Match(tp_dst=80), [OutputAction(1)], idle_timeout=10.0)
        table.install(entry, now=0.0)
        expired = table.expire(now=11.0)
        assert expired == [entry]
        assert len(table) == 0
        assert table.expirations == 1

    def test_hard_timeout(self):
        table = FlowTable()
        entry = make_entry(Match(), [OutputAction(1)], hard_timeout=5.0)
        table.install(entry, now=0.0)
        # activity does not save it
        table.lookup(tcp_packet(), now=4.9)
        assert table.expire(now=5.1) == [entry]

    def test_expired_entry_not_matched(self):
        table = FlowTable()
        table.install(make_entry(Match(), [OutputAction(1)], hard_timeout=5.0), now=0.0)
        assert table.lookup(tcp_packet(), now=10.0) is None

    def test_negative_timeout_rejected(self):
        with pytest.raises(FlowTableError):
            FlowEntry(match=Match(), idle_timeout=-1.0)

    def test_remove_covered(self):
        table = FlowTable()
        table.install(make_entry(Match(nw_dst="10.0.0.1", tp_dst=80), [OutputAction(1)]))
        table.install(make_entry(Match(nw_dst="10.0.0.2", tp_dst=80), [OutputAction(1)]))
        removed = table.remove(Match(nw_dst="10.0.0.0/24"))
        assert removed == 2 and len(table) == 0

    def test_remove_strict(self):
        table = FlowTable()
        exact = Match(nw_dst="10.0.0.1")
        table.install(make_entry(exact, [OutputAction(1)]))
        assert table.remove(Match(nw_dst="10.0.0.0/24"), strict=True) == 0
        assert table.remove(exact, strict=True) == 1

    def test_remove_by_cookie(self):
        table = FlowTable()
        table.install(make_entry(Match(tp_dst=80), [OutputAction(1)], cookie="decision-1"))
        table.install(make_entry(Match(tp_dst=22), [OutputAction(1)], cookie="decision-2"))
        assert table.remove_by_cookie("decision-1") == 1
        assert len(table) == 1

    def test_lru_eviction_at_capacity(self):
        table = FlowTable(capacity=2)
        first = make_entry(Match(tp_dst=80), [OutputAction(1)])
        second = make_entry(Match(tp_dst=22), [OutputAction(1)])
        table.install(first, now=0.0)
        table.install(second, now=1.0)
        table.lookup(tcp_packet(dport=80), now=2.0)  # refresh first
        table.install(make_entry(Match(tp_dst=443), [OutputAction(1)]), now=3.0)
        assert table.evictions == 1
        assert Match(tp_dst=80) in table
        assert Match(tp_dst=22) not in table

    def test_entries_iteration_order(self):
        table = FlowTable()
        table.install(make_entry(Match(), [OutputAction(1)], priority=1))
        table.install(make_entry(Match(tp_dst=80), [OutputAction(1)], priority=50))
        priorities = [entry.priority for entry in table.entries()]
        assert priorities == sorted(priorities, reverse=True)

    def test_stats_keys(self):
        stats = FlowTable().stats()
        assert {"entries", "lookups", "hits", "misses", "hit_rate"} <= set(stats)
