"""Tests for the discrete-event scheduler."""

import pytest

from repro.exceptions import SimulationError
from repro.netsim.events import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.schedule(1.5, order.append, "middle")
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "first")
        sim.schedule(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5]
        assert sim.now == 0.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_at(12.5, fired.append, True)
        sim.run()
        assert fired and sim.now == 12.5

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        order = []

        def chain():
            order.append("first")
            sim.schedule(1.0, order.append, "second")

        sim.schedule(1.0, chain)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0

    def test_kwargs_passed_to_callback(self):
        sim = Simulator()
        received = {}
        sim.schedule(0.0, lambda **kw: received.update(kw), value=42)
        sim.run()
        assert received == {"value": 42}


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_twice_is_harmless(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0


class TestRunLimits:
    def test_run_until_stops_the_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["early", "late"]

    def test_max_events_limit(self):
        sim = Simulator()
        for index in range(5):
            sim.schedule(float(index), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending() == 2

    def test_run_returns_processed_count(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.run() == 2
        assert sim.events_processed == 2

    def test_run_is_not_reentrant(self):
        sim = Simulator()

        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0.0, nested)
        sim.run()

    def test_step_returns_none_when_empty(self):
        assert Simulator().step() is None

    def test_reset(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending() == 0
