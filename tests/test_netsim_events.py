"""Tests for the discrete-event scheduler."""

import pytest

from repro.exceptions import SimulationError
from repro.netsim.events import Future, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.schedule(1.5, order.append, "middle")
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "first")
        sim.schedule(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5]
        assert sim.now == 0.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_at(12.5, fired.append, True)
        sim.run()
        assert fired and sim.now == 12.5

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        order = []

        def chain():
            order.append("first")
            sim.schedule(1.0, order.append, "second")

        sim.schedule(1.0, chain)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0

    def test_kwargs_passed_to_callback(self):
        sim = Simulator()
        received = {}
        sim.schedule(0.0, lambda **kw: received.update(kw), value=42)
        sim.run()
        assert received == {"value": 42}


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_twice_is_harmless(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0


class TestRunLimits:
    def test_run_until_stops_the_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["early", "late"]

    def test_max_events_limit(self):
        sim = Simulator()
        for index in range(5):
            sim.schedule(float(index), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending() == 2

    def test_run_returns_processed_count(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.run() == 2
        assert sim.events_processed == 2

    def test_run_is_not_reentrant(self):
        sim = Simulator()

        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(0.0, nested)
        sim.run()

    def test_step_returns_none_when_empty(self):
        assert Simulator().step() is None

    def test_reset(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending() == 0


class TestScheduleAtEdgeCases:
    def test_schedule_at_in_the_past_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_schedule_at_the_current_instant_fires(self):
        sim = Simulator(start_time=5.0)
        fired = []
        sim.schedule_at(5.0, fired.append, True)
        sim.run()
        assert fired == [True]
        assert sim.now == 5.0

    def test_schedule_at_after_run_until_advanced_the_clock(self):
        # run(until=) moves the clock even when no event fired; absolute
        # scheduling must be relative to the *new* now, not the old one.
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)
        fired = []
        sim.schedule_at(6.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [6.0]


class TestRepeatingEventEdgeCases:
    def test_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_repeating(0.0, lambda: True)
        with pytest.raises(SimulationError):
            sim.schedule_repeating(-1.0, lambda: True)

    def test_cancel_while_scheduled_suppresses_the_pending_firing(self):
        sim = Simulator()
        fires = []
        repeating = sim.schedule_repeating(1.0, lambda: fires.append(sim.now) or True)
        assert repeating.scheduled
        repeating.cancel()
        assert not repeating.scheduled
        sim.run()
        assert fires == []

    def test_start_after_cancel_resumes_the_cycle(self):
        sim = Simulator()
        fires = []
        repeating = sim.schedule_repeating(1.0, lambda: fires.append(sim.now) or len(fires) < 2)
        repeating.cancel()
        repeating.start()
        sim.run()
        assert fires == [1.0, 2.0]
        # The callback's falsy return stopped it; start() re-arms again.
        repeating.start()
        sim.run(until=3.5)
        assert fires == [1.0, 2.0, 3.0]

    def test_start_is_idempotent_while_scheduled(self):
        sim = Simulator()
        fires = []
        repeating = sim.schedule_repeating(1.0, lambda: fires.append(sim.now) or False)
        repeating.start()
        repeating.start()
        sim.run()
        # One queued firing despite the extra start() calls.
        assert fires == [1.0]

    def test_reschedule_across_run_until_boundary(self):
        # A firing queued beyond the until= horizon survives the pause
        # and fires (at its original time) on the next run.
        sim = Simulator()
        fires = []
        repeating = sim.schedule_repeating(1.0, lambda: fires.append(sim.now) or True)
        sim.run(until=2.5)
        assert fires == [1.0, 2.0]
        assert sim.now == 2.5
        assert repeating.scheduled
        sim.run(until=4.5)
        assert fires == [1.0, 2.0, 3.0, 4.0]
        repeating.cancel()
        sim.run()
        assert fires == [1.0, 2.0, 3.0, 4.0]

    def test_cancel_from_inside_the_callback_stops_the_cycle(self):
        sim = Simulator()
        fires = []
        repeating = sim.schedule_repeating(
            1.0, lambda: fires.append(sim.now) or repeating.cancel() or True
        )
        sim.run()
        # The truthy return asked to continue, but cancel() from inside
        # the callback wins: _fire re-starts, cancel suppresses it...
        # the cycle must end either way without firing twice.
        assert fires == [1.0]


class TestFuture:
    def test_set_result_completes_and_stores_the_value(self):
        future = Future()
        assert not future.done
        future.set_result(42)
        assert future.done
        assert future.result() == 42

    def test_result_before_completion_raises(self):
        with pytest.raises(SimulationError):
            Future().result()

    def test_double_completion_raises(self):
        future = Future()
        future.set_result(1)
        with pytest.raises(SimulationError):
            future.set_result(2)

    def test_callbacks_run_synchronously_on_completion(self):
        future = Future()
        seen = []
        future.add_done_callback(seen.append)
        future.add_done_callback(lambda value: seen.append(value * 2))
        future.set_result(3)
        assert seen == [3, 6]

    def test_late_subscriber_runs_immediately(self):
        future = Future()
        future.set_result("answer")
        seen = []
        future.add_done_callback(seen.append)
        assert seen == ["answer"]

    def test_gather_preserves_order_and_waits_for_the_last(self):
        first, second = Future(), Future()
        results = []
        Future.gather([first, second]).add_done_callback(results.append)
        second.set_result("b")
        assert results == []
        first.set_result("a")
        assert results == [["a", "b"]]

    def test_gather_of_nothing_completes_immediately(self):
        aggregate = Future.gather([])
        assert aggregate.done
        assert aggregate.result() == []

    def test_gather_of_already_done_futures(self):
        done = Future()
        done.set_result(1)
        aggregate = Future.gather([done, done])
        assert aggregate.done
        assert aggregate.result() == [1, 1]

    def test_completion_from_a_scheduled_event_runs_continuations_at_that_instant(self):
        sim = Simulator()
        future = Future()
        seen = []
        future.add_done_callback(lambda value: seen.append((sim.now, value)))
        sim.schedule(2.0, future.set_result, "landed")
        sim.run()
        assert seen == [(2.0, "landed")]
