"""Tests for the consistent-hash shard map."""

import pytest

from repro.cluster.shard_map import ShardMap, flow_key
from repro.exceptions import TopologyError
from repro.identpp.flowspec import FlowSpec


def make_flows(count):
    return [
        FlowSpec.tcp(
            f"10.{(i >> 8) % 200}.{i % 256}.{1 + i % 250}",
            f"192.168.1.{1 + i % 8}",
            40_000 + i % 20_000,
            80,
        )
        for i in range(count)
    ]


SHARDS = ["shard0", "shard1", "shard2", "shard3"]


class TestAssignment:
    def test_deterministic_across_instances(self):
        flows = make_flows(200)
        a = ShardMap(SHARDS)
        b = ShardMap(SHARDS)
        assert [a.owner(f) for f in flows] == [b.owner(f) for f in flows]

    def test_direction_independent(self):
        # Reply traffic must land on the shard that holds the state.
        for flow in make_flows(100):
            ring = ShardMap(SHARDS)
            assert ring.owner(flow) == ring.owner(flow.reversed())
            assert flow_key(flow) == flow_key(flow.reversed())

    def test_balance_within_reason(self):
        ring = ShardMap(SHARDS, vnodes=128)
        counts = ring.assignment_counts(make_flows(4000))
        assert set(counts) == set(SHARDS)
        # Consistent hashing is not perfectly uniform, but no shard may
        # dominate: the scale bench's 3x floor needs the largest shard
        # near 1/N of the load.
        assert max(counts.values()) / 4000 < 0.35
        assert min(counts.values()) > 0

    def test_preference_starts_with_owner_and_covers_live_shards(self):
        ring = ShardMap(SHARDS)
        flow = make_flows(1)[0]
        preference = ring.preference(flow)
        assert preference[0] == ring.owner(flow)
        assert sorted(preference) == sorted(SHARDS)


class TestFailure:
    def test_mark_dead_rehomes_only_the_dead_arc(self):
        flows = make_flows(1000)
        ring = ShardMap(SHARDS)
        before = {id(f): ring.owner(f) for f in flows}
        ring.mark_dead("shard2")
        for flow in flows:
            owner = ring.owner(flow)
            assert owner != "shard2"
            if before[id(flow)] != "shard2":
                # Minimal disruption: survivors keep their flows.
                assert owner == before[id(flow)]

    def test_successor_adopts_dead_shards_flows(self):
        ring = ShardMap(SHARDS)
        flows = [f for f in make_flows(500) if ring.owner(f) == "shard1"]
        assert flows
        for flow in flows:
            successor = ring.successor(flow, "shard1")
            assert successor in SHARDS and successor != "shard1"
            ring.mark_dead("shard1")
            assert ring.owner(flow) == successor
            ring.revive("shard1")

    def test_revive_restores_exact_assignment(self):
        flows = make_flows(300)
        ring = ShardMap(SHARDS)
        before = [ring.owner(f) for f in flows]
        ring.mark_dead("shard0")
        ring.revive("shard0")
        assert [ring.owner(f) for f in flows] == before

    def test_cannot_kill_the_last_live_shard(self):
        ring = ShardMap(["a", "b"])
        ring.mark_dead("a")
        with pytest.raises(TopologyError):
            ring.mark_dead("b")
        # The failed mark must not poison the ring: "b" stays live and
        # every lookup still resolves.
        assert ring.live_shards() == ["b"]
        assert ring.owner_of_key("anything") == "b"

    def test_dead_shards_excluded_from_preference(self):
        ring = ShardMap(SHARDS)
        ring.mark_dead("shard3")
        flow = make_flows(1)[0]
        assert "shard3" not in ring.preference(flow)


class TestMembership:
    def test_add_and_remove_shard(self):
        ring = ShardMap(["a", "b"])
        ring.add_shard("c")
        assert sorted(ring.shards()) == ["a", "b", "c"]
        ring.remove_shard("c")
        assert sorted(ring.shards()) == ["a", "b"]

    def test_duplicate_and_unknown_shards_rejected(self):
        ring = ShardMap(["a", "b"])
        with pytest.raises(TopologyError):
            ring.add_shard("a")
        with pytest.raises(TopologyError):
            ring.remove_shard("ghost")
        with pytest.raises(TopologyError):
            ring.mark_dead("ghost")

    def test_empty_ring_rejected(self):
        with pytest.raises(TopologyError):
            ShardMap([])

    def test_cannot_remove_the_last_shard(self):
        ring = ShardMap(["a"])
        with pytest.raises(TopologyError):
            ring.remove_shard("a")
        # The failed removal must leave the ring intact and routable.
        assert ring.shards() == ["a"]
        assert ring.owner_of_key("anything") == "a"

    def test_cannot_remove_the_last_live_shard(self):
        # Decommissioning a live shard while its peer is dead would
        # leave a ring nobody can route on.
        ring = ShardMap(["a", "b"])
        ring.mark_dead("b")
        with pytest.raises(TopologyError):
            ring.remove_shard("a")
        assert ring.live_shards() == ["a"]
        # Removing the dead shard instead is fine.
        ring.remove_shard("b")
        assert ring.shards() == ["a"]

    def test_stats_shape(self):
        ring = ShardMap(SHARDS, vnodes=16)
        ring.owner(make_flows(1)[0])
        stats = ring.stats()
        assert stats["shards"] == 4
        assert stats["ring_size"] == 4 * 16
        assert stats["lookups"] == 1
