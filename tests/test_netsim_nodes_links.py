"""Tests for nodes, ports and links."""

import pytest

from repro.exceptions import PortError, TopologyError
from repro.netsim.events import Simulator
from repro.netsim.links import Link
from repro.netsim.nodes import Node
from repro.netsim.packet import Packet


class RecordingNode(Node):
    """Node that remembers every packet it receives."""

    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def receive(self, packet, in_port):
        super().receive(packet, in_port)
        self.received.append((packet, in_port.number))


def make_pair(latency=1e-3, bandwidth=None):
    sim = Simulator()
    left, right = RecordingNode("left"), RecordingNode("right")
    left.attach(sim)
    right.attach(sim)
    link = Link(left.add_port(), right.add_port(), latency=latency, bandwidth=bandwidth)
    return sim, left, right, link


class TestPorts:
    def test_port_numbers_auto_increment(self):
        node = Node("n")
        assert node.add_port().number == 1
        assert node.add_port().number == 2

    def test_duplicate_port_number_rejected(self):
        node = Node("n")
        node.add_port(5)
        with pytest.raises(PortError):
            node.add_port(5)

    def test_unknown_port_rejected(self):
        with pytest.raises(PortError):
            Node("n").port(3)

    def test_send_on_unwired_port_returns_false(self):
        node = Node("n")
        port = node.add_port()
        assert node.send(Packet(), port) is False

    def test_send_on_foreign_port_rejected(self):
        a, b = Node("a"), Node("b")
        port_b = b.add_port()
        with pytest.raises(PortError):
            a.send(Packet(), port_b)

    def test_ports_iteration_sorted(self):
        node = Node("n")
        node.add_port(3)
        node.add_port(1)
        assert [p.number for p in node.ports()] == [1, 3]
        assert node.port_count() == 2


class TestLinks:
    def test_delivery_after_latency(self):
        sim, left, right, link = make_pair(latency=2e-3)
        left.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 2), left.port(1))
        sim.run()
        assert len(right.received) == 1
        assert sim.now == pytest.approx(2e-3)

    def test_serialization_delay_from_bandwidth(self):
        sim, left, right, link = make_pair(latency=0.0, bandwidth=8000.0)
        packet = Packet.tcp("1.1.1.1", "2.2.2.2", 1, 2, payload_size=1000)
        expected = packet.wire_size() * 8 / 8000.0
        left.send(packet, left.port(1))
        sim.run()
        assert sim.now == pytest.approx(expected)

    def test_bidirectional(self):
        sim, left, right, link = make_pair()
        right.send(Packet.tcp("2.2.2.2", "1.1.1.1", 2, 1), right.port(1))
        sim.run()
        assert len(left.received) == 1

    def test_down_link_drops(self):
        sim, left, right, link = make_pair()
        link.set_up(False)
        left.send(Packet(), left.port(1))
        sim.run()
        assert right.received == []
        assert link.dropped_packets.value == 1

    def test_loss_filter(self):
        sim, left, right, link = make_pair()
        link.loss_filter = lambda packet: packet.tp_dst == 80
        left.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 80), left.port(1))
        left.send(Packet.tcp("1.1.1.1", "2.2.2.2", 1, 22), left.port(1))
        sim.run()
        assert len(right.received) == 1
        assert right.received[0][0].tp_dst == 22

    def test_port_counters(self):
        sim, left, right, link = make_pair()
        packet = Packet.tcp("1.1.1.1", "2.2.2.2", 1, 2)
        left.send(packet, left.port(1))
        sim.run()
        assert left.port(1).tx_packets.value == 1
        assert right.port(1).rx_packets.value == 1
        assert link.tx_bytes.value == packet.wire_size()

    def test_other_end_and_peer(self):
        _, left, right, link = make_pair()
        assert link.other_end(left.port(1)) is right.port(1)
        assert left.port(1).peer() is right.port(1)

    def test_other_end_foreign_port_rejected(self):
        _, left, right, link = make_pair()
        foreign = Node("other").add_port()
        with pytest.raises(TopologyError):
            link.other_end(foreign)

    def test_double_wiring_rejected(self):
        _, left, right, _ = make_pair()
        other = Node("other")
        with pytest.raises(PortError):
            Link(left.port(1), other.add_port())

    def test_negative_latency_rejected(self):
        left, right = Node("a"), Node("b")
        with pytest.raises(TopologyError):
            Link(left.add_port(), right.add_port(), latency=-1.0)

    def test_self_link_rejected(self):
        node = Node("a")
        port = node.add_port()
        with pytest.raises(TopologyError):
            Link(port, port)


class TestFlood:
    def test_flood_excludes_ingress(self):
        sim = Simulator()
        hub = Node("hub")
        hub.attach(sim)
        spokes = []
        for index in range(3):
            spoke = RecordingNode(f"spoke{index}")
            spoke.attach(sim)
            Link(hub.add_port(), spoke.add_port())
            spokes.append(spoke)
        count = hub.flood(Packet(), exclude=hub.port(1))
        sim.run()
        assert count == 2
        assert len(spokes[0].received) == 0
        assert len(spokes[1].received) == 1
        assert len(spokes[2].received) == 1
