"""Tests for the continuation-scheduled async decision core.

Covers the serialized decision loop as a *real* event-scheduled queue
(the closed-form regression against the old ``_busy_until`` arithmetic),
the serial-baseline core, the engine's async query path (immediate hits,
coalesced waiters, scheduled misses), the opt-in non-blocking controller
inbox, the O(1) uncovered-pending probe, and the failover guarantee that
flows dying *between* query dispatch and answer arrival are re-punted to
a successor exactly once.
"""

import pytest

from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPNetwork
from repro.exceptions import ControllerError
from repro.identpp.client import QueryClient
from repro.identpp.engine import QueryEngine
from repro.identpp.flowspec import FlowSpec

from tests.test_cluster_failover import build_network as build_cluster
from tests.test_query_engine import build_world, flow_to_server

POLICY = {"00.control": "block all\npass from any to any port 80 keep state\n"}


def build_net(name="decision-core", **config_kwargs):
    net = IdentPPNetwork(
        name,
        policy_default_action="block",
        controller_config=ControllerConfig(**config_kwargs),
    )
    sw = net.add_switch("sw")
    net.add_host(
        HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users",)}),
        switch=sw,
    )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=sw)
    server.run_server("httpd", "root", 80)
    net.set_policy(POLICY)
    return net


def open_flows(net, count):
    client = net.host("client")
    flows = []
    for _ in range(count):
        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
        flows.append(FlowSpec.from_packet(packet))
    return flows


def decision_times(net, flows):
    by_flow = {flow: None for flow in flows}
    for record in net.controller.audit.records():
        if record.flow in by_flow and by_flow[record.flow] is None:
            by_flow[record.flow] = record.time
    return [by_flow[flow] for flow in flows]


class TestConfigValidation:
    def test_invalid_decision_core_rejected(self):
        with pytest.raises(ControllerError):
            build_net(decision_core="threads")


class TestSerialQueueClosedForm:
    """Satellite: the event-scheduled queue matches the old closed form."""

    def test_single_flow_serialized_matches_unserialized(self):
        # With nothing to queue behind, serialization must cost nothing:
        # the decision lands at arrival + query latency + eval, exactly
        # as in the unserialized pipeline (the old ``_busy_until``
        # closed form reduced to the same instant for a lone flow).
        times = {}
        for serialize in (False, True):
            net = build_net(f"lone-{serialize}", serialize_decisions=serialize)
            [flow] = open_flows(net, 1)
            net.run()
            [when] = decision_times(net, [flow])
            assert when is not None
            times[serialize] = when
        assert times[True] == pytest.approx(times[False])

    def test_burst_completions_spaced_exactly_one_eval_apart(self):
        # A uniform burst arrives together and its answers land together,
        # so ready order == punt order and the real queue must reproduce
        # the old recurrence completion_i = completion_{i-1} + eval, with
        # the head finishing at the lone-flow instant.
        eval_delay = 0.01
        lone = build_net("head", serialize_decisions=True, policy_eval_delay=eval_delay)
        [lone_flow] = open_flows(lone, 1)
        lone.run()
        [head_expected] = decision_times(lone, [lone_flow])

        net = build_net("burst", serialize_decisions=True, policy_eval_delay=eval_delay)
        flows = open_flows(net, 5)
        net.run()
        times = decision_times(net, flows)
        assert None not in times
        assert times[0] == pytest.approx(head_expected)
        for earlier, later in zip(times, times[1:]):
            assert later - earlier == pytest.approx(eval_delay)
        assert net.controller._serial.served == len(flows)
        assert net.controller._serial.max_depth >= len(flows) - 1
        assert net.controller._serial.depth() == 0
        assert net.controller.inflight_count() == 0

    def test_unserialized_burst_overlaps_completely(self):
        # The async core's whole point: without the serialized loop a
        # uniform burst decides at one shared instant — query
        # round-trips and eval slots all overlap.
        net = build_net("overlap", serialize_decisions=False)
        flows = open_flows(net, 5)
        net.run()
        times = decision_times(net, flows)
        assert None not in times
        assert max(times) == pytest.approx(min(times))


class TestSerialBaselineCore:
    def test_serial_core_single_flow_matches_async(self):
        # One flow with idle queues: the blocking baseline and the
        # continuation pipeline pay the same latencies, so they must
        # decide at the same instant.
        times = {}
        for core in ("async", "serial"):
            net = build_net(f"core-{core}", decision_core=core, serialize_decisions=True)
            [flow] = open_flows(net, 1)
            net.run()
            [when] = decision_times(net, [flow])
            assert when is not None
            times[core] = when
        assert times["serial"] == pytest.approx(times["async"])

    def test_serial_core_burst_spacing_includes_the_query_cost(self):
        # The blocking loop holds the serial stage for the query
        # round-trip *and* the eval, so burst completions space by
        # query_cost + eval — strictly wider than the async core's
        # eval-only spacing.  This is the collapse the overlap bench
        # measures at scale.
        eval_delay = 0.001
        net = build_net(
            "serial-burst", decision_core="serial",
            serialize_decisions=True, policy_eval_delay=eval_delay,
        )
        flows = open_flows(net, 4)
        net.run()
        times = decision_times(net, flows)
        assert None not in times
        gaps = [later - earlier for earlier, later in zip(times, times[1:])]
        assert all(gap == pytest.approx(gaps[0]) for gap in gaps)
        assert gaps[0] > eval_delay


class TestEngineAsyncQueries:
    def test_miss_completes_at_answer_arrival(self):
        topo, switch, _, _, _ = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=10.0)
        # Measure the round-trip in a throwaway world so the engine
        # under test stays cold.
        probe_topo, probe_switch, _, _, _ = build_world()
        sync_latency = QueryClient(probe_topo).query(
            flow_to_server(40000), "dst", from_node=probe_switch
        ).latency
        assert sync_latency > 0

        seen = []
        future = engine.query_async(flow_to_server(40000), "dst", from_node=switch)
        assert not future.done
        future.add_done_callback(lambda outcome: seen.append((topo.sim.now, outcome)))
        topo.sim.run()
        [(when, outcome)] = seen
        assert outcome.succeeded() and not outcome.cached
        assert when == pytest.approx(sync_latency)
        assert engine.misses == 1

    def test_warm_hit_completes_immediately(self):
        topo, switch, _, _, daemon = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=10.0)
        engine.query_async(flow_to_server(40000), "dst", from_node=switch)
        topo.sim.run()  # first answer lands and warms the cache
        hit = engine.query_async(flow_to_server(41000), "dst", from_node=switch)
        assert hit.done
        assert hit.result().cached and hit.result().latency == 0.0
        assert engine.hits == 1
        assert int(daemon.queries_answered.value) == 1

    def test_coalesced_waiter_completes_with_the_shared_arrival(self):
        topo, switch, _, _, daemon = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=10.0)
        first = engine.query_async(flow_to_server(40000), "dst", from_node=switch)
        second = engine.query_async(flow_to_server(41000), "dst", from_node=switch)
        completions = []
        first.add_done_callback(lambda _: completions.append(("first", topo.sim.now)))
        second.add_done_callback(lambda _: completions.append(("second", topo.sim.now)))
        topo.sim.run()
        assert [name for name, _ in completions] == ["first", "second"]
        (_, first_at), (_, second_at) = completions
        # One round-trip answers both, at the same instant.
        assert second_at == pytest.approx(first_at)
        assert second.result().coalesced
        assert engine.misses == 1 and engine.coalesced == 1
        assert int(daemon.queries_answered.value) == 1

    def test_invalidation_mid_flight_does_not_strand_waiters(self):
        topo, switch, _, server, _ = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=10.0)
        first = engine.query_async(flow_to_server(40000), "dst", from_node=switch)
        second = engine.query_async(flow_to_server(41000), "dst", from_node=switch)
        # The entry both futures wait on is evicted while the round-trip
        # is still in flight; the arrival event holds the entry object
        # directly, so the continuations still complete on time.
        assert engine.invalidate_host(server.ip, reason="test") >= 1
        topo.sim.run()
        assert first.done and second.done
        assert first.result().succeeded() and second.result().succeeded()

    def test_disabled_engine_passthrough_still_schedules_the_answer(self):
        topo, switch, _, _, _ = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=0.0)
        future = engine.query_async(flow_to_server(40000), "dst", from_node=switch)
        assert not future.done
        topo.sim.run()
        assert future.done and future.result().succeeded()
        assert engine.stats()["lookups"] == 0  # pure pass-through


class TestNonblockingInbox:
    def test_dispatch_is_deferred_to_a_scheduled_drain(self):
        net = build_net("inbox", nonblocking_inbox=True)
        controller = net.controller
        assert controller.nonblocking_inbox
        client = net.host("client")
        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80, send=False)

        from repro.openflow.messages import PacketIn

        controller.handle_message(PacketIn(switch=net.switches["sw"], packet=packet, in_port=1))
        # Queued, not handled: the delivery call returned without
        # touching the punt pipeline.
        assert len(controller._inbox) == 1
        assert int(controller.packet_ins.value) == 0
        net.run()
        assert len(controller._inbox) == 0
        assert int(controller.packet_ins.value) == 1
        assert [r.action for r in controller.audit.records()] == ["pass"]

    def test_end_to_end_delivery_with_nonblocking_inbox(self):
        net = build_net("inbox-e2e", nonblocking_inbox=True, serialize_decisions=True)
        flows = open_flows(net, 3)
        net.run()
        assert len(net.host("server").delivered) == 3
        assert None not in decision_times(net, flows)

    def test_messages_queued_before_a_crash_join_the_halted_backlog(self):
        net = build_net("inbox-crash", nonblocking_inbox=True)
        controller = net.controller
        client = net.host("client")
        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80, send=False)

        from repro.openflow.messages import PacketIn

        controller.handle_message(PacketIn(switch=net.switches["sw"], packet=packet, in_port=1))
        controller.halt()
        net.run()
        # The drain found the process dead and preserved the message for
        # the failover handoff instead of silently dropping it.
        backlog = controller.take_halted_messages()
        assert len(backlog) == 1
        assert int(controller.packet_ins.value) == 0


class TestUncoveredPendingProbe:
    def test_probe_agrees_with_the_scan(self):
        net = build_net("probe", pending_deadline=5.0)
        open_flows(net, 3)
        net.run(0.0003)  # punts delivered, queries in flight
        controller = net.controller
        assert len(controller._pending_since) == 3
        assert controller._uncovered_pending_count() == len(controller._uncovered_pending()) == 0
        # Tamper with one armed deadline the way the churn test's chaos
        # harness does: the probe must notice exactly what the scan sees.
        flow = next(iter(controller._pending_deadline_events))
        controller._pending_deadline_events.pop(flow).cancel()
        assert controller._uncovered_pending_count() == 1
        assert controller._uncovered_pending() == [flow]
        net.run()
        assert controller._uncovered_pending_count() == 0

    def test_probe_is_zero_with_the_deadline_disabled(self):
        net = build_net("probe-off", pending_deadline=0.0)
        open_flows(net, 2)
        net.run(0.0003)
        assert net.controller._uncovered_pending_count() == 0
        assert net.controller._uncovered_pending() == []
        net.run()


class TestMidQueryKillFailover:
    def test_kill_between_query_dispatch_and_answer_arrival(self):
        # The async core's new failure window: the punt dispatched its
        # endpoint queries (a DecisionTask is in flight, answers are
        # scheduled events) when the owner dies.  The flow must be
        # exported to the successor and decided exactly once — the
        # orphaned answer/eval continuations on the corpse must not
        # produce a second decision.
        net = build_cluster()
        client = net.host("client")
        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
        flow = FlowSpec.from_packet(packet)
        owner = net.cluster.shard_map.owner(flow)
        net.run(0.0005)  # punt delivered; queries dispatched, answers pending

        dead = net.cluster.replicas[owner]
        assert dead.pending_flows() == [flow]
        assert dead.inflight_count() == 1
        [task] = dead._inflight.values()
        assert task.stage == "query"  # answers genuinely still in flight

        net.start_monitoring()
        net.cluster.kill(owner)
        net.run(1.0)
        net.stop_monitoring()
        net.run()

        successor = net.cluster.shard_map.owner(flow)
        assert successor != owner
        # Exactly one decision, on the successor; the corpse decided
        # nothing and retains no frozen continuation state.
        assert [r.action for r in net.cluster.replicas[successor].audit.records()] == ["pass"]
        assert dead.audit.records() == []
        assert dead.inflight_count() == 0
        assert len(net.host("server").delivered) == 1
        assert net.cluster.pending_total() == 0
        assert net.switches["sw"].buffered_count() == 0
        assert net.cluster.repunted_flows == 1

    def test_mid_query_kill_with_serialized_successor(self):
        # Same window, but every replica serializes policy eval — the
        # exported flow must queue and decide on the successor's real
        # serial loop, not get lost between export and restart.
        net = build_cluster(
            controller_config=ControllerConfig(
                serialize_decisions=True, pending_deadline=10.0,
            ),
        )
        client = net.host("client")
        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
        flow = FlowSpec.from_packet(packet)
        owner = net.cluster.shard_map.owner(flow)
        net.run(0.0005)
        assert net.cluster.replicas[owner].inflight_count() == 1

        net.start_monitoring()
        net.cluster.kill(owner)
        net.run(1.0)
        net.stop_monitoring()
        net.run()

        successor = net.cluster.shard_map.owner(flow)
        records = net.cluster.replicas[successor].audit.records()
        assert [r.action for r in records] == ["pass"]
        assert net.cluster.replicas[successor]._serial.depth() == 0
        assert len(net.host("server").delivered) == 1
        assert net.cluster.pending_total() == 0
