"""Tests for the end-host substrate: users, applications, processes, sockets, EndHost."""

import pytest

from repro.exceptions import HostError, ProcessError, SocketError, UserError
from repro.hosts.applications import Application, ApplicationRegistry, standard_applications
from repro.hosts.endhost import EndHost
from repro.hosts.processes import ProcessTable
from repro.hosts.sockets import SocketTable
from repro.hosts.users import UserDatabase
from repro.netsim.events import Simulator
from repro.netsim.links import Link
from repro.netsim.packet import Packet


class TestUsers:
    def test_builtin_accounts(self):
        db = UserDatabase()
        assert db.user("root").is_superuser
        assert db.user("system").can_bind_privileged_ports
        assert not db.user("system").is_superuser

    def test_add_user_creates_groups(self):
        db = UserDatabase()
        user = db.add_user("alice", groups=["staff", "users"])
        assert user.in_group("staff")
        assert db.group("staff").name == "staff"

    def test_duplicate_user_rejected(self):
        db = UserDatabase()
        db.add_user("alice")
        with pytest.raises(UserError):
            db.add_user("alice")

    def test_unknown_user_and_group(self):
        db = UserDatabase()
        with pytest.raises(UserError):
            db.user("ghost")
        with pytest.raises(UserError):
            db.group("ghosts")

    def test_add_to_group_and_members(self):
        db = UserDatabase()
        db.add_user("alice")
        db.add_to_group("alice", "research")
        assert db.user("alice").in_group("research")
        assert [u.name for u in db.members_of("research")] == ["alice"]

    def test_user_by_uid(self):
        db = UserDatabase()
        alice = db.add_user("alice", uid=4242)
        assert db.user_by_uid(4242) is alice
        assert db.user_by_uid(9999) is None


class TestApplications:
    def test_identity_keys_include_required_fields(self):
        app = Application(name="skype", path="/usr/bin/skype", version="210", vendor="skype.com", app_type="voip")
        keys = app.identity_keys()
        assert keys["name"] == "skype"
        assert keys["app-name"] == "skype"
        assert keys["version"] == "210"
        assert keys["vendor"] == "skype.com"
        assert keys["type"] == "voip"
        assert len(keys["exe-hash"]) == 64

    def test_extra_keys_override(self):
        app = Application(name="skype-old", path="/opt/skype", version="150",
                          extra_keys={"name": "skype"})
        assert app.identity_keys()["name"] == "skype"

    def test_tampered_copy_changes_hash_only(self):
        app = Application(name="skype", path="/usr/bin/skype", version="210")
        trojan = app.tampered_copy()
        assert trojan.name == app.name and trojan.path == app.path
        assert trojan.exe_hash != app.exe_hash

    def test_registry_lookup(self):
        registry = ApplicationRegistry()
        app = Application(name="skype", path="/usr/bin/skype")
        registry.install(app)
        assert registry.by_name("skype") is app
        assert registry.by_path("/usr/bin/skype") is app
        assert registry.require("skype") is app
        assert "skype" in registry

    def test_registry_uninstall(self):
        registry = ApplicationRegistry()
        registry.install(Application(name="skype", path="/usr/bin/skype"))
        registry.uninstall("/usr/bin/skype")
        assert registry.by_name("skype") is None
        with pytest.raises(HostError):
            registry.uninstall("/usr/bin/skype")

    def test_require_missing_raises(self):
        with pytest.raises(HostError):
            ApplicationRegistry().require("ghost")

    def test_standard_catalogue_covers_paper_apps(self):
        names = {app.name for app in standard_applications()}
        assert {"skype", "pine", "thunderbird", "research-app", "Server", "conficker"} <= names


class TestProcesses:
    def setup_method(self):
        self.db = UserDatabase()
        self.alice = self.db.add_user("alice")
        self.bob = self.db.add_user("bob")
        self.app = Application(name="skype", path="/usr/bin/skype")
        self.table = ProcessTable()

    def test_spawn_and_lookup(self):
        process = self.table.spawn(self.alice, self.app)
        assert self.table.get(process.pid) is process
        assert process.exe_path == "/usr/bin/skype"
        assert self.table.by_user("alice") == [process]
        assert self.table.by_application("skype") == [process]

    def test_kill(self):
        process = self.table.spawn(self.alice, self.app)
        self.table.kill(process.pid)
        assert process.pid not in self.table
        with pytest.raises(ProcessError):
            self.table.kill(process.pid)

    def test_get_missing_raises(self):
        with pytest.raises(ProcessError):
            self.table.get(12345)
        assert self.table.find(12345) is None

    def test_ptrace_same_user_allowed(self):
        victim = self.table.spawn(self.alice, self.app)
        attacker = self.table.spawn(self.alice, self.app)
        assert victim.can_be_ptraced_by(attacker)

    def test_ptrace_other_user_denied(self):
        victim = self.table.spawn(self.alice, self.app)
        attacker = self.table.spawn(self.bob, self.app)
        assert not victim.can_be_ptraced_by(attacker)

    def test_setgid_isolation_blocks_ptrace(self):
        victim = self.table.spawn(self.alice, self.app, setgid_isolated=True)
        attacker = self.table.spawn(self.alice, self.app)
        assert not victim.can_be_ptraced_by(attacker)

    def test_superuser_can_always_ptrace(self):
        root = self.db.user("root")
        victim = self.table.spawn(self.alice, self.app, setgid_isolated=True)
        attacker = self.table.spawn(root, self.app)
        assert victim.can_be_ptraced_by(attacker)


class TestSockets:
    def setup_method(self):
        self.db = UserDatabase()
        self.alice = self.db.add_user("alice")
        self.root = self.db.user("root")
        self.app = Application(name="httpd", path="/usr/sbin/httpd")
        self.processes = ProcessTable()
        self.table = SocketTable("192.168.0.10")

    def test_listen_and_find(self):
        process = self.processes.spawn(self.root, self.app)
        socket = self.table.listen(process, 80)
        assert socket.is_listening and socket.is_privileged
        assert self.table.find_listener(80) is socket

    def test_privileged_port_requires_privilege(self):
        process = self.processes.spawn(self.alice, self.app)
        with pytest.raises(SocketError):
            self.table.listen(process, 80)
        # unprivileged ports are fine
        assert self.table.listen(process, 8080).local_port == 8080

    def test_duplicate_listener_rejected(self):
        process = self.processes.spawn(self.root, self.app)
        self.table.listen(process, 80)
        with pytest.raises(SocketError):
            self.table.listen(process, 80)

    def test_invalid_port_rejected(self):
        process = self.processes.spawn(self.root, self.app)
        with pytest.raises(SocketError):
            self.table.listen(process, 0)

    def test_connect_allocates_ephemeral_ports(self):
        process = self.processes.spawn(self.alice, self.app)
        first = self.table.connect(process, "192.168.1.1", 80)
        second = self.table.connect(process, "192.168.1.1", 80)
        assert first.local_port != second.local_port
        assert not first.is_listening

    def test_lookup_flow_as_source(self):
        process = self.processes.spawn(self.alice, self.app)
        socket = self.table.connect(process, "192.168.1.1", 80)
        found = self.table.process_for_flow(
            "192.168.0.10", "192.168.1.1", "tcp", socket.local_port, 80
        )
        assert found is process

    def test_lookup_flow_as_destination_listener(self):
        process = self.processes.spawn(self.root, self.app)
        self.table.listen(process, 80)
        found = self.table.process_for_flow(
            "192.168.1.1", "192.168.0.10", "tcp", 5555, 80, as_destination=True
        )
        assert found is process

    def test_lookup_prefers_connected_socket(self):
        listener_process = self.processes.spawn(self.root, self.app)
        self.table.listen(listener_process, 8080)
        worker_process = self.processes.spawn(self.alice, self.app)
        # the worker socket of an accepted connection shares the listener's port
        self.table.connect(worker_process, "192.168.1.1", 5555, local_port=8080)
        found = self.table.lookup_flow(
            "192.168.1.1", "192.168.0.10", "tcp", 5555, 8080, as_destination=True
        )
        assert found.process is worker_process

    def test_lookup_unknown_flow_returns_none(self):
        assert self.table.process_for_flow("1.1.1.1", "2.2.2.2", "tcp", 1, 2) is None

    def test_close(self):
        process = self.processes.spawn(self.alice, self.app)
        socket = self.table.connect(process, "192.168.1.1", 80)
        self.table.close(socket)
        with pytest.raises(SocketError):
            self.table.close(socket)


class TestEndHost:
    def make_host(self):
        host = EndHost("client", "192.168.0.10")
        host.install_all(standard_applications())
        host.add_user("alice", ("users", "staff"))
        return host

    def test_open_flow_builds_packet_and_socket(self):
        host = self.make_host()
        packet, socket, process = host.open_flow("http", "alice", "192.168.1.1", 80, send=False)
        assert str(packet.ip_src) == "192.168.0.10"
        assert packet.tp_dst == 80
        assert socket.remote_port == 80
        assert process.user.name == "alice"
        assert host.process_for_flow(packet.ip_src, packet.ip_dst, packet.ip_proto,
                                     packet.tp_src, packet.tp_dst) is process

    def test_run_server_default_port(self):
        host = self.make_host()
        process, socket = host.run_server("httpd", "root")
        assert socket.local_port == 80
        assert process.application.name == "httpd"

    def test_run_server_without_port_fails_for_clients(self):
        host = self.make_host()
        with pytest.raises(HostError):
            host.run_server("http", "alice")

    def test_receive_records_delivery(self):
        host = self.make_host()
        packet = Packet.tcp("192.168.1.1", "192.168.0.10", 80, 5555)
        host.attach(Simulator())
        host.receive(packet, host.add_port())
        assert host.delivered == [packet]
        assert host.delivered_flows() == {packet.five_tuple()}

    def test_receive_ignores_foreign_destination(self):
        host = self.make_host()
        packet = Packet.tcp("192.168.1.1", "192.168.0.99", 80, 5555)
        host.receive(packet, host.add_port())
        assert host.delivered == []

    def test_registered_service_handles_packet(self):
        host = self.make_host()
        seen = []
        host.register_service(783, lambda packet, h: seen.append(packet))
        packet = Packet.tcp("192.168.1.1", "192.168.0.10", 783, 783)
        host.receive(packet, host.add_port())
        assert seen == [packet]
        assert host.delivered == []
        host.unregister_service(783)
        host.receive(packet.copy(), host.port(1))
        assert len(host.delivered) == 1

    def test_transmit_uses_wired_port(self):
        sim = Simulator()
        client = self.make_host()
        server = EndHost("server", "192.168.1.1")
        client.attach(sim)
        server.attach(sim)
        Link(client.add_port(), server.add_port())
        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
        sim.run()
        assert server.delivered and server.delivered[0].five_tuple() == packet.five_tuple()

    def test_send_on_socket(self):
        host = self.make_host()
        _, socket, _ = host.open_flow("http", "alice", "192.168.1.1", 80, send=False)
        packet = host.send_on_socket(socket, payload_size=100)
        assert packet.tp_src == socket.local_port

    def test_send_on_listening_socket_rejected(self):
        host = self.make_host()
        _, socket = host.run_server("httpd", "root")
        with pytest.raises(HostError):
            host.send_on_socket(socket)

    def test_mark_compromised(self):
        host = self.make_host()
        host.mark_compromised(superuser=True)
        assert host.compromised and host.compromised_as_superuser
