"""Tests for the QueryEngine and the query-path silent-failure fixes.

Covers the engine's cache hit/miss/TTL-expiry behaviour, in-flight
coalescing, the negative cache for daemon-less and unreachable hosts,
every invalidation trigger (runtime publish, socket-table owner change,
spoofing, host compromise, config loads), controller and cluster
integration — plus the three query-client bugfixes: unreachable hosts
reported as timeouts (not silent successes), the interceptor-latency
cache keyed on the topology mutation epoch, and per-role interceptor
ordering in ``query_both_ends``.
"""

import pytest

from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPClusterNetwork, IdentPPNetwork
from repro.hosts.applications import standard_applications
from repro.hosts.endhost import EndHost
from repro.identpp.client import QueryClient, per_role_interceptors
from repro.identpp.daemon import IdentPPDaemon
from repro.identpp.engine import QueryEngine
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.identpp.wire import IdentResponse
from repro.netsim.nodes import Node
from repro.netsim.topology import Topology


def make_host(name, ip, *, daemon=True, serve=None):
    host = EndHost(name, ip)
    host.install_all(standard_applications())
    host.add_user("alice", ("users", "staff"))
    host.add_user("root", ("root",))
    d = IdentPPDaemon(host) if daemon else None
    if serve is not None:
        app, user, port = serve
        host.run_server(app, user, port)
    return host, d


def build_world(*, server_daemon=True, serve=("httpd", "root", 80)):
    """client — mid — server, every IP registered, client daemon'd."""
    topo = Topology("engine-test")
    switch = topo.add_node(Node("mid"))
    client, _ = make_host("client", "192.168.0.10")
    server, server_d = make_host(
        "server", "192.168.1.1", daemon=server_daemon, serve=serve
    )
    topo.add_node(client)
    topo.add_node(server)
    topo.add_link(client, switch, latency=1e-3)
    topo.add_link(server, switch, latency=1e-3)
    topo.register_ip(client.ip, client)
    topo.register_ip(server.ip, server)
    return topo, switch, client, server, server_d


def flow_to_server(src_port=40000, dst_port=80):
    return FlowSpec.tcp("192.168.0.10", "192.168.1.1", src_port, dst_port)


class NamedInterceptor:
    """Interceptor that answers with its own name (ordering probe)."""

    def __init__(self, name, answer=True):
        self.name = name
        self.answer = answer

    def intercept_query(self, query):
        if not self.answer:
            return None
        doc = ResponseDocument()
        doc.add_section({"answered-by": self.name}, source=self.name)
        return IdentResponse(flow=query.flow, document=doc, responder=self.name)

    def augment_response(self, query, response):
        response.document.augment({"seen": self.name}, source=self.name)


# ----------------------------------------------------------------------
# Satellite bugfixes in the query client
# ----------------------------------------------------------------------


class TestUnreachableHost:
    def build_partitioned(self):
        """Server has a daemon but no path from the querying switch."""
        topo = Topology("partitioned")
        switch = topo.add_node(Node("sw"))
        server, daemon = make_host("server", "192.168.1.1")
        topo.add_node(server)
        topo.register_ip(server.ip, server)
        # No link between switch and server: the query cannot be delivered.
        return topo, switch, daemon

    def test_unreachable_host_is_a_timeout_not_a_silent_success(self):
        topo, switch, daemon = self.build_partitioned()
        client = QueryClient(topo)
        flow = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 80)
        outcome = client.query(flow, "dst", from_node=switch)
        assert outcome.timed_out and outcome.unreachable
        assert not outcome.succeeded()
        assert outcome.latency == client.timeout
        assert int(client.queries_timed_out.value) == 1
        # The daemon was never asked: the query could not be delivered.
        assert int(daemon.queries_answered.value) == 0

    def test_only_topology_errors_are_swallowed(self):
        topo, switch, _ = self.build_partitioned()
        client = QueryClient(topo)

        def boom(source, target):
            raise ValueError("a real bug, not an unreachable host")

        client.topology.path_latency = boom
        flow = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 40000, 80)
        with pytest.raises(ValueError):
            client.query(flow, "dst", from_node=switch)


class TestPerRoleInterceptorOrdering:
    def test_helper_reverses_for_source(self):
        a, b = NamedInterceptor("a"), NamedInterceptor("b")
        toward_src, toward_dst = per_role_interceptors([a, b])
        assert toward_dst == (a, b)
        assert toward_src == (b, a)

    def test_query_both_ends_walks_reversed_toward_source(self):
        # Two on-path interceptors whose answers differ.  Ordered
        # querier -> destination they are [near, far]; the walk toward
        # the *source* must start from "far" (nearest the source).
        topo, switch, client_host, server, _ = build_world()
        near, far = NamedInterceptor("near"), NamedInterceptor("far")
        qc = QueryClient(topo)
        flow = flow_to_server()
        src_outcome, dst_outcome = qc.query_both_ends(
            flow, from_node=switch, interceptors=[near, far]
        )
        assert dst_outcome.document.latest("answered-by") == "near"
        assert src_outcome.document.latest("answered-by") == "far"


# ----------------------------------------------------------------------
# QueryEngine: cache, coalescing, negative cache
# ----------------------------------------------------------------------


class TestEngineCache:
    def test_disabled_engine_is_pure_passthrough(self):
        topo, switch, _, _, daemon = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=0.0)
        assert not engine.enabled
        for port in (40000, 40001):
            outcome = engine.query(flow_to_server(port), "dst", from_node=switch)
            assert outcome.succeeded() and not outcome.cached
        assert int(daemon.queries_answered.value) == 2
        assert engine.stats()["lookups"] == 0

    def test_hit_after_ready_and_miss_after_ttl(self):
        topo, switch, _, _, daemon = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=10.0)
        first = engine.query(flow_to_server(40000), "dst", from_node=switch, now=0.0)
        assert first.succeeded() and not first.cached
        ready = first.latency
        # A different flow to the same server:port after the answer
        # "arrived" is a hit: zero latency, no daemon contact.
        hit = engine.query(
            flow_to_server(41000), "dst", from_node=switch, now=ready + 0.1
        )
        assert hit.cached and hit.latency == 0.0
        assert hit.document.latest("name") == "httpd"
        assert int(daemon.queries_answered.value) == 1
        # Past the TTL the entry is gone and the daemon is re-asked.
        miss = engine.query(
            flow_to_server(42000), "dst", from_node=switch, now=ready + 11.0
        )
        assert not miss.cached
        assert int(daemon.queries_answered.value) == 2
        stats = engine.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["expirations"] >= 1

    def test_source_entries_do_not_leak_across_flows(self):
        # Source answers are keyed on the ephemeral source port: two
        # different flows from the same client must not share one.
        topo, switch, client_host, _, _ = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=10.0)
        client_daemon = client_host.identpp_daemon
        p1, _, _ = client_host.open_flow("http", "alice", "192.168.1.1", 80, send=False)
        p2, _, _ = client_host.open_flow("skype", "alice", "192.168.1.1", 80, send=False)
        f1, f2 = FlowSpec.from_packet(p1), FlowSpec.from_packet(p2)
        o1 = engine.query(f1, "src", from_node=switch, now=0.0)
        o2 = engine.query(f2, "src", from_node=switch, now=1.0)
        assert o1.document.latest("name") == "http"
        assert o2.document.latest("name") == "skype"
        assert not o2.cached
        assert int(client_daemon.queries_answered.value) == 2

    def test_intercepted_answers_are_not_cached(self):
        topo, switch, _, _, daemon = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=10.0)
        interceptor = NamedInterceptor("edge")
        first = engine.query(
            flow_to_server(40000), "dst", from_node=switch,
            interceptors=[interceptor], now=0.0,
        )
        assert first.intercepted
        assert len(engine) == 0
        # Without the interceptor the daemon is asked fresh.
        second = engine.query(flow_to_server(40001), "dst", from_node=switch, now=0.0)
        assert not second.cached and second.answered_by == "server"

    def test_interceptors_bypass_a_warm_cache(self):
        # Interception is a per-query decision (§3.4): a warm entry must
        # not pre-empt an on-path controller's chance to answer.
        topo, switch, _, _, daemon = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=100.0)
        engine.query(flow_to_server(40000), "dst", from_node=switch, now=0.0)
        assert len(engine) == 1
        outcome = engine.query(
            flow_to_server(41000), "dst", from_node=switch,
            interceptors=[NamedInterceptor("edge")], now=1.0,
        )
        assert outcome.intercepted and not outcome.cached
        assert outcome.document.latest("answered-by") == "edge"
        assert engine.stats()["interceptor_bypasses"] == 1

    def test_flow_specific_dst_answer_is_not_shared_across_flows(self):
        # The app published pairs for one specific flow: that flow's
        # answer is flow-scoped and must not decide other flows.
        topo, switch, _, server, daemon = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=100.0)
        flow_a, flow_b = flow_to_server(40000), flow_to_server(41000)
        daemon.runtime.publish_for_flow(flow_a, {"authorized": "yes"})
        first = engine.query(flow_a, "dst", from_node=switch, now=0.0)
        assert first.document.latest("authorized") == "yes"
        # Same-flow re-punt may reuse the flow-scoped entry...
        repunt = engine.query(flow_a, "dst", from_node=switch, now=1.0)
        assert repunt.cached
        assert int(daemon.queries_answered.value) == 1
        # ...but a different flow queries fresh and never sees A's pair.
        other = engine.query(flow_b, "dst", from_node=switch, now=2.0)
        assert not other.cached
        assert other.document.latest("authorized") is None
        assert int(daemon.queries_answered.value) == 2


class TestEngineCoalescing:
    def test_concurrent_punts_share_one_outstanding_query(self):
        topo, switch, _, _, daemon = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=10.0)
        first = engine.query(flow_to_server(40000), "dst", from_node=switch, now=0.0)
        ready = first.latency
        # While the first query is "in flight", every punt coalesces:
        # same answer, charged only the remaining wait.
        later = engine.query(
            flow_to_server(41000), "dst", from_node=switch, now=ready / 2
        )
        assert later.coalesced
        assert later.latency == pytest.approx(ready / 2)
        assert later.document.latest("name") == "httpd"
        # Exactly one daemon answer served both punts.
        assert int(daemon.queries_answered.value) == 1
        assert engine.stats()["coalesced"] == 1


class TestEngineNegativeCache:
    def test_daemonless_host_costs_one_timeout_per_ttl(self):
        topo, switch, _, _, _ = build_world(server_daemon=False, serve=None)
        qc = QueryClient(topo)
        engine = QueryEngine(qc, ttl=10.0)
        first = engine.query(flow_to_server(40000), "dst", from_node=switch, now=0.0)
        assert first.timed_out and first.latency == qc.timeout
        # Within the TTL every further flow pays nothing.
        hit = engine.query(
            flow_to_server(41000), "dst", from_node=switch, now=qc.timeout + 0.01
        )
        assert hit.timed_out and hit.cached and hit.latency == 0.0
        assert int(qc.queries_timed_out.value) == 1
        assert engine.stats()["negative_hits"] == 1
        # Past the TTL the host is probed again.
        again = engine.query(flow_to_server(42000), "dst", from_node=switch, now=20.0)
        assert again.timed_out and not again.cached
        assert int(qc.queries_timed_out.value) == 2

    def test_negative_entry_coalesces_while_in_flight(self):
        topo, switch, _, _, _ = build_world(server_daemon=False, serve=None)
        qc = QueryClient(topo)
        engine = QueryEngine(qc, ttl=10.0)
        engine.query(flow_to_server(40000), "dst", from_node=switch, now=0.0)
        shared = engine.query(
            flow_to_server(41000), "dst", from_node=switch, now=qc.timeout / 2
        )
        assert shared.timed_out and shared.coalesced
        assert shared.latency == pytest.approx(qc.timeout / 2)
        assert int(qc.queries_timed_out.value) == 1

    def test_daemon_appearing_mid_ttl_is_noticed_immediately(self):
        topo, switch, _, server, _ = build_world(server_daemon=False, serve=None)
        engine = QueryEngine(QueryClient(topo), ttl=100.0)
        engine.query(flow_to_server(40000), "dst", from_node=switch, now=0.0)
        assert len(engine) == 1
        IdentPPDaemon(server)
        revived = engine.query(flow_to_server(41000), "dst", from_node=switch, now=1.0)
        assert revived.succeeded() and not revived.cached

    def test_unreachable_entry_invalidated_by_topology_change(self):
        topo = Topology("partitioned")
        switch = topo.add_node(Node("sw"))
        server, daemon = make_host("server", "192.168.1.1", serve=("httpd", "root", 80))
        topo.add_node(server)
        topo.register_ip(server.ip, server)
        engine = QueryEngine(QueryClient(topo), ttl=100.0)
        cut_off = engine.query(flow_to_server(40000), "dst", from_node=switch, now=0.0)
        assert cut_off.timed_out and cut_off.unreachable
        # Still partitioned: the negative entry answers.
        again = engine.query(flow_to_server(41000), "dst", from_node=switch, now=1.0)
        assert again.timed_out and (again.cached or again.coalesced)
        # Repairing the network invalidates it on the next lookup.
        topo.add_link(server, switch, latency=1e-3)
        healed = engine.query(flow_to_server(42000), "dst", from_node=switch, now=2.0)
        assert healed.succeeded()
        assert int(daemon.queries_answered.value) == 1


# ----------------------------------------------------------------------
# Invalidation triggers
# ----------------------------------------------------------------------


class TestEngineInvalidation:
    def warm(self):
        topo, switch, client_host, server, daemon = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=1000.0)
        outcome = engine.query(flow_to_server(40000), "dst", from_node=switch, now=0.0)
        assert outcome.succeeded() and len(engine) == 1
        return engine, switch, server, daemon

    def assert_requeries(self, engine, switch, daemon):
        assert len(engine) == 0
        fresh = engine.query(flow_to_server(49000), "dst", from_node=switch, now=500.0)
        assert not fresh.cached
        assert int(daemon.queries_answered.value) == 2

    def test_publish_for_flow_invalidates(self):
        engine, switch, _, daemon = self.warm()
        daemon.runtime.publish_for_flow(flow_to_server(40000), {"k": "v"})
        self.assert_requeries(engine, switch, daemon)

    def test_publish_for_process_invalidates(self):
        engine, switch, server, daemon = self.warm()
        process = next(iter(server.sockets.sockets())).process
        daemon.runtime.publish_for_process(process, {"k": "v"})
        self.assert_requeries(engine, switch, daemon)

    def test_socket_table_change_invalidates(self):
        engine, switch, server, daemon = self.warm()
        server.open_flow("http", "alice", "192.168.0.10", 8080, send=False)
        self.assert_requeries(engine, switch, daemon)

    def test_spoofing_invalidates(self):
        engine, switch, _, daemon = self.warm()
        daemon.spoof_responses({"name": "httpd"})
        self.assert_requeries(engine, switch, daemon)

    def test_host_compromise_invalidates(self):
        engine, switch, server, daemon = self.warm()
        server.mark_compromised()
        self.assert_requeries(engine, switch, daemon)

    def test_config_load_invalidates(self):
        engine, switch, _, daemon = self.warm()
        daemon.load_system_config("@app /usr/sbin/httpd {\nextra : yes\n}")
        self.assert_requeries(engine, switch, daemon)

    def test_invalidation_is_per_host(self):
        topo, switch, client_host, server, server_daemon = build_world()
        engine = QueryEngine(QueryClient(topo), ttl=1000.0)
        packet, _, _ = client_host.open_flow(
            "http", "alice", "192.168.1.1", 80, send=False
        )
        flow = FlowSpec.from_packet(packet)
        engine.query(flow, "src", from_node=switch, now=0.0)
        engine.query(flow, "dst", from_node=switch, now=0.0)
        assert len(engine) == 2
        # The *server's* state changes; the client's cached answer stays.
        server_daemon.runtime.publish_for_flow(flow, {"k": "v"})
        assert len(engine) == 1
        (entry,) = engine._entries.values()
        assert entry.host_ip == "192.168.0.10"

    def test_explicit_invalidate_and_expire(self):
        engine, switch, _, daemon = self.warm()
        assert engine.invalidate_host("192.168.1.1", "admin") == 1
        assert len(engine) == 0
        engine.query(flow_to_server(41000), "dst", from_node=switch, now=0.0)
        assert engine.expirable_count() == 1
        assert engine.next_expiry() is not None
        assert engine.expire(now=5000.0) == 1
        assert engine.expirable_count() == 0 and engine.next_expiry() is None


# ----------------------------------------------------------------------
# Controller + cluster integration
# ----------------------------------------------------------------------


def build_cached_net(**config_kwargs):
    net = IdentPPNetwork(
        "engine-net",
        policy_default_action="block",
        controller_config=ControllerConfig(query_cache_ttl=60.0, **config_kwargs),
    )
    sw = net.add_switch("sw1")
    net.add_host(
        HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users",)}),
        switch=sw,
    )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=sw)
    server.run_server("httpd", "root", 80)
    net.set_policy(
        {"00.control": "block all\npass from any to any port 80 with eq(@dst[name], httpd)\n"}
    )
    return net


class TestControllerIntegration:
    def test_repeat_flows_hit_the_endpoint_cache(self):
        net = build_cached_net()
        daemon = net.daemon("server")
        first = net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        second = net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        assert first.decision_action == "pass" and second.decision_action == "pass"
        # One daemon answer served both decisions.
        assert int(daemon.queries_answered.value) == 1
        stats = net.controller.summary()["query_engine"]
        assert stats["hits"] >= 1 and stats["enabled"]

    def test_invalidation_forces_requery_through_the_controller(self):
        net = build_cached_net()
        daemon = net.daemon("server")
        server = net.host("server")
        net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        assert int(daemon.queries_answered.value) == 1
        # Re-tenant port 80: the cached httpd answer must not admit the
        # new listener's traffic.
        for socket in list(server.sockets.sockets()):
            if socket.is_listening and socket.local_port == 80:
                server.sockets.close(socket)
        server.run_server("telnet", "root", 80)
        result = net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        assert int(daemon.queries_answered.value) == 2
        assert result.decision_action == "block"

    def test_default_config_keeps_engine_disabled(self):
        net = IdentPPNetwork("plain-net")
        sw = net.add_switch("sw1")
        net.add_host(
            HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users",)}),
            switch=sw,
        )
        server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=sw)
        server.run_server("httpd", "root", 80)
        net.set_policy({"00.control": "pass from any to any"})
        daemon = net.daemon("server")
        net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        # Two punts, two fresh daemon interrogations: pre-engine behaviour.
        assert int(daemon.queries_answered.value) == 2
        assert not net.controller.summary()["query_engine"]["enabled"]


class TestClusterIntegration:
    def test_each_shard_runs_its_own_engine(self):
        net = IdentPPClusterNetwork(
            "engine-cluster",
            shards=2,
            policy_default_action="block",
            controller_config=ControllerConfig(query_cache_ttl=60.0),
        )
        sw = net.add_switch("sw1")
        net.add_host(
            HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users",)}),
            switch=sw,
        )
        server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=sw)
        server.run_server("httpd", "root", 80)
        net.set_policy({"00.control": "pass from any to any port 80\n"})
        engines = [c.query_engine for c in net.cluster.replicas.values()]
        assert len({id(e) for e in engines}) == 2
        client = net.host("client")
        for _ in range(20):
            client.open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        # Both shards decided flows out of their own caches: the hot
        # daemon answered once per shard engine, not once per flow.
        deciding = [
            c for c in net.cluster.replicas.values()
            if any(not r.cached for r in c.audit.records())
        ]
        assert len(deciding) == 2
        assert int(net.daemon("server").queries_answered.value) == len(deciding)
        summary = net.cluster.summary()["query_engine"]
        assert summary["lookups"] == 40
        # Shard caches are isolated: invalidating through one engine
        # leaves the other's entries alone.
        engines[0].invalidate_host("192.168.1.1")
        assert any(len(e) > 0 for e in engines[1:])
