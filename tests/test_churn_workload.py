"""The churn/soak workload: bounded state and a fail-closed error probe."""

from repro.workloads.churn import ChurnConfig, ChurnSoak, error_probe


class TestChurnSoak:
    def test_soak_keeps_state_bounded_and_drains(self):
        # A scaled-down soak (same rates as the 100k benchmark run).
        report = ChurnSoak(ChurnConfig(flows=8_000, working_set=128)).run()
        assert report.bounded(2.0), report.violations
        # Steady state is bounded *and* the drain sweep reclaims everything.
        assert report.final_cache_entries == 0
        assert report.final_state_entries == 0
        assert report.final_table_entries == 0
        assert report.cache_expirations == report.flows
        assert report.sweeps > 0

    def test_without_sweeps_state_grows_unbounded(self):
        # Sanity check that the bound is meaningful: with in-run sweeping
        # disabled the flow tables accumulate every install ever made
        # (the decision cache still self-drains at store time, which is
        # why its own bound holds regardless of the lifecycle service).
        config = ChurnConfig(flows=4_000, working_set=128, sweep_interval=1e9)
        report = ChurnSoak(config).run()
        # Peaks are sampled per arrival (before the final partial-batch
        # flush), so allow one batch of slack.
        assert report.peak_table_entries >= 2 * (config.flows - config.batch_size)
        # Far beyond the 2x envelope a swept run stays inside.
        swept_expectation = 2 * config.arrival_rate * (config.idle_timeout + 0.5)
        assert report.peak_table_entries > 2 * swept_expectation

    def test_report_dict_is_json_shaped(self):
        import json

        report = ChurnSoak(ChurnConfig(flows=500, working_set=64)).run()
        payload = report.as_dict()
        json.dumps(payload)  # must be serialisable for BENCH_results.json
        assert payload["flows"] == 500
        assert "bounded_within_2x" in payload

    def test_flows_are_unique_and_deterministic(self):
        flows = [ChurnSoak._flow(i) for i in range(2_000)]
        assert len({f.as_tuple() for f in flows}) == len(flows)
        assert ChurnSoak._flow(42) == ChurnSoak._flow(42)


class TestErrorProbe:
    def test_pferror_flow_fails_closed(self):
        probe = error_probe()
        assert probe["healthy_flow_delivered"]
        assert not probe["error_flow_delivered"]
        assert probe["error_flow_audited"]
        assert probe["pending_after"] == 0
        assert probe["buffered_after"] == 0
        assert probe["failed_closed"]
