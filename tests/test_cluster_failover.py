"""Tests for heartbeat failure detection, re-homing and re-punting."""

import pytest

from repro.cluster.cluster import identity_key
from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPClusterNetwork, IdentPPNetwork
from repro.exceptions import SimulationError
from repro.identpp.flowspec import FlowSpec
from repro.workloads.invariants import (
    check_bounded_state,
    check_zero_loss,
    network_audit_records,
    network_flow_state,
)


def assert_zero_loss(net, flows):
    """Assert the shared zero-loss invariant over a finished cluster run."""
    state = network_flow_state(net)
    result = check_zero_loss(
        flows,
        network_audit_records(net),
        pending=state["pending"],
        buffered=state["buffered"],
    )
    assert result.passed, result.violations

POLICY = {
    "00-default.control": (
        "block all\n"
        "pass from any to any port 80 keep state\n"
    ),
}


def build_network(shards=4, **kwargs):
    kwargs.setdefault("heartbeat_interval", 0.05)
    kwargs.setdefault("miss_threshold", 2)
    net = IdentPPClusterNetwork("failover-test", shards=shards,
                                policy_default_action="block", **kwargs)
    sw = net.add_switch("sw")
    net.add_host(
        HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users", "staff")}),
        switch=sw,
    )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=sw)
    server.run_server("httpd", "root", 80)
    net.set_policy(POLICY)
    return net


def punt_one_flow(net):
    """Open one flow and run just far enough that its punt is pending."""
    client = net.host("client")
    packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
    flow = FlowSpec.from_packet(packet)
    owner = net.cluster.shard_map.owner(flow)
    net.run(0.0005)  # punt delivered, queries in flight, decision not yet made
    return flow, owner


class TestFailover:
    def test_kill_mid_punt_repunts_to_successor_without_leaking_pending(self):
        net = build_network()
        flow, owner = punt_one_flow(net)
        assert net.cluster.replicas[owner].pending_flows() == [flow]

        net.start_monitoring()
        net.cluster.kill(owner)
        net.run(1.0)
        net.stop_monitoring()
        net.run()

        successor = net.cluster.shard_map.owner(flow)
        assert successor != owner
        records = net.cluster.replicas[successor].audit.records()
        assert [r.action for r in records] == ["pass"]
        assert len(net.host("server").delivered) == 1
        # No pending entry survives anywhere — not even on the corpse —
        # and the flow was decided exactly once across the kill.
        assert_zero_loss(net, [flow])
        assert net.cluster.failovers == 1
        assert net.cluster.repunted_flows == 1
        assert net.cluster.replicas[successor].repunts_adopted == 1

    def test_new_punts_rehome_immediately_after_kill(self):
        # The dead shard's channels drop with it, so punts arriving before
        # the monitor even notices go straight to the successor.
        net = build_network()
        client = net.host("client")
        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80, send=False)
        flow = FlowSpec.from_packet(packet)
        owner = net.cluster.shard_map.owner(flow)
        net.cluster.kill(owner)

        client.transmit(packet)
        net.run(1.0)
        assert len(net.host("server").delivered) == 1
        assert net.cluster.replicas[owner].audit.records() == []
        successor = net.cluster.shard_map.successor(flow, owner)
        assert len(net.cluster.replicas[successor].audit.records()) == 1
        # No failover ran: the shard router alone re-homed the punt.
        assert net.cluster.failovers == 0

    def test_halted_inbox_messages_are_repunted(self):
        # halt() without a channel disconnect models a hung process whose
        # socket still accepts: queued punts drain to the successor.
        net = build_network()
        client = net.host("client")
        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80, send=False)
        flow = FlowSpec.from_packet(packet)
        owner = net.cluster.shard_map.owner(flow)
        net.cluster.replica(owner).halt()

        client.transmit(packet)
        net.run(0.01)
        assert len(net.cluster.replica(owner)._halted_inbox) == 1

        net.cluster.fail_over(owner)
        net.run()
        successor = net.cluster.shard_map.owner(flow)
        assert len(net.cluster.replicas[successor].audit.records()) == 1
        assert_zero_loss(net, [flow])

    def test_restore_returns_the_shard_to_the_ring(self):
        net = build_network()
        flow, owner = punt_one_flow(net)
        net.start_monitoring()
        net.cluster.kill(owner)
        net.run(1.0)
        net.stop_monitoring()
        assert not net.cluster.shard_map.is_live(owner)

        net.cluster.restore(owner)
        assert net.cluster.shard_map.is_live(owner)
        assert not net.cluster.replicas[owner].halted
        # The original arc comes back: the flow maps to its old owner.
        assert net.cluster.shard_map.owner(flow) == owner

    def test_restore_before_detection_replays_the_halted_inbox(self):
        # Kill and restore within the detection window: punts that were
        # in flight when the process died sit in its socket backlog and
        # must be replayed on revival, not lost open-ended.
        net = build_network()
        client = net.host("client")
        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80, send=False)
        flow = FlowSpec.from_packet(packet)
        owner = net.cluster.shard_map.owner(flow)
        # Halt without dropping channels: the punt reaches the dead
        # process's socket (kill() would re-home it at the switch).
        net.cluster.replica(owner).halt()
        client.transmit(packet)
        net.run(0.01)
        assert len(net.cluster.replica(owner)._halted_inbox) == 1

        net.cluster.restore(owner)
        net.run()
        assert len(net.host("server").delivered) == 1
        assert net.cluster.replicas[owner].audit.records()[0].action == "pass"
        assert_zero_loss(net, [flow])

    def test_restore_after_swallowed_deadline_rearms_fail_closed(self):
        # The one-shot pending deadline fires into a halted controller
        # and is swallowed; revival must arm a fresh one so the flow
        # still fails closed instead of pending forever.
        net = build_network(
            controller_config=ControllerConfig(pending_deadline=0.2)
        )
        flow, owner = punt_one_flow(net)
        replica = net.cluster.replicas[owner]
        replica.halt()  # queries are out; the decision event dies with us
        net.run(1.0)  # the 0.2 s deadline fires and is swallowed
        assert replica.pending_flows() == [flow]

        net.cluster.restore(owner)
        net.run(1.0)
        assert replica.pending_flows() == []
        assert replica.pending_expired == 1
        assert [r.rule_origin for r in replica.audit.records()] == ["error"]
        assert net.switches["sw"].buffered_count() == 0

    def test_monitor_does_not_fire_on_healthy_shards(self):
        net = build_network()
        net.start_monitoring()
        net.run(1.0)
        net.stop_monitoring()
        assert net.cluster.failovers == 0
        assert net.cluster.monitor.ticks >= 10
        assert net.cluster.monitor.stats()["suspected"] == {}

    def test_monitor_requires_arming_before_detection(self):
        net = build_network()
        flow, owner = punt_one_flow(net)
        net.cluster.kill(owner)
        net.run(1.0)
        # Without the monitor nothing re-punts; the flow stays frozen in
        # the dead replica (the deadline cannot fire on a corpse).
        assert net.cluster.failovers == 0
        assert net.cluster.replicas[owner].pending_flows() == [flow]

    def test_repunted_flow_keeps_fail_closed_backstop(self):
        # The successor arms its own pending deadline for adopted flows:
        # a flow lost twice still ends as an audited drop.
        net = build_network()
        flow, owner = punt_one_flow(net)
        successor = net.cluster.shard_map.successor(flow, owner)
        net.start_monitoring()
        net.cluster.kill(owner)
        net.run(0.5)
        assert net.cluster.repunted_flows == 1
        deadline_events = net.cluster.replicas[successor]._pending_deadline_events
        if net.cluster.replicas[successor].pending_flows():
            assert flow in deadline_events
        net.stop_monitoring()
        net.run()
        assert net.cluster.pending_total() == 0

    def test_losing_every_shard_does_not_wedge_the_simulation(self):
        # With nobody left to adopt flows, the monitor must keep the
        # last corpse suspected instead of raising mid-simulation.
        net = build_network(shards=2)
        flow, owner = punt_one_flow(net)
        net.start_monitoring()
        for shard in net.cluster.shard_map.shards():
            net.cluster.kill(shard)
        net.run(1.0)  # must not raise
        net.stop_monitoring()
        # The first corpse failed over (its peer still looked live); the
        # second is kept suspected because nobody is left to adopt.
        assert net.cluster.failovers == 1
        assert len(net.cluster.shard_map.live_shards()) == 1
        # New punts now follow the switch fail_mode (fail-secure drop).
        result = net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        assert not result.delivered

    def test_fail_over_on_a_live_shard_kills_it_first(self):
        # A forced failover of a running replica must not let the
        # replica's in-flight decisions race the successor's adoptions
        # (duplicate decisions + duplicate flow entries).
        net = build_network()
        flow, owner = punt_one_flow(net)
        net.cluster.fail_over(owner)  # no kill, no halt beforehand
        assert net.cluster.replicas[owner].halted
        net.run()
        deciders = [
            name for name, c in net.cluster.replicas.items() if c.audit.records()
        ]
        assert len(deciders) == 1 and deciders[0] != owner
        assert net.cluster.pending_total() == 0

    def test_invalid_monitor_parameters_rejected(self):
        with pytest.raises(SimulationError):
            build_network(heartbeat_interval=0.0)
        with pytest.raises(SimulationError):
            build_network(miss_threshold=0)


class TestSerializedDecisionLoop:
    def test_stale_decision_cannot_override_a_fail_closed_flow(self):
        # Three simultaneous punts queue behind a 0.5 s serial decision
        # loop with a 0.6 s pending deadline: flows 2 and 3 fail closed
        # at the deadline, and their (still-queued) decision events must
        # be discarded — not override the block with a late pass.
        net = IdentPPNetwork(
            "serialized",
            policy_default_action="block",
            controller_config=ControllerConfig(
                serialize_decisions=True,
                policy_eval_delay=0.5,
                pending_deadline=0.6,
            ),
        )
        sw = net.add_switch("sw")
        net.add_host(
            HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users",)}),
            switch=sw,
        )
        server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=sw)
        server.run_server("httpd", "root", 80)
        net.set_policy({"00.control": "block all\npass from any to any port 80 keep state\n"})

        client = net.host("client")
        flows = []
        for _ in range(3):
            packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
            flows.append(FlowSpec.from_packet(packet))
        net.run()

        by_flow = {
            flow: [r.rule_origin for r in net.controller.audit.records() if r.flow == flow]
            for flow in flows
        }
        assert by_flow[flows[0]] == ["00.control"]  # decided before the deadline
        for late in flows[1:]:
            assert by_flow[late] == ["error"]  # failed closed, never re-decided
        assert net.controller.pending_expired == 2
        assert len(server.delivered) == 1
        assert sw.buffered_count() == 0
        assert not net.controller._pending

    def test_stale_decision_cannot_answer_a_repunt_of_the_same_flow(self):
        # A burst backlog pushes flow F's decision event past F's
        # pending deadline: F fails closed, then punts again while the
        # stale event is still queued.  The re-punt is a new pending
        # generation — the stale event (old query outcomes) must not
        # resolve it; only its own fresh pipeline may.
        net = IdentPPNetwork(
            "repunt",
            policy_default_action="block",
            controller_config=ControllerConfig(
                serialize_decisions=True,
                policy_eval_delay=0.05,
                pending_deadline=0.3,
            ),
        )
        sw = net.add_switch("sw")
        net.add_host(
            HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users",)}),
            switch=sw,
        )
        server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=sw)
        server.run_server("httpd", "root", 80)
        net.set_policy({"00.control": "block all\npass from any to any port 80 keep state\n"})

        client = net.host("client")
        for _ in range(8):  # backlog: 8 x 0.05 s of queued service
            client.open_flow("http", "alice", "192.168.1.1", 80)
        packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
        flow = FlowSpec.from_packet(packet)
        # F's slot ends ~t=0.45 > deadline 0.3, so F fails closed at
        # ~0.3.  Re-punt F at t=0.35 — after the fail-close, before the
        # stale event fires (injected at the controller; the datapath
        # drop entry would otherwise swallow it).  The fresh decision
        # lands ~t=0.5, inside the new generation's 0.65 deadline.
        from repro.openflow.messages import PacketIn

        net.topology.sim.schedule_at(
            0.35,
            net.controller.handle_message,
            PacketIn(switch=sw, packet=packet, in_port=1),
        )
        net.run()

        origins = [
            r.rule_origin for r in net.controller.audit.records() if r.flow == flow
        ]
        # One fail-close, then exactly one fresh decision — the stale
        # event decided nothing.
        assert origins == ["error", "00.control"]
        decided = [r for r in net.controller.audit.records() if r.flow == flow][-1]
        # The fresh pipeline completed after the re-punt, not at the
        # stale event's slot.
        assert decided.time > 0.35
        assert not net.controller._pending


class TestPushSubscriptionRehoming:
    """Killing a subscribed shard re-homes its push subscriptions."""

    SERVER_IP = "192.168.1.1"

    def _build(self):
        # One punt promotes: every shard that decides a flow to the
        # server registers standing interest on its first punt.  The
        # lifecycle sweeper is on so idle demotion actually runs.
        return build_network(
            controller_config=ControllerConfig(
                identity_plane="push",
                push_promote_punts=1,
                query_cache_ttl=2.0,
                lifecycle_interval=0.25,
                # Longer than the scripted timeline (the probe decides
                # at ~t=2.0), shorter than forever: the final drain
                # still demotes everything.
                push_idle_demote=3.0,
            )
        )

    def _httpd_process(self, net):
        server = net.host("server")
        return next(
            socket.process
            for socket in server.sockets.sockets()
            if socket.is_listening and socket.local_port == 80
        )

    def _subscribed_shards(self, net):
        return [
            name
            for name, controller in net.cluster.replicas.items()
            if controller.query_engine.is_subscribed(self.SERVER_IP)
        ]

    def test_kill_mid_delta_stream_rehomes_without_lost_or_duplicate_deltas(self):
        net = self._build()
        client = net.host("client")
        daemon = net.daemon("server")
        flows = []
        for _ in range(4):
            packet, _, _ = client.open_flow("http", "alice", self.SERVER_IP, 80)
            flows.append(FlowSpec.from_packet(packet))
        net.run(0.5)

        subscribed = self._subscribed_shards(net)
        assert subscribed, "no shard promoted the hot server"
        assert daemon.subscriber_count() == len(subscribed)
        victim = subscribed[0]

        # A stream of runtime deltas brackets the kill: two land before
        # the shard dies, two land after the monitor's failover.
        sim = net.topology.sim
        httpd = self._httpd_process(net)
        for offset in (0.05, 0.1, 0.5, 0.7):
            sim.schedule_at(
                sim.now + offset,
                daemon.runtime.publish_for_process,
                httpd,
                {"rev": f"r{offset}"},
                label="test.delta_stream",
            )
        net.start_monitoring()
        sim.schedule_at(sim.now + 0.2, net.cluster.kill, victim, label="test.kill")
        net.run(1.0)
        net.stop_monitoring()
        net.run(0.5)

        successor = net.cluster.shard_map.owner_of_key(identity_key(self.SERVER_IP))
        assert successor != victim
        engine = net.cluster.replicas[successor].query_engine
        assert engine.is_subscribed(self.SERVER_IP)
        assert engine.subscriptions_adopted >= 1
        # No lost deltas: the adopted subscription's serial caught up
        # with everything the daemon published, including the deltas
        # that landed after the kill.
        assert engine._subs[self.SERVER_IP].serial == daemon.delta_serial
        # No duplicate deltas were applied anywhere in the cluster.
        for controller in net.cluster.replicas.values():
            assert controller.query_engine.duplicate_deltas == 0
        # The corpse is fully torn down daemon-side: only live
        # subscribers still hold delta sinks.
        assert net.cluster.replicas[victim].query_engine.subscription_count() == 0
        live_subscribed = self._subscribed_shards(net)
        assert victim not in live_subscribed
        assert daemon.subscriber_count() == len(live_subscribed)
        # The re-home was committed to the replay log.
        kinds = [r.kind for r in net.cluster.coordinator.audit_trail()]
        assert "subscription_rehome" in kinds

        # The successor is resident: a re-punted flow it owns decides
        # without a single new query to the server's daemon.
        answered_before = int(daemon.queries_answered.value)
        probe = None
        for _ in range(64):
            packet, _, _ = client.open_flow(
                "http", "alice", self.SERVER_IP, 80, send=False
            )
            flow = FlowSpec.from_packet(packet)
            if net.cluster.shard_map.owner(flow) == successor:
                probe = (packet, flow)
                break
        assert probe is not None, "no probe flow hashed to the successor"
        client.transmit(probe[0])
        net.run(0.5)
        flows.append(probe[1])
        assert int(daemon.queries_answered.value) == answered_before
        probe_records = [
            r for r in net.cluster.replicas[successor].audit.records()
            if r.flow == probe[1]
        ]
        assert [r.action for r in probe_records] == ["pass"]

        # Shared invariants: the subscription table stays bounded by the
        # shard count while running...
        state = network_flow_state(net)
        bounded = check_bounded_state(
            {"subscriptions": state["subscriptions"]},
            {"subscriptions": float(len(net.cluster.replicas))},
        )
        assert bounded.passed, bounded.violations
        # ...and the idle sweeper drains it completely: no engine keeps
        # a subscription and the daemon holds no stale sink (the
        # stale-subscription leak check, across a failover).
        net.run()
        assert daemon.subscriber_count() == 0
        for controller in net.cluster.replicas.values():
            assert controller.query_engine.subscription_count() == 0
        assert_zero_loss(net, flows)

    def test_fresh_adoption_installs_resident_entries_without_requery(self):
        # Quiet daemon across the kill: serials match at adoption, so
        # the exported resident answers install verbatim and the
        # successor never re-queries the daemon for them.
        net = self._build()
        client = net.host("client")
        daemon = net.daemon("server")
        flows = []
        for _ in range(4):
            packet, _, _ = client.open_flow("http", "alice", self.SERVER_IP, 80)
            flows.append(FlowSpec.from_packet(packet))
        net.run(0.5)

        subscribed = self._subscribed_shards(net)
        assert subscribed
        victim = subscribed[0]
        victim_engine = net.cluster.replicas[victim].query_engine
        exported_serial = victim_engine._subs[self.SERVER_IP].serial
        answered_before = int(daemon.queries_answered.value)

        net.start_monitoring()
        net.cluster.kill(victim)
        net.run(1.0)
        net.stop_monitoring()
        net.run(0.5)

        successor = net.cluster.shard_map.owner_of_key(identity_key(self.SERVER_IP))
        engine = net.cluster.replicas[successor].query_engine
        assert engine.is_subscribed(self.SERVER_IP)
        assert engine._subs[self.SERVER_IP].serial == exported_serial
        assert engine.adoptions_stale == 0
        # Adoption was free: no refresh round-trips hit the daemon.
        assert int(daemon.queries_answered.value) == answered_before
        net.run()
        assert_zero_loss(net, flows)
