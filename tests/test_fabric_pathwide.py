"""Tests for the path-wide enforcement fabric.

Covers the netsim fabric builders (spine-leaf, fat-tree), the
deterministic path tie-break and topology edge cases, multi-hop flow
install with exactly one punt, drop-at-first-hop denials,
FlowRemoved-driven path unwinding, the failed-switch fail-closed
semantics, and the cluster's re-homing of path-install state across a
shard failover.
"""

import pytest

from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPClusterNetwork, IdentPPNetwork
from repro.exceptions import TopologyError
from repro.netsim.fabrics import build_fat_tree, build_spine_leaf
from repro.netsim.nodes import Node
from repro.netsim.topology import Topology
from repro.openflow.switch import OpenFlowSwitch

POLICY = {"00-fabric.control": "block all\npass from any to any port 80 keep state\n"}


def fabric_network(*, spines=2, leaves=4, clients=2, **net_kwargs):
    """A spine-leaf network: clients on leaf0.., server on the last leaf."""
    net = IdentPPNetwork(
        "fabric-test",
        policy_default_action="block",
        **net_kwargs,
    )
    fabric = net.add_spine_leaf_fabric(spines=spines, leaves=leaves)
    for index in range(clients):
        net.add_host(
            HostSpec(
                name=f"client{index}",
                ip=f"192.168.0.{10 + index}",
                users={"alice": ("users", "staff")},
            ),
            switch=fabric.leaves[index % (leaves - 1)],
        )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=fabric.leaves[-1])
    server.run_server("httpd", "root", 80)
    net.set_policy(POLICY)
    return net, fabric


def entries_with_cookie(net, cookie):
    """Map switch name -> entries carrying ``cookie`` (only non-empty)."""
    found = {}
    for name, switch in net.switches.items():
        entries = switch.flow_table.find(lambda e: e.cookie == cookie)
        if entries:
            found[name] = entries
    return found


class TestFabricBuilders:
    def test_spine_leaf_shape(self):
        fabric = build_spine_leaf(Node, spines=2, leaves=4)
        assert [n.name for n in fabric.spines] == ["fabric-spine0", "fabric-spine1"]
        assert len(fabric.leaves) == 4
        assert fabric.topology.link_count() == 2 * 4
        assert len(fabric.switches()) == 6

    def test_spine_leaf_paths_are_three_switches(self):
        fabric = build_spine_leaf(Node, spines=3, leaves=4)
        path = fabric.topology.shortest_path("fabric-leaf0", "fabric-leaf3")
        assert len(path) == 3
        assert path[1] in fabric.spines

    def test_spine_leaf_validation(self):
        with pytest.raises(TopologyError):
            build_spine_leaf(Node, spines=0, leaves=4)
        with pytest.raises(TopologyError):
            build_spine_leaf(Node, spines=2, leaves=1)

    def test_spine_leaf_grows_existing_topology(self):
        topo = Topology("mine")
        fabric = build_spine_leaf(Node, spines=1, leaves=2, topology=topo)
        assert fabric.topology is topo
        assert topo.has_node("fabric-spine0")

    def test_fat_tree_shape(self):
        fabric = build_fat_tree(Node, k=4)
        assert len(fabric.cores) == 4
        assert len(fabric.aggregations) == 8
        assert len(fabric.edges) == 8
        # k=4: 8 edge-agg links per pod pair-wiring (2x2 per pod * 4 pods)
        # plus 2 core links per agg * 8 aggs.
        assert fabric.topology.link_count() == 4 * (2 * 2) + 8 * 2
        assert len(fabric.pod_edges(0)) == 2
        with pytest.raises(TopologyError):
            fabric.pod_edges(4)

    def test_fat_tree_cross_pod_path_is_five_switches(self):
        fabric = build_fat_tree(Node, k=4)
        path = fabric.topology.shortest_path(
            fabric.pod_edges(0)[0], fabric.pod_edges(3)[1]
        )
        assert len(path) == 5
        assert path[2] in fabric.cores

    def test_fat_tree_k_must_be_even(self):
        with pytest.raises(TopologyError):
            build_fat_tree(Node, k=3)
        with pytest.raises(TopologyError):
            build_fat_tree(Node, k=0)


class TestTopologyPathEdgeCases:
    def test_disconnected_nodes_raise_and_report_unconnected(self):
        topo = Topology()
        topo.add_node(Node("island-a"))
        topo.add_node(Node("island-b"))
        with pytest.raises(TopologyError):
            topo.shortest_path("island-a", "island-b")
        with pytest.raises(TopologyError):
            topo.path_latency("island-a", "island-b")
        assert not topo.connected("island-a", "island-b")

    def test_self_path_is_single_node(self):
        topo = Topology()
        node = topo.add_node(Node("a"))
        path = topo.shortest_path(node, node)
        assert [n.name for n in path] == ["a"]
        assert topo.path_latency(node, node) == 0.0
        assert topo.connected(node, node)

    def test_unknown_node_raises(self):
        topo = Topology()
        topo.add_node(Node("a"))
        with pytest.raises(TopologyError):
            topo.shortest_path("a", "ghost")

    def test_equal_latency_ties_break_lexicographically(self):
        # a - {mid-b, mid-z} - d: two equal-cost paths; the tie must
        # break on the smaller middle name, deterministically.
        topo = Topology()
        for name in ("a", "mid-z", "mid-b", "d"):
            topo.add_node(Node(name))
        for mid in ("mid-z", "mid-b"):
            topo.add_link("a", mid, latency=1e-3)
            topo.add_link(mid, "d", latency=1e-3)
        first = [n.name for n in topo.shortest_path("a", "d")]
        assert first == ["a", "mid-b", "d"]
        for _ in range(5):
            assert [n.name for n in topo.shortest_path("a", "d")] == first

    def test_fewer_hops_beat_name_order_on_equal_latency(self):
        # a-b-d (2 hops, 2ms) vs a-aa-ab-d (3 hops, 2ms total): the
        # shorter hop count wins even though "aa" sorts before "b".
        topo = Topology()
        for name in ("a", "b", "aa", "ab", "d"):
            topo.add_node(Node(name))
        topo.add_link("a", "b", latency=1e-3)
        topo.add_link("b", "d", latency=1e-3)
        topo.add_link("a", "aa", latency=0.5e-3)
        topo.add_link("aa", "ab", latency=0.5e-3)
        topo.add_link("ab", "d", latency=1e-3)
        assert [n.name for n in topo.shortest_path("a", "d")] == ["a", "b", "d"]

    def test_path_cache_invalidated_by_new_link(self):
        topo = Topology()
        for name in ("a", "b", "c"):
            topo.add_node(Node(name))
        topo.add_link("a", "b", latency=1e-3)
        topo.add_link("b", "c", latency=1e-3)
        assert len(topo.shortest_path("a", "c")) == 3
        # A direct cheap link must displace the cached two-hop path.
        topo.add_link("a", "c", latency=0.1e-3)
        assert [n.name for n in topo.shortest_path("a", "c")] == ["a", "c"]

    def test_egress_port_toward_each_neighbour(self):
        fabric = build_spine_leaf(Node, spines=2, leaves=2)
        leaf = fabric.leaves[0]
        ports = {
            fabric.topology.egress_port(leaf, spine).number
            for spine in fabric.spines
        }
        assert len(ports) == 2  # distinct ports per uplink
        with pytest.raises(TopologyError):
            fabric.topology.egress_port(leaf, fabric.leaves[1])  # not adjacent


class TestPathWideInstall:
    def test_approved_flow_installs_every_hop_with_one_punt(self):
        net, fabric = fabric_network()
        result = net.send_flow("client0", "http", "alice", "192.168.1.1", 80)
        assert result.delivered and result.decision_action == "pass"
        assert sum(int(s.punts.value) for s in net.switches.values()) == 1
        record = net.controller.audit.records()[-1]
        hops = entries_with_cookie(net, record.cookie)
        assert set(hops) == {"fabric-leaf0", "fabric-spine0", "fabric-leaf3"}
        # keep state: forward and reverse entries on every hop.
        assert all(len(entries) == 2 for entries in hops.values())
        assert net.controller.path_install_count() == 1

    def test_denial_drops_at_first_hop_only(self):
        net, fabric = fabric_network()
        result = net.send_flow("client0", "telnet", "alice", "192.168.1.1", 23)
        assert not result.delivered and result.decision_action == "block"
        record = net.controller.audit.records()[-1]
        hops = entries_with_cookie(net, record.cookie)
        assert set(hops) == {"fabric-leaf0"}
        # Denials are single-hop: nothing to unwind, nothing registered.
        assert net.controller.path_install_count() == 0

    def test_flow_removed_on_one_hop_unwinds_the_path(self):
        net, fabric = fabric_network()
        net.send_flow("client0", "http", "alice", "192.168.1.1", 80)
        cookie = net.controller.audit.records()[-1].cookie
        sim = net.topology.sim
        sim.schedule_at(sim.now + net.controller.config.idle_timeout + 1.0, lambda: None)
        net.run()
        # Only the egress leaf sweeps; the unwind must clear the others.
        assert fabric.leaves[3].sweep_expired(sim.now) > 0
        net.run()
        assert entries_with_cookie(net, cookie) == {}
        assert net.controller.path_unwinds == 1
        assert net.controller.path_install_count() == 0

    def test_unwind_spares_unrelated_flows(self):
        net, fabric = fabric_network(clients=2)
        net.send_flow("client0", "http", "alice", "192.168.1.1", 80)
        first = net.controller.audit.records()[-1].cookie
        # Let the first flow go idle, then open a second one that shares
        # the spine hop; the sweep expires only the idle flow's entries.
        sim = net.topology.sim
        sim.schedule_at(sim.now + net.controller.config.idle_timeout + 1.0, lambda: None)
        net.run()
        net.send_flow("client1", "http", "alice", "192.168.1.1", 80)
        second = net.controller.audit.records()[-1].cookie
        assert first != second
        fabric.spines[0].sweep_expired(sim.now)
        net.run()
        # The idle flow is unwound everywhere; the fresh flow keeps its
        # full path — the cookie-scoped delete touched nothing else.
        assert entries_with_cookie(net, first) == {}
        assert len(entries_with_cookie(net, second)) == 3
        assert net.controller.path_unwinds == 1
        assert net.controller.path_install_count() == 1

    def test_unwind_covers_surviving_entries_on_the_reporting_switch(self):
        # Refresh only the forward direction, let the reverse entries
        # idle out: the reporting switch's surviving forward entry must
        # die in the unwind too (path state lives and dies as a unit).
        net, fabric = fabric_network()
        client = net.host("client0")
        _, socket, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        cookie = net.controller.audit.records()[-1].cookie
        sim = net.topology.sim
        idle = net.controller.config.idle_timeout
        sim.schedule_at(sim.now + 0.7 * idle, lambda: client.send_on_socket(socket))
        net.run()
        sim.schedule_at(sim.now + 0.5 * idle, lambda: None)
        net.run()
        assert fabric.leaves[0].sweep_expired(sim.now) >= 1  # reverse expired
        net.run()
        assert entries_with_cookie(net, cookie) == {}
        assert net.controller.path_unwinds == 1

    def test_cached_block_installs_drop_at_repeat_punting_switch(self):
        net, fabric = fabric_network()
        client = net.host("client0")
        packet, _, _ = client.open_flow("telnet", "alice", "192.168.1.1", 23)
        net.run()
        record = net.controller.audit.records()[-1]
        assert record.action == "block"
        assert set(entries_with_cookie(net, record.cookie)) == {"fabric-leaf0"}
        # The same packet surfacing at an off-path switch (flooded there
        # by a fail-open neighbour, say) punts once, hits the cached
        # verdict, and earns that switch its own drop entry.
        spine = fabric.spines[0]
        spine.receive(packet.copy(), spine.port(1))
        net.run()
        assert "fabric-spine0" in entries_with_cookie(net, record.cookie)
        punts_before = int(spine.punts.value)
        spine.receive(packet.copy(), spine.port(1))
        net.run()
        assert int(spine.punts.value) == punts_before  # now a table hit

    def test_capacity_eviction_on_one_hop_unwinds_the_path(self):
        net, fabric = fabric_network(clients=2)
        net.send_flow("client0", "http", "alice", "192.168.1.1", 80)
        first = net.controller.audit.records()[-1].cookie
        # Squeeze the ingress leaf: the next install evicts the LRU
        # entries, which must notify the controller like a timeout would.
        net.switches["fabric-leaf0"].flow_table.capacity = 2
        net.send_flow("client0", "http", "alice", "192.168.1.1", 80)
        second = net.controller.audit.records()[-1].cookie
        assert first != second
        net.run()
        assert entries_with_cookie(net, first) == {}
        assert len(entries_with_cookie(net, second)) == 3
        assert net.controller.path_unwinds == 1

    def test_revocation_clears_path_registry(self):
        net, fabric = fabric_network()
        net.send_flow("client0", "http", "alice", "192.168.1.1", 80)
        cookie = net.controller.audit.records()[-1].cookie
        removed = net.controller.revoke_decision(cookie)
        assert removed >= 3
        assert net.controller.path_install_count() == 0
        assert entries_with_cookie(net, cookie) == {}


class TestFailedSwitch:
    def test_failed_switch_forwards_and_processes_nothing(self):
        net, fabric = fabric_network(spines=2, leaves=2, clients=1)
        client, server = net.host("client0"), net.host("server")
        _, socket, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        assert len(server.delivered) == 1
        path = net.topology.shortest_path(client, server)
        spine = next(n for n in path if isinstance(n, OpenFlowSwitch) and n in fabric.spines)
        spine.fail()
        entries_before = len(spine.flow_table)
        client.send_on_socket(socket)
        net.run()
        assert len(server.delivered) == 1  # fail closed
        assert spine.sweep_expired(1e9) == 0  # dead switches notify nobody
        assert len(spine.flow_table) == entries_before
        spine.recover()
        client.send_on_socket(socket)
        net.run()
        assert len(server.delivered) == 2

    def test_mid_path_failure_then_unwind_leaves_no_live_entries(self):
        net, fabric = fabric_network(spines=2, leaves=2, clients=1)
        client, server = net.host("client0"), net.host("server")
        client.open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        path = net.topology.shortest_path(client, server)
        spine = next(n for n in path if isinstance(n, OpenFlowSwitch) and n in fabric.spines)
        spine.fail()
        sim = net.topology.sim
        sim.schedule_at(sim.now + net.controller.config.idle_timeout + 1.0, lambda: None)
        net.run()
        fabric.leaves[0].sweep_expired(sim.now)
        net.run()
        live = {
            name: len(s.flow_table)
            for name, s in net.switches.items()
            if not s.failed and len(s.flow_table)
        }
        assert live == {}
        assert net.controller.path_unwinds == 1


class TestClusterFabric:
    def make_cluster_net(self, shards=2):
        net = IdentPPClusterNetwork(
            "fabric-cluster",
            shards=shards,
            policy_default_action="block",
            controller_config=ControllerConfig(pending_deadline=60.0),
        )
        fabric = net.add_spine_leaf_fabric(spines=2, leaves=2)
        net.add_host(
            HostSpec(
                name="client0", ip="192.168.0.10", users={"alice": ("users", "staff")}
            ),
            switch=fabric.leaves[0],
        )
        server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=fabric.leaves[1])
        server.run_server("httpd", "root", 80)
        net.set_policy(POLICY)
        return net, fabric

    def test_owning_shard_installs_full_path(self):
        net, fabric = self.make_cluster_net()
        net.host("client0").open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        records = [r for r in net.cluster.audit_records() if not r.cached]
        assert len(records) == 1
        record = records[0]
        owner = net.cluster.shard_map.owner(record.flow)
        assert record.cookie.startswith(owner + ":")
        hops = entries_with_cookie(net, record.cookie)
        assert len(hops) == 3
        assert net.cluster.replicas[owner].path_install_count() == 1

    def test_failover_rehomes_path_unwinding(self):
        net, fabric = self.make_cluster_net()
        net.host("client0").open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        record = [r for r in net.cluster.audit_records() if not r.cached][0]
        owner = net.cluster.shard_map.owner(record.flow)
        net.cluster.kill(owner)
        net.cluster.fail_over(owner)
        adopter = net.cluster._flow_removed_fallback()
        assert adopter is not None and adopter.name != owner
        assert adopter.path_install_count() == 1
        # An expiry on any hop now reaches the adopter, which unwinds.
        sim = net.topology.sim
        sim.schedule_at(sim.now + 61.0, lambda: None)
        net.run()
        fabric.leaves[0].sweep_expired(sim.now)
        net.run()
        assert entries_with_cookie(net, record.cookie) == {}
        assert adopter.path_unwinds == 1

    def test_total_outage_keeps_unwind_duty_on_the_corpse(self):
        net, fabric = self.make_cluster_net()
        net.host("client0").open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        record = [r for r in net.cluster.audit_records() if not r.cached][0]
        owner = net.cluster.shard_map.owner(record.flow)
        for shard in net.cluster.shard_map.shards():
            net.cluster.kill(shard)
        net.cluster.fail_over(owner)
        # Nobody could adopt: the registry must survive on the corpse.
        assert net.cluster.replicas[owner].path_install_count() == 1
        net.cluster.restore(owner)
        sim = net.topology.sim
        sim.schedule_at(sim.now + 61.0, lambda: None)
        net.run()
        fabric.leaves[0].sweep_expired(sim.now)
        net.run()
        assert entries_with_cookie(net, record.cookie) == {}
        assert net.cluster.replicas[owner].path_unwinds == 1

    def test_cluster_revocation_purges_adopted_path_registry(self):
        net, fabric = self.make_cluster_net()
        net.cluster.grant_delegation("secur", "beefcafe" * 8)
        net.host("client0").open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        record = [r for r in net.cluster.audit_records() if not r.cached][0]
        owner = net.cluster.shard_map.owner(record.flow)
        # Tie the decision to the grant (what _audit_decision does for
        # delegated rules), then re-home its unwind duty via failover.
        net.cluster.replicas[owner].delegations.record_use("secur", record.cookie)
        net.cluster.kill(owner)
        net.cluster.fail_over(owner)
        adopter = net.cluster._flow_removed_fallback()
        assert adopter.has_path_install(record.cookie)
        net.cluster.revoke_delegation("secur")
        # The revocation removed the entries silently everywhere; the
        # adopter's registry entry must not outlive them.
        assert not adopter.has_path_install(record.cookie)
        net.cluster.restore(owner)
        assert not net.cluster.replicas[owner].has_path_install(record.cookie)
        assert entries_with_cookie(net, record.cookie) == {}

    def test_restore_reclaims_path_installs(self):
        net, fabric = self.make_cluster_net()
        net.host("client0").open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        record = [r for r in net.cluster.audit_records() if not r.cached][0]
        owner = net.cluster.shard_map.owner(record.flow)
        net.cluster.kill(owner)
        net.cluster.fail_over(owner)
        net.cluster.restore(owner)
        restored = net.cluster.replicas[owner]
        assert restored.path_install_count() == 1
        others = sum(
            c.path_install_count()
            for name, c in net.cluster.replicas.items()
            if name != owner
        )
        assert others == 0
