"""Telemetry plane tests: statistics, pipeline, detectors, quarantine, e2e.

Four layers, tested bottom-up:

* the statistics primitives the plane samples with (Histogram edge
  cases + reservoir, RateCounter windows, registry snapshots);
* the pipeline (bounded ring series, virtual-time sampling that lets
  the event queue drain);
* each deviation detector against synthetic series, and the alert
  router's cooldown dedup;
* the quarantine path (controller, cache, coordinator replication) and
  the end-to-end claims: a conficker outbreak is detected and
  quarantined *by telemetry alone* — exactly one alert per infected
  host — while a clean enterprise workload raises zero alerts.
"""

import pytest

from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPClusterNetwork
from repro.netsim.events import Simulator
from repro.netsim.statistics import Histogram, RateCounter, StatsRegistry
from repro.telemetry import (
    AlertRouter,
    CollapseDetector,
    Deviation,
    DeviationMonitor,
    GapDetector,
    GrowthDetector,
    KIND_QUARANTINE,
    MetricsPipeline,
    SpikeDetector,
    TimeSeries,
)
from repro.workloads.enterprise import build_enterprise_network
from repro.workloads.invariants import check_containment, network_deliveries
from repro.workloads.telemetry import (
    ConfickerTelemetryBench,
    ConfickerTelemetryConfig,
)


# ----------------------------------------------------------------------
# Statistics primitives
# ----------------------------------------------------------------------


class TestHistogramSmallN:
    def test_single_sample_every_percentile_is_that_sample(self):
        h = Histogram("one")
        h.observe(7.0)
        for pct in (0, 50, 90, 99, 100):
            assert h.percentile(pct) == 7.0

    def test_two_samples_nearest_rank_not_interpolated(self):
        h = Histogram("two")
        h.observe(10.0)
        h.observe(20.0)
        # Nearest-rank: p50 is the first order statistic, the tail
        # percentiles are the second — never an invented midpoint.
        assert h.percentile(50) == 10.0
        assert h.percentile(99) == 20.0
        assert h.percentile(100) == 20.0

    def test_three_samples_interpolate_again(self):
        h = Histogram("three")
        for value in (0.0, 10.0, 20.0):
            h.observe(value)
        assert h.percentile(50) == 10.0
        assert h.percentile(25) == 5.0


class TestHistogramReservoir:
    def test_memory_is_bounded_and_exact_stats_survive(self):
        h = Histogram("bounded", reservoir=64)
        for i in range(10_000):
            h.observe(float(i))
        assert len(h._samples) <= 64
        assert h.count == 10_000
        assert h.minimum == 0.0
        assert h.maximum == 9_999.0
        assert h.mean == pytest.approx(4_999.5)

    def test_reservoir_percentiles_are_deterministic_per_name(self):
        def run():
            h = Histogram("det", reservoir=32)
            for i in range(5_000):
                h.observe(float(i % 997))
            return [h.percentile(p) for p in (50, 90, 99)]

        assert run() == run()

    def test_reservoir_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram("bad", reservoir=0)


class TestRateCounter:
    def test_rate_counts_only_the_window(self):
        rc = RateCounter("rc", 1.0)
        rc.record(0.1)
        rc.record(0.2)
        rc.record(1.5)
        assert rc.total == 3
        # At t=2.0 only the t=1.5 event is inside the 1 s window.
        assert rc.rate(2.0) == pytest.approx(1.0)

    def test_observe_total_first_observation_seeds_silently(self):
        rc = RateCounter("seed", 1.0)
        rc.observe_total(0.0, 100.0)
        assert rc.rate(0.5) == 0.0
        rc.observe_total(0.5, 106.0)
        assert rc.rate(0.5) == pytest.approx(6.0)

    def test_observe_total_clamps_negative_delta(self):
        rc = RateCounter("clamp", 1.0)
        rc.observe_total(0.0, 10.0)
        rc.observe_total(0.5, 4.0)  # counter reset upstream
        assert rc.rate(0.5) == 0.0

    def test_mean_rate_matches_total_over_span(self):
        rc = RateCounter("mean", 1.0)
        for t in (0.5, 1.0, 1.5, 2.0):
            rc.record(t)
        assert rc.mean_rate(2.0) == pytest.approx(2.0)
        assert rc.mean_rate(0.0) == 0.0


class TestRegistrySnapshot:
    def test_snapshot_with_now_reports_per_sec(self):
        reg = StatsRegistry()
        rc = reg.rate_counter("punts", window=1.0)
        rc.record(0.9)
        rc.record(1.0)
        snap = reg.snapshot(1.0)
        assert snap["punts"]["total"] == 2
        assert snap["punts"]["per_sec"] == pytest.approx(2.0)
        # Without a time there is no rate to quote.
        assert "per_sec" not in reg.snapshot()["punts"]


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------


class TestTimeSeries:
    def test_ring_buffer_drops_oldest(self):
        ts = TimeSeries("s", capacity=3)
        for i in range(5):
            ts.record(float(i), float(i * 10))
        assert len(ts) == 3
        assert ts.dropped == 2
        assert ts.values() == [20.0, 30.0, 40.0]
        assert ts.last() == (4.0, 40.0)
        assert ts.window(3.0) == [(3.0, 30.0), (4.0, 40.0)]


class TestMetricsPipeline:
    def test_duplicate_probe_name_rejected(self):
        pipe = MetricsPipeline("t")
        pipe.probe("a", lambda now: 1.0)
        with pytest.raises(ValueError):
            pipe.probe("a", lambda now: 2.0)

    def test_samples_on_virtual_time_and_queue_drains_after_stop(self):
        sim = Simulator()
        pipe = MetricsPipeline("t")
        ticks = []
        pipe.probe("clock", lambda now: ticks.append(now) or now)
        pipe.start(sim, 0.1)
        sim.schedule(0.55, pipe.stop)
        sim.run()  # must terminate: the sampler stops renewing itself
        assert ticks == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])
        assert pipe.series("clock").values() == pytest.approx(ticks)
        assert not pipe.running

    def test_updaters_run_before_probes(self):
        pipe = MetricsPipeline("t")
        state = {"v": 0.0}
        pipe.add_updater(lambda now: state.__setitem__("v", now * 2))
        pipe.probe("doubled", lambda now: state["v"])
        pipe.sample(3.0)
        assert pipe.series("doubled").last() == (3.0, 6.0)


# ----------------------------------------------------------------------
# Detectors
# ----------------------------------------------------------------------


def feed(detector, values, start=0.0, step=1.0):
    """Feed a synthetic series; return the deviations raised."""
    out = []
    for i, v in enumerate(values):
        d = detector.observe(start + i * step, v)
        if d is not None:
            out.append(d)
    return out


class TestSpikeDetector:
    def make(self, **kw):
        kw.setdefault("warmup", 5)
        kw.setdefault("min_streak", 2)
        return SpikeDetector("s", **kw)

    def test_fires_on_sustained_spike_after_streak(self):
        det = self.make()
        baseline = [10.0, 11.0, 9.0, 10.0, 10.0, 10.0]
        devs = feed(det, baseline + [100.0, 100.0, 100.0])
        assert len(devs) >= 1
        first = devs[0]
        assert first.kind == "spike"
        assert first.value == 100.0
        # Debounce: the first spike sample alone must not fire.
        assert first.time >= 7.0

    def test_warmup_suppresses_everything(self):
        det = self.make()
        assert feed(det, [100.0, 0.0, 100.0, 0.0]) == []

    def test_single_sample_blip_is_debounced(self):
        det = self.make()
        devs = feed(det, [10.0] * 6 + [100.0] + [10.0] * 4)
        assert devs == []

    def test_baseline_frozen_while_deviating(self):
        det = self.make()
        feed(det, [10.0] * 6 + [100.0] * 20)
        # The attack must not teach the detector that 100 is normal.
        assert det.baseline.mean < 20.0


class TestCollapseDetector:
    def test_fires_when_ratio_halves(self):
        det = CollapseDetector("hit", warmup=4, min_streak=2)
        devs = feed(det, [0.9, 0.9, 0.9, 0.9, 0.9, 0.1, 0.1])
        assert devs and devs[0].kind == "collapse"

    def test_silent_when_baseline_already_low(self):
        det = CollapseDetector("hit", warmup=4, min_streak=2, min_baseline=0.2)
        assert feed(det, [0.05] * 10 + [0.0] * 5) == []


class TestGrowthDetector:
    def test_fires_on_monotonic_growth(self):
        det = GrowthDetector("depth", warmup=4, min_streak=3, margin=2.0)
        devs = feed(det, [1.0, 1.0, 1.0, 1.0, 5.0, 8.0, 12.0, 17.0])
        assert devs and devs[0].kind == "growth"

    def test_plateau_does_not_fire(self):
        det = GrowthDetector("depth", warmup=4, min_streak=3, margin=2.0)
        assert feed(det, [1.0, 1.0, 1.0, 1.0, 8.0, 8.0, 8.0, 8.0, 8.0]) == []


class TestGapDetector:
    def test_fires_when_gap_exceeds_bound(self):
        det = GapDetector("hb", max_gap=0.2, min_streak=2)
        devs = feed(det, [0.0, 0.0, 0.0, 0.3, 0.4], step=0.1)
        assert devs and devs[0].kind == "gap"

    def test_bounded_gaps_are_silent(self):
        det = GapDetector("hb", max_gap=0.2, min_streak=2)
        assert feed(det, [0.0, 0.1, 0.15, 0.1, 0.0]) == []


class TestRouterCooldown:
    def test_same_kind_and_source_deduped_within_cooldown(self):
        router = AlertRouter(cooldown=1.0)
        dev = Deviation(time=0.0, kind="spike", series="s", value=9.0,
                        baseline=1.0, severity=3.0)
        router.on_deviation(dev)
        router.on_deviation(Deviation(time=0.5, kind="spike", series="s",
                                      value=9.0, baseline=1.0, severity=3.0))
        assert len(router.alerts("spike")) == 1
        assert router.suppressed == 1
        router.on_deviation(Deviation(time=2.0, kind="spike", series="s",
                                      value=9.0, baseline=1.0, severity=3.0))
        assert len(router.alerts("spike")) == 2

    def test_responders_receive_matching_kind(self):
        router = AlertRouter(cooldown=0.0)
        seen = []
        router.respond("spike", lambda alert, r: seen.append(alert.kind))
        router.on_deviation(Deviation(time=0.0, kind="spike", series="s",
                                      value=9.0, baseline=1.0, severity=3.0))
        router.on_deviation(Deviation(time=0.0, kind="gap", series="g",
                                      value=9.0, baseline=1.0, severity=3.0))
        assert seen == ["spike"]


# ----------------------------------------------------------------------
# Quarantine mechanics
# ----------------------------------------------------------------------


def _small_cluster(shards=2, clients=3):
    net = IdentPPClusterNetwork(
        "quarantine-test",
        shards=shards,
        policy_default_action="block",
        controller_config=ControllerConfig(query_cache_ttl=5.0),
    )
    edge = net.add_switch("sw-edge")
    core = net.add_switch("sw-core")
    net.connect(edge, core)
    for i in range(clients):
        net.add_host(
            HostSpec(name=f"h{i}", ip=f"192.168.0.{10 + i}",
                     users={"alice": ("users", "staff")}),
            switch=edge,
        )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=core)
    server.run_server("httpd", "root", 80)
    net.set_policy({
        "00-test.control": "block all\npass from any to any port 80 keep state\n",
    })
    return net


class TestQuarantineMechanics:
    def test_controller_quarantine_blocks_host_and_is_idempotent(self):
        net = _small_cluster(shards=1)
        assert net.send_flow("h0", "http", "alice", "192.168.1.1", 80).delivered
        controller = next(iter(net.controllers.values()))
        quarantined_at = net.topology.sim.now
        assert controller.quarantine_host("192.168.0.10") is True
        assert controller.quarantine_host("192.168.0.10") is False  # idempotent
        assert "192.168.0.10" in controller.summary()["quarantined_hosts"]
        net.run(0.5)  # let the wildcard drop flow-mods land
        result = net.send_flow("h0", "http", "alice", "192.168.1.1", 80)
        assert not result.delivered
        # Contained in the datapath: the wildcard drop eats the packet
        # before it ever punts, so no new decision is audited.
        assert result.decision_action is None
        assert net.send_flow("h1", "http", "alice", "192.168.1.1", 80).delivered
        # The shared containment invariant sees the same story: h0's
        # pre-quarantine delivery is expected, nothing lands after.
        containment = check_containment(
            network_deliveries(net), {"192.168.0.10": quarantined_at}
        )
        assert containment.passed, containment.violations
        assert containment.details["deliveries"] > 0

    def test_cookies_for_host_finds_both_directions(self):
        net = _small_cluster(shards=1)
        net.send_flow("h0", "http", "alice", "192.168.1.1", 80)
        controller = next(iter(net.controllers.values()))
        src_cookies = controller.cache.cookies_for_host("192.168.0.10")
        dst_cookies = controller.cache.cookies_for_host("192.168.1.1")
        assert src_cookies and src_cookies == dst_cookies
        assert controller.cache.cookies_for_host("10.9.9.9") == set()

    def test_coordinator_propagates_to_all_live_shards(self):
        net = _small_cluster(shards=2)
        net.send_flow("h0", "http", "alice", "192.168.1.1", 80)
        quarantined_at = net.topology.sim.now
        net.cluster.coordinator.quarantine_host("192.168.0.10")
        for controller in net.cluster.replicas.values():
            assert "192.168.0.10" in controller.quarantined_hosts
        # And the replicated quarantine actually contains the host.
        net.run(0.5)
        net.send_flow("h0", "http", "alice", "192.168.1.1", 80)
        containment = check_containment(
            network_deliveries(net), {"192.168.0.10": quarantined_at}
        )
        assert containment.passed, containment.violations

    def test_crashed_shard_learns_quarantine_on_resync(self):
        net = _small_cluster(shards=2)
        net.send_flow("h0", "http", "alice", "192.168.1.1", 80)
        victim = next(iter(net.cluster.replicas))
        net.cluster.kill(victim)
        net.cluster.coordinator.quarantine_host("192.168.0.10")
        assert "192.168.0.10" not in net.cluster.replicas[victim].quarantined_hosts
        net.cluster.restore(victim)
        assert "192.168.0.10" in net.cluster.replicas[victim].quarantined_hosts


# ----------------------------------------------------------------------
# End to end
# ----------------------------------------------------------------------


class TestEndToEnd:
    def test_conficker_outbreak_detected_by_telemetry_alone(self):
        config = ConfickerTelemetryConfig(clients=6, settle=1.0)
        report = ConfickerTelemetryBench(config).run()
        infected = set(report.infected_ips)
        assert set(report.quarantined) == infected
        # Exactly one quarantine alert per infected host, none else.
        assert set(report.quarantine_alerts) == infected
        assert all(n == 1 for n in report.quarantine_alerts.values())
        assert report.detection_latency <= 0.5
        assert report.clean_run_alerts == 0
        assert report.clean_run_quarantined == 0
        assert report.infected_contained and report.clean_unaffected
        assert report.detected, report.violations

    def test_clean_enterprise_workload_raises_no_alerts(self):
        built = build_enterprise_network()
        net = built.net
        plane = net.enable_telemetry(interval=0.05)
        plane.start()
        sim = net.topology.sim
        state = {"ticks": 0}
        clients = list(built.clients)

        def tick():
            state["ticks"] += 1
            name = clients[state["ticks"] % len(clients)]
            net.host(name).open_flow("http", "alice", "192.168.1.1", 80)
            return state["ticks"] < 40

        sim.schedule_repeating(0.05, tick, label="clean-traffic")
        net.run(3.0)
        plane.stop()
        net.run()
        assert plane.alerts() == []
        assert plane.quarantined == frozenset()
        assert plane.pipeline.samples > 0
