"""Tests for the PF+=2 lexer, parser, tables and rulesets."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import PFEvalError, PFLexError, PFParseError
from repro.pf.ast_nodes import (
    ACTION_BLOCK,
    ACTION_PASS,
    AddressLiteral,
    AnyAddress,
    DictAccess,
    Literal,
    MacroRef,
    TableRef,
)
from repro.pf.lexer import WORD, tokenize
from repro.pf.parser import parse_ruleset
from repro.pf.ruleset import RulesetLoader, build_ruleset
from repro.pf.tables import TableSet
from repro.workloads import paper_configs


class TestLexer:
    def test_words_and_punctuation(self):
        tokens = tokenize("pass from <lan> with eq(@src[name], skype)")
        kinds = [t.type for t in tokens]
        assert kinds[-1] == "EOF"
        words = [t.value for t in tokens if t.type == WORD]
        assert words == ["pass", "from", "lan", "with", "eq", "src", "name", "skype"]

    def test_comments_stripped(self):
        tokens = tokenize("pass all # allow everything\nblock all")
        words = [t.value for t in tokens if t.type == WORD]
        assert words == ["pass", "all", "block", "all"]

    def test_continuations_joined(self):
        tokens = tokenize("pass from any \\\n    to any")
        words = [t.value for t in tokens if t.type == WORD]
        assert words == ["pass", "from", "any", "to", "any"]

    def test_quoted_strings_keep_spaces(self):
        tokens = tokenize('allowed = "{ http ssh }"')
        assert tokens[2].type == "STRING"
        assert tokens[2].value == "{ http ssh }"

    def test_unterminated_string_rejected(self):
        with pytest.raises(PFLexError):
            tokenize('macro = "unterminated')

    def test_unexpected_character_rejected(self):
        with pytest.raises(PFLexError) as info:
            tokenize("pass from any ^ to any")
        assert info.value.line == 1

    def test_words_allow_dashes_dots_slashes(self):
        words = [t.value for t in tokenize("MS08-067 192.168.0.0/24 skype.com") if t.type == WORD]
        assert words == ["MS08-067", "192.168.0.0/24", "skype.com"]


class TestParserStatements:
    def test_table_definition(self):
        ruleset = parse_ruleset("table <int_hosts> { <lan> <server> 10.0.0.0/8 }")
        table = ruleset.tables()["int_hosts"]
        assert table.items == (TableRef("lan"), TableRef("server"), AddressLiteral("10.0.0.0/8"))

    def test_dict_definition(self):
        ruleset = parse_ruleset("dict <pubkeys> { research : abc123 admin : def456 }")
        assert ruleset.dicts()["pubkeys"].entries == {"research": "abc123", "admin": "def456"}

    def test_macro_definition(self):
        ruleset = parse_ruleset('approved = "{ http ssh }"')
        assert ruleset.macros() == {"approved": "{ http ssh }"}

    def test_rule_with_everything(self):
        text = ("pass quick from !<lan> port 80 with eq(@src[name], skype) "
                "to 10.0.0.0/8 port https with member(@dst[groupID], users) keep state")
        rule = parse_ruleset(text).rules()[0]
        assert rule.action == ACTION_PASS
        assert rule.quick and rule.keep_state
        assert rule.src.negated and rule.src.port == 80
        assert isinstance(rule.src.address, TableRef)
        assert isinstance(rule.dst.address, AddressLiteral)
        assert rule.dst.port == 443
        assert [c.name for c in rule.conditions] == ["eq", "member"]

    def test_block_all(self):
        rule = parse_ruleset("block all").rules()[0]
        assert rule.action == ACTION_BLOCK
        assert rule.src.is_any() and rule.dst.is_any()

    def test_multiple_rules_without_newlines(self):
        # requirements values arrive as one logical line
        ruleset = parse_ruleset(
            "block all pass all with eq(@src[name], research-app) with eq(@dst[name], research-app)"
        )
        rules = ruleset.rules()
        assert [r.action for r in rules] == [ACTION_BLOCK, ACTION_PASS]
        assert len(rules[1].conditions) == 2

    def test_function_argument_kinds(self):
        rule = parse_ruleset(
            'pass all with verify(@src[req-sig], $key, <servers>, literal, "quoted value", *@src[userID])'
        ).rules()[0]
        args = rule.conditions[0].args
        assert isinstance(args[0], DictAccess) and args[0].key == "req-sig"
        assert isinstance(args[1], MacroRef)
        assert args[2].name == "servers"
        assert isinstance(args[3], Literal) and not args[3].quoted
        assert isinstance(args[4], Literal) and args[4].quoted
        assert isinstance(args[5], DictAccess) and args[5].concatenated

    def test_named_ports(self):
        rule = parse_ruleset("pass from any port http to any port smtp").rules()[0]
        assert rule.src.port == 80 and rule.dst.port == 25

    def test_from_port_without_address(self):
        rule = parse_ruleset("pass from port http to any").rules()[0]
        assert isinstance(rule.src.address, AnyAddress)
        assert rule.src.port == 80

    @pytest.mark.parametrize("text", [
        "pass from <lan",                   # unterminated table ref
        "table <x> { 1.2.3.4",              # unterminated table
        "dict <k> { a }",                    # missing colon
        "pass from any port zzz to any",     # unknown service
        "pass from any port 99999 to any",   # port out of range
        "pass all with eq(@src[name], skype",  # unterminated call
        "frobnicate all",                    # unknown statement
        "= value",                           # missing macro name
    ])
    def test_malformed_rejected(self, text):
        with pytest.raises(PFParseError):
            parse_ruleset(text)

    def test_round_trip_through_str(self):
        text = "block all with eq(@src[name], skype) with lt(@src[version], 200)"
        rule = parse_ruleset(text).rules()[0]
        reparsed = parse_ruleset(str(rule)).rules()[0]
        assert str(reparsed) == str(rule)

    @given(st.sampled_from(["pass", "block"]), st.sampled_from(["", "quick "]),
           st.sampled_from(["all", "from any to any", "from <lan> to !<lan>"]),
           st.sampled_from(["", " keep state"]))
    def test_property_simple_rules_parse(self, action, quick, body, state):
        text = f"{action} {quick}{body}{state}"
        rule = parse_ruleset(text).rules()[0]
        assert rule.action == action
        assert rule.quick == bool(quick.strip())
        assert rule.keep_state == bool(state.strip())


class TestPaperListingsParse:
    def test_section_33_example(self):
        ruleset = parse_ruleset(paper_configs.SECTION_33_EXAMPLE)
        assert len(ruleset.rules()) == 2
        assert "mail-server" in ruleset.tables()

    def test_figure2_files(self):
        loader = RulesetLoader()
        loader.add_files(paper_configs.figure2_control_files())
        ruleset = loader.build()
        assert len(ruleset.rules()) == 7
        assert set(ruleset.tables()) == {"server", "lan", "int_hosts", "skype_update"}
        assert ruleset.macros()["allowed"] == "{ http ssh }"

    def test_figure5_files(self):
        files = paper_configs.figure5_research_control("10001.abcdef", "10001.123456")
        ruleset = build_ruleset(files)
        assert ruleset.dicts()["pubkeys"].entries["research"] == "10001.abcdef"
        assert ruleset.dicts()["pubkeys"].entries["admin"] == "10001.123456"
        delegation_rule = ruleset.rules()[-1]
        assert {c.name for c in delegation_rule.conditions} == {"member", "allowed", "verify"}

    def test_figure7_files(self):
        ruleset = build_ruleset(paper_configs.figure7_secur_control("10001.abcdef"))
        rule = ruleset.rules()[-1]
        assert rule.is_pass
        assert [c.name for c in rule.conditions] == ["eq", "allowed", "verify"]

    def test_figure8_files(self):
        ruleset = build_ruleset(paper_configs.figure8_control_files())
        rule = ruleset.rules()[-1]
        assert "includes" in {c.name for c in rule.conditions}

    def test_requirements_snippets_parse(self):
        for text in (paper_configs.SKYPE_REQUIREMENTS,
                     paper_configs.RESEARCH_REQUIREMENTS,
                     paper_configs.THUNDERBIRD_REQUIREMENTS):
            assert parse_ruleset(text).rules()


class TestTables:
    def test_resolution_and_membership(self):
        ruleset = parse_ruleset(
            "table <server> { 192.168.1.1 }\n"
            "table <lan> { 192.168.0.0/24 }\n"
            "table <int_hosts> { <lan> <server> }\n"
        )
        tables = TableSet.from_definitions(ruleset.tables())
        assert tables.contains("int_hosts", "192.168.0.77")
        assert tables.contains("int_hosts", "192.168.1.1")
        assert not tables.contains("int_hosts", "192.168.2.1")

    def test_unknown_table_rejected(self):
        with pytest.raises(PFEvalError):
            TableSet().resolve("ghost")

    def test_cycle_detected(self):
        ruleset = parse_ruleset("table <a> { <b> }\ntable <b> { <a> }")
        tables = TableSet.from_definitions(ruleset.tables())
        with pytest.raises(PFEvalError):
            tables.resolve("a")

    def test_add_table_directly(self):
        tables = TableSet()
        tables.add_table("lan", ["10.0.0.0/8", "192.168.0.1"])
        assert tables.contains("lan", "10.1.2.3")
        assert tables.contains("lan", "192.168.0.1")

    def test_merge(self):
        first = TableSet()
        first.add_table("a", ["10.0.0.0/8"])
        second = TableSet()
        second.add_table("b", ["192.168.0.0/16"])
        first.merge(second)
        assert first.contains("b", "192.168.1.1")

    def test_non_address_membership_is_false(self):
        tables = TableSet()
        tables.add_table("lan", ["10.0.0.0/8"])
        assert not tables.resolve("lan").contains("not-an-ip")


class TestRulesetLoader:
    def test_alphabetical_concatenation(self):
        loader = RulesetLoader()
        loader.add_file("99-footer", "block all")
        loader.add_file("00-header", "pass all")
        assert loader.file_names() == ["00-header.control", "99-footer.control"]
        rules = loader.build().rules()
        assert [r.action for r in rules] == ["pass", "block"]

    def test_replacing_a_file(self):
        loader = RulesetLoader()
        loader.add_file("00-a", "pass all")
        loader.add_file("00-a", "block all")
        assert len(loader) == 1
        assert loader.build().rules()[0].action == "block"

    def test_remove_file(self):
        loader = RulesetLoader()
        loader.add_file("50-vendor", "pass all")
        assert loader.remove_file("50-vendor")
        assert not loader.remove_file("50-vendor")
        assert len(loader.build().rules()) == 0

    def test_load_directory(self, tmp_path):
        (tmp_path / "00-a.control").write_text("block all\n")
        (tmp_path / "50-b.control").write_text("pass all\n")
        (tmp_path / "notes.txt").write_text("ignored\n")
        loader = RulesetLoader()
        assert loader.load_directory(str(tmp_path)) == 2
        assert [r.action for r in loader.build().rules()] == ["block", "pass"]

    def test_load_missing_directory(self, tmp_path):
        from repro.exceptions import PolicyError
        with pytest.raises(PolicyError):
            RulesetLoader().load_directory(str(tmp_path / "missing"))
