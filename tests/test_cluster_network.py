"""Integration tests: the sharded controller cluster on a real network."""

import pytest

from repro.core.network import HostSpec, IdentPPClusterNetwork, IdentPPNetwork
from repro.exceptions import DelegationError, TopologyError
from repro.identpp.flowspec import FlowSpec

POLICY = {
    "00-default.control": (
        "block all\n"
        "pass from any to any port 80 keep state\n"
    ),
}


def build_cluster_network(shards=4, **kwargs):
    net = IdentPPClusterNetwork("cluster-test", shards=shards,
                                policy_default_action="block", **kwargs)
    left = net.add_switch("sw-left")
    right = net.add_switch("sw-right")
    net.connect(left, right)
    net.add_host(
        HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users", "staff")}),
        switch=left,
    )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=right)
    server.run_server("httpd", "root", 80)
    net.set_policy(POLICY)
    return net


class TestClusterRouting:
    def test_flow_is_decided_by_its_owning_shard_only(self):
        net = build_cluster_network()
        result = net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        assert result.delivered and result.decision_action == "pass"
        owner = net.cluster.shard_map.owner(result.flow)
        for name, controller in net.cluster.replicas.items():
            records = controller.audit.records()
            if name == owner:
                assert len(records) == 1
            else:
                assert records == []

    def test_every_switch_holds_one_channel_per_replica(self):
        net = build_cluster_network(shards=3)
        for switch in net.switches.values():
            assert sorted(switch.channels) == sorted(net.cluster.replicas)
            assert switch.shard_router is not None

    def test_channel_counters_name_both_endpoints(self):
        # With several controllers per switch, bare "->controller" names
        # would collide and make the stats unattributable.
        net = build_cluster_network(shards=2)
        switch = net.switches["sw-left"]
        names = {
            channel.to_controller_messages.name for channel in switch.channels.values()
        }
        assert names == {
            f"sw-left->{name}.messages" for name in net.cluster.replicas
        }
        for name, channel in switch.channels.items():
            assert channel.to_switch_messages.name == f"{name}->sw-left.messages"

    def test_reverse_direction_maps_to_the_same_shard(self):
        net = build_cluster_network()
        flow = FlowSpec.tcp("192.168.0.10", "192.168.1.1", 44000, 80)
        ring = net.cluster.shard_map
        assert ring.owner(flow) == ring.owner(flow.reversed())

    def test_load_spreads_across_shards(self):
        net = build_cluster_network()
        client = net.host("client")
        for _ in range(40):
            client.open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        deciders = [
            name for name, c in net.cluster.replicas.items() if c.audit.records()
        ]
        assert len(deciders) >= 2
        assert net.cluster.decided_total() == 40


class TestClusterBuilders:
    def test_cluster_network_has_no_default_controller(self):
        # A cluster network must not carry a dead unsharded controller.
        net = build_cluster_network(shards=2)
        assert net.controller is None
        assert sorted(net.summary()["controllers"]) == sorted(net.cluster.replicas)

    def test_explicit_controller_network_skips_default_controller(self):
        net = IdentPPNetwork("explicit", create_default_controller=False)
        controller = net.add_controller("the-one")
        switch = net.add_switch("sw", controller=controller)
        assert net.controller is None
        assert list(net.summary()["controllers"]) == ["the-one"]
        assert switch.channel.controller is controller

    def test_switch_without_any_controller_rejected(self):
        net = IdentPPNetwork("bare", create_default_controller=False)
        with pytest.raises(TopologyError):
            net.add_switch("sw")

    def test_add_cluster_on_a_default_controller_network_rejected(self):
        # A cluster must not coexist with the eagerly-created default
        # controller (it would linger dead and unsharded in summaries).
        net = IdentPPNetwork("mixed")
        with pytest.raises(TopologyError):
            net.add_cluster(shards=2)

    def test_add_cluster_after_switches_rejected(self):
        net = IdentPPNetwork("late", create_default_controller=False)
        controller = net.add_controller("solo")
        net.add_switch("sw", controller=controller)
        with pytest.raises(TopologyError):
            net.add_cluster(shards=2)

    def test_single_controller_networks_unchanged(self):
        net = IdentPPNetwork("classic")
        net.add_switch("sw")
        assert net.controller is not None
        assert list(net.summary()["controllers"]) == [net.controller.name]
        assert "cluster" not in net.summary()

    def test_cluster_summary_shape(self):
        net = build_cluster_network(shards=2)
        net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        cluster = net.summary()["cluster"]
        assert cluster["shards"] == 2
        assert cluster["decisions_total"] == 1
        assert cluster["pending_total"] == 0
        assert cluster["shard_map"]["ring_size"] > 0


class TestClusterCoordination:
    def test_policy_reload_propagates_to_every_shard(self):
        net = build_cluster_network()
        record = net.cluster.set_policy(
            {"10-extra.control": "pass from any to any port 443\n"}
        )
        assert record.kind == "policy_reload"
        assert sorted(record.applied_to) == sorted(net.cluster.replicas)
        rule_counts = {c.policy.rule_count() for c in net.cluster.replicas.values()}
        assert len(rule_counts) == 1
        assert net.cluster.coordinator.verify_converged()

    def test_revocation_is_cluster_wide_and_audits_origin(self):
        net = build_cluster_network()
        cluster = net.cluster
        cluster.grant_delegation("secur", "ab" * 32)
        assert all(
            c.delegations.is_active("secur") for c in cluster.replicas.values()
        )
        origin = sorted(cluster.replicas)[2]
        record = cluster.revoke_delegation("secur", origin_shard=origin)
        assert record.kind == "revocation"
        assert record.origin_shard == origin
        assert sorted(record.applied_to) == sorted(cluster.replicas)
        assert not any(
            c.delegations.is_active("secur") for c in cluster.replicas.values()
        )
        assert cluster.coordinator.verify_converged()

    def test_revoking_unknown_principal_rejected(self):
        net = build_cluster_network(shards=2)
        with pytest.raises(DelegationError):
            net.cluster.revoke_delegation("ghost")

    def test_broken_policy_reload_is_atomic(self):
        # A bad ruleset must fail before touching any replica: no shard
        # may end up with the broken file (or a divergent rule count).
        from repro.exceptions import PFError

        net = build_cluster_network()
        before_counts = [c.policy.rule_count() for c in net.cluster.replicas.values()]
        before_epoch = net.cluster.coordinator.epoch
        with pytest.raises(PFError):
            net.cluster.set_policy({"99-broken.control": "pass frm any to any\n"})
        assert [c.policy.rule_count() for c in net.cluster.replicas.values()] == before_counts
        assert all(
            "99-broken.control" not in c.policy.loader.file_names()
            for c in net.cluster.replicas.values()
        )
        assert net.cluster.coordinator.epoch == before_epoch
        assert net.cluster.coordinator.verify_converged()
        # The cluster still decides flows after the failed reload.
        assert net.send_flow("client", "http", "alice", "192.168.1.1", 80).delivered

    def test_changes_skip_crashed_replicas_and_resync_on_restore(self):
        net = build_cluster_network()
        cluster = net.cluster
        cluster.grant_delegation("secur", "ab" * 32)
        victim = sorted(cluster.replicas)[0]
        cluster.kill(victim)

        record = cluster.revoke_delegation("secur")
        assert victim not in record.applied_to
        # The corpse cannot observe the change...
        assert cluster.replicas[victim].delegations.is_active("secur")
        assert cluster.coordinator.verify_converged()  # live replicas agree

        # ...but a restored replica replays what it missed.
        cluster.restore(victim)
        assert not cluster.replicas[victim].delegations.is_active("secur")
        assert cluster.coordinator.resyncs == 1
        assert cluster.coordinator.verify_converged()
        # With every replica caught up, the replay log prunes to empty.
        assert cluster.coordinator._changes == []

    def test_revocation_during_total_outage_lands_at_resync(self):
        # Even with every replica crashed, the revocation is recorded;
        # no shard may be revived still enforcing the revoked grant.
        net = build_cluster_network(shards=2)
        cluster = net.cluster
        cluster.grant_delegation("secur", "ab" * 32)
        for shard in list(cluster.replicas):
            cluster.replicas[shard].halt()  # total outage (no ring change)

        record = cluster.revoke_delegation("secur")
        assert record.applied_to == ()
        for shard in list(cluster.replicas):
            cluster.replicas[shard].resume()
            cluster.coordinator.resync(shard)
        assert not any(
            c.delegations.is_active("secur") for c in cluster.replicas.values()
        )
        assert cluster.coordinator.verify_converged()

    def test_failed_grant_does_not_poison_the_replay_log(self):
        # A rejected change must leave no epoch, no audit entry and no
        # closure for resync to re-raise on every future restore.
        net = build_cluster_network()
        cluster = net.cluster
        before_epoch = cluster.coordinator.epoch
        before_trail = len(cluster.coordinator.audit_trail())
        with pytest.raises(Exception):
            cluster.grant_delegation("poison", None)  # keystore rejects None
        assert cluster.coordinator.epoch == before_epoch
        assert len(cluster.coordinator.audit_trail()) == before_trail

        victim = sorted(cluster.replicas)[0]
        cluster.kill(victim)
        cluster.restore(victim)  # must not re-raise the poisoned grant
        assert not cluster.replicas[victim].halted

    def test_grant_appears_in_every_shards_pubkeys(self):
        net = build_cluster_network()
        from repro.crypto.signatures import Signer

        signer = Signer("secur", seed=3)
        record = net.cluster.grant_delegation("secur", signer)
        assert record.kind == "grant"
        keys = {
            c.delegations.pubkeys_dict()["secur"]
            for c in net.cluster.replicas.values()
        }
        assert len(keys) == 1  # same key everywhere


class TestClusterEdges:
    def test_single_shard_cluster_behaves_like_one_controller(self):
        net = build_cluster_network(shards=1)
        result = net.send_flow("client", "http", "alice", "192.168.1.1", 80)
        assert result.delivered
        (controller,) = net.cluster.replicas.values()
        assert len(controller.audit.records()) == 1

    def test_zero_shards_rejected(self):
        with pytest.raises(TopologyError):
            IdentPPClusterNetwork("broken", shards=0)

    def test_duplicate_cluster_rejected(self):
        net = IdentPPClusterNetwork("dup", shards=2)
        with pytest.raises(TopologyError):
            net.add_cluster(shards=2)
