"""Fixture-locked tests for the repo-invariant lint (``tools/analysis``).

Every rule is pinned to its good/bad fixture pair under
``tools/analysis/fixtures/``, the suppression machinery is exercised
directly, and the live ``src/`` + ``tools/`` trees are asserted clean —
the same invocation ``make lint`` runs in CI.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analysis import analyze_paths, analyze_source
from tools.analysis import run_lint
from tools.analysis.rules import ALL_RULES, rules_by_id

FIXTURES = REPO_ROOT / "tools" / "analysis" / "fixtures"
RULE_IDS = [rule.rule_id for rule in ALL_RULES]


def lint_fixture(name: str):
    """Lint one fixture file under the full rule set."""
    return analyze_paths([FIXTURES / name], ALL_RULES, root=REPO_ROOT)


class TestFixtureCorpus:
    """Each rule flags its bad fixture and passes its good fixture."""

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_is_flagged(self, rule_id):
        violations = lint_fixture(f"{rule_id.lower()}_bad.py")
        assert violations, f"{rule_id} bad fixture produced no violations"
        assert {v.rule_id for v in violations} == {rule_id}

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_fixture_is_clean(self, rule_id):
        assert lint_fixture(f"{rule_id.lower()}_good.py") == []

    def test_every_rule_has_both_fixtures(self):
        for rule_id in RULE_IDS:
            for kind in ("bad", "good"):
                assert (FIXTURES / f"{rule_id.lower()}_{kind}.py").is_file()

    def test_violations_carry_location_and_render(self):
        violation = lint_fixture("r1_bad.py")[0]
        assert violation.path == "tools/analysis/fixtures/r1_bad.py"
        assert violation.line > 0
        assert str(violation).startswith(f"{violation.path}:{violation.line}: R1 ")


class TestRuleSemantics:
    """Targeted behaviours beyond the plain fixture pass/fail."""

    def test_r1_workload_allowlist(self):
        source = "import time\n\ndef t():\n    return time.perf_counter()\n"
        rules = [rules_by_id()["R1"]]
        assert analyze_source(source, rules, rel_path="src/repro/netsim/x.py")
        assert analyze_source(source, rules, rel_path="benchmarks/x.py") == []
        assert (
            analyze_source(source, rules, rel_path="src/repro/workloads/x.py") == []
        )

    def test_r2_seeded_instance_is_clean(self):
        rules = [rules_by_id()["R2"]]
        assert analyze_source("import random\nrng = random.Random(7)\n", rules) == []
        assert analyze_source("import random\nrng = random.Random()\n", rules)

    def test_r3_tag_requires_a_reason(self):
        rules = [rules_by_id()["R3"]]
        tagged = (
            "try:\n    x()\n"
            "except Exception:  # fail-open-ok: advisory metrics only\n    pass\n"
        )
        bare_tag = "try:\n    x()\nexcept Exception:  # fail-open-ok:\n    pass\n"
        assert analyze_source(tagged, rules) == []
        assert analyze_source(bare_tag, rules)

    def test_r3_reraise_and_audit_paths_are_fail_closed(self):
        rules = [rules_by_id()["R3"]]
        reraise = "try:\n    x()\nexcept Exception:\n    cleanup()\n    raise\n"
        audited = "try:\n    x()\nexcept Exception:\n    audit.record_fail_closed('x')\n"
        assert analyze_source(reraise, rules) == []
        assert analyze_source(audited, rules) == []

    def test_r4_flags_lambda_and_method_callbacks(self):
        violations = lint_fixture("r4_bad.py")
        flagged_lines = {v.line for v in violations}
        assert len(flagged_lines) >= 3  # nested def, lambda, method body

    def test_r5_named_counter_is_clean(self):
        rules = [rules_by_id()["R5"]]
        assert analyze_source("c = Counter(name='served')\n", rules) == []
        assert analyze_source("c = Counter()\n", rules)


class TestSuppression:
    def test_inline_disable_suppresses_only_named_rule(self):
        flagged = "import time\nnow = time.time()\n"
        suppressed = "import time\nnow = time.time()  # lint: disable=R1\n"
        wrong_rule = "import time\nnow = time.time()  # lint: disable=R2\n"
        assert analyze_source(flagged, ALL_RULES)
        assert analyze_source(suppressed, ALL_RULES) == []
        assert analyze_source(wrong_rule, ALL_RULES)

    def test_inline_disable_accepts_a_list(self):
        source = (
            "import time\nimport random\n"
            "x = time.time() + random.random()  # lint: disable=R1,R2\n"
        )
        assert analyze_source(source, ALL_RULES) == []


class TestRunLint:
    """The ``make lint`` entry point's exit-code contract."""

    def test_live_tree_is_clean(self):
        assert run_lint.main([]) == 0

    def test_seeded_violations_fail_the_run(self, monkeypatch):
        # The fixture corpus *is* a tree seeded with violations; with the
        # exclusion lifted the run must exit non-zero.
        monkeypatch.setattr(run_lint, "EXCLUDED_PREFIXES", ())
        assert run_lint.main([str(FIXTURES)]) == 1

    def test_disable_switches_a_rule_off(self, monkeypatch):
        monkeypatch.setattr(run_lint, "EXCLUDED_PREFIXES", ())
        bad = str(FIXTURES / "r1_bad.py")
        assert run_lint.main([bad]) == 1
        assert run_lint.main([bad, "--disable", "R1"]) == 0

    def test_unknown_rule_id_is_an_error(self):
        assert run_lint.main(["--disable", "R99"]) == 2

    def test_missing_path_is_an_error(self):
        assert run_lint.main(["no/such/dir"]) == 2

    def test_list_rules(self, capsys):
        assert run_lint.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out
