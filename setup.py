"""Legacy setuptools entry point.

Kept so that ``python setup.py develop`` works in fully offline
environments where pip cannot build PEP 660 editable wheels (no
``wheel`` package available).  Normal installs should use
``pip install -e .``.
"""

from setuptools import setup

setup()
