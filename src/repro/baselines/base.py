"""Common interface for baseline security architectures.

A baseline is anything that can answer "may this flow proceed?" given
only the information that architecture actually has.  ident++'s whole
point is that it has *more* information (user, application, patch
level); the baselines deliberately ignore the fields they would not see
in reality — that asymmetry is what the comparison experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.exceptions import TopologyError
from repro.identpp.flowspec import FlowSpec
from repro.netsim.topology import Topology
from repro.openflow.actions import DropAction, OutputAction, FloodAction
from repro.openflow.controller_base import Controller
from repro.openflow.match import Match
from repro.openflow.messages import PacketIn
from repro.openflow.switch import OpenFlowSwitch

ACTION_PASS = "pass"
ACTION_BLOCK = "block"


@dataclass
class FlowContext:
    """The side information a decision point *might* have about a flow.

    ident++ fills all of it from daemon responses; baselines use only the
    subset their architecture can see (Ethane: the user binding; a vanilla
    firewall: nothing beyond the 5-tuple).
    """

    src_user: Optional[str] = None
    dst_user: Optional[str] = None
    src_app: Optional[str] = None
    dst_app: Optional[str] = None
    src_groups: tuple[str, ...] = ()
    dst_groups: tuple[str, ...] = ()
    extras: dict[str, str] = field(default_factory=dict)


class BaselinePolicy(Protocol):
    """What every baseline implements."""

    name: str

    def decide(self, flow: FlowSpec, context: Optional[FlowContext] = None) -> str:
        """Return ``"pass"`` or ``"block"`` for the flow."""

    def uses_information(self) -> tuple[str, ...]:
        """Return which information classes the architecture consults
        (used in the qualitative §6 comparison table)."""


class BaselineController(Controller):
    """Mounts a :class:`BaselinePolicy` on the OpenFlow substrate.

    Decisions are cached in switch flow tables exactly as the ident++
    controller does, but no ident++ queries are issued — the context, if
    any, must come from static knowledge (Ethane's bindings).  This keeps
    the flow-setup latency comparison honest: the baseline pays only the
    control-channel round trip.
    """

    def __init__(
        self,
        name: str,
        topology: Topology,
        policy: BaselinePolicy,
        *,
        idle_timeout: float = 60.0,
        context_provider=None,
    ) -> None:
        super().__init__(name)
        self.topology = topology
        self.policy = policy
        self.idle_timeout = idle_timeout
        self.context_provider = context_provider
        self.decisions: list[tuple[FlowSpec, str]] = []
        self.attach(topology.sim)

    def on_packet_in(self, message: PacketIn) -> None:
        packet = message.packet
        if not packet.is_ip():
            self.send_packet_out(
                message.switch, actions=[FloodAction()], buffer_id=message.buffer_id,
                in_port=message.in_port,
            )
            return
        flow = FlowSpec.from_packet(packet)
        context = self.context_provider(flow) if self.context_provider is not None else None
        action = self.policy.decide(flow, context)
        self.decisions.append((flow, action))
        match = Match.from_five_tuple(
            flow.src_ip, flow.dst_ip, flow.proto, flow.src_port, flow.dst_port
        )
        if action == ACTION_PASS:
            out_port = self._egress_toward(message.switch, flow)
            actions = [OutputAction(out_port)] if out_port is not None else [FloodAction()]
        else:
            actions = [DropAction()]
        self.install_flow(
            message.switch,
            match,
            actions,
            idle_timeout=self.idle_timeout,
            cookie=f"{self.name}:{action}",
            buffer_id=message.buffer_id,
        )
        self._install_downstream(flow, action, message.switch)

    def _install_downstream(self, flow: FlowSpec, action: str, first_switch: OpenFlowSwitch) -> None:
        if action != ACTION_PASS:
            return
        destination = self.topology.node_for_ip(flow.dst_ip)
        source = self.topology.node_for_ip(flow.src_ip)
        if destination is None or source is None:
            return
        try:
            path = self.topology.shortest_path(source, destination)
        except TopologyError:
            # No path between the endpoints: nothing to install
            # downstream.  Non-topology errors propagate.
            return
        match = Match.from_five_tuple(
            flow.src_ip, flow.dst_ip, flow.proto, flow.src_port, flow.dst_port
        )
        for index, node in enumerate(path):
            if not isinstance(node, OpenFlowSwitch) or node.name not in self.channels:
                continue
            if node is first_switch:
                continue
            if index + 1 < len(path):
                out_port = self.topology.egress_port(node, path[index + 1]).number
                self.install_flow(
                    node, match, [OutputAction(out_port)],
                    idle_timeout=self.idle_timeout, cookie=f"{self.name}:pass",
                )

    def _egress_toward(self, switch: OpenFlowSwitch, flow: FlowSpec) -> Optional[int]:
        destination = self.topology.node_for_ip(flow.dst_ip)
        if destination is None:
            return None
        try:
            path = self.topology.shortest_path(switch, destination)
        except TopologyError:
            # Unroutable destination: the caller falls back to flooding.
            return None
        if len(path) < 2:
            return None
        return self.topology.egress_port(switch, path[1]).number
