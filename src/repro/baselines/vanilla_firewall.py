"""A vanilla (port/address) firewall.

This is the architecture the paper's introduction criticises: policies
can only be written "in terms of incidental flow properties" — IP
prefixes, protocols and port numbers — so administrators end up with
coarse rules such as "block port 25" that also break legitimate SMTP
relaying, or cannot block Skype without blocking the web (§1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.baselines.base import ACTION_BLOCK, ACTION_PASS, FlowContext
from repro.identpp.flowspec import FlowSpec
from repro.netsim.addresses import IPv4Network
from repro.netsim.packet import proto_number
from repro.pf.state import StateTable


@dataclass
class FirewallRule:
    """One port/address rule: first match wins."""

    action: str
    src: Optional[IPv4Network] = None
    dst: Optional[IPv4Network] = None
    proto: Optional[int] = None
    dst_port: Optional[int] = None
    src_port: Optional[int] = None
    keep_state: bool = False
    comment: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.src, str):
            self.src = IPv4Network(self.src)
        if isinstance(self.dst, str):
            self.dst = IPv4Network(self.dst)
        if isinstance(self.proto, str):
            self.proto = proto_number(self.proto)

    def matches(self, flow: FlowSpec) -> bool:
        """Return ``True`` if the flow matches every constrained field."""
        if self.src is not None and flow.src_ip not in self.src:
            return False
        if self.dst is not None and flow.dst_ip not in self.dst:
            return False
        if self.proto is not None and flow.proto != self.proto:
            return False
        if self.dst_port is not None and flow.dst_port != self.dst_port:
            return False
        if self.src_port is not None and flow.src_port != self.src_port:
            return False
        return True


class VanillaFirewall:
    """A stateful first-match port firewall."""

    def __init__(
        self,
        rules: Iterable[FirewallRule] = (),
        *,
        default_action: str = ACTION_BLOCK,
        name: str = "vanilla-firewall",
    ) -> None:
        self.name = name
        self.rules: list[FirewallRule] = list(rules)
        self.default_action = default_action
        self.state = StateTable()
        self.decisions = 0

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------

    def allow(self, **kwargs) -> FirewallRule:
        """Append an allow rule (keyword arguments as in :class:`FirewallRule`)."""
        rule = FirewallRule(action=ACTION_PASS, **kwargs)
        self.rules.append(rule)
        return rule

    def deny(self, **kwargs) -> FirewallRule:
        """Append a deny rule."""
        rule = FirewallRule(action=ACTION_BLOCK, **kwargs)
        self.rules.append(rule)
        return rule

    # ------------------------------------------------------------------
    # BaselinePolicy interface
    # ------------------------------------------------------------------

    def decide(self, flow: FlowSpec, context: Optional[FlowContext] = None) -> str:
        """First matching rule wins; established (stateful) flows always pass.

        ``context`` is accepted for interface compatibility and ignored —
        a port firewall has no user or application information.
        """
        self.decisions += 1
        if self.state.match(flow) is not None:
            return ACTION_PASS
        for rule in self.rules:
            if rule.matches(flow):
                if rule.action == ACTION_PASS and rule.keep_state:
                    self.state.add(flow)
                return rule.action
        return self.default_action

    def uses_information(self) -> tuple[str, ...]:
        return ("5-tuple",)

    def __len__(self) -> int:
        return len(self.rules)


def enterprise_default_rules(
    internal: str = "192.168.0.0/16",
    server_subnet: str = "192.168.1.0/24",
) -> list[FirewallRule]:
    """Return a typical coarse enterprise rule set (used by the comparison benches).

    Allows outbound connections from the inside, web/ssh/smtp to the
    server subnet, and blocks everything else — the best a port firewall
    can express for the paper's scenarios.
    """
    return [
        FirewallRule(action=ACTION_PASS, src=IPv4Network(internal), dst=None, proto="tcp",
                     keep_state=True, comment="outbound from inside"),
        FirewallRule(action=ACTION_PASS, dst=IPv4Network(server_subnet), proto="tcp", dst_port=80,
                     keep_state=True, comment="web to servers"),
        FirewallRule(action=ACTION_PASS, dst=IPv4Network(server_subnet), proto="tcp", dst_port=22,
                     keep_state=True, comment="ssh to servers"),
        FirewallRule(action=ACTION_PASS, dst=IPv4Network(server_subnet), proto="tcp", dst_port=25,
                     keep_state=True, comment="smtp to servers"),
        FirewallRule(action=ACTION_BLOCK, comment="default deny"),
    ]
