"""VLAN / VPN partitioning.

"Using VLANs and VPNs require users and administrators to partition the
traffic on each client machine ahead of time, or to assign switch ports,
and thus entire machines, to specific VLANs." (§6)

The model assigns each host (by address) to a segment ahead of time;
flows are allowed only within a segment (plus explicitly whitelisted
inter-segment pairs, standing in for router ACL punch-throughs).  The
coarseness is the point: the comparison experiments show that the
per-application interaction ident++ allows (e.g. "skype may talk to
skype anywhere") cannot be expressed as a machine-level partition
without either merging the segments or breaking other traffic.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.baselines.base import ACTION_BLOCK, ACTION_PASS, FlowContext
from repro.identpp.flowspec import FlowSpec
from repro.netsim.addresses import IPv4Address, IPv4Network


class VLANSegmentation:
    """Machine-level partitioning of the network into segments."""

    def __init__(self, *, default_action: str = ACTION_BLOCK, name: str = "vlan") -> None:
        self.name = name
        self.default_action = default_action
        self._segments: dict[str, list[IPv4Network]] = {}
        self._allowed_pairs: set[tuple[str, str]] = set()
        self.decisions = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def assign(self, segment: str, prefixes: Iterable[IPv4Network | str]) -> None:
        """Assign address prefixes to a segment (a VLAN)."""
        networks = [p if isinstance(p, IPv4Network) else IPv4Network(p) for p in prefixes]
        self._segments.setdefault(segment, []).extend(networks)

    def allow_between(self, segment_a: str, segment_b: str) -> None:
        """Whitelist traffic between two segments (both directions)."""
        self._allowed_pairs.add((segment_a, segment_b))
        self._allowed_pairs.add((segment_b, segment_a))

    def segment_of(self, address: IPv4Address | str) -> Optional[str]:
        """Return the segment an address belongs to, or ``None``."""
        address = IPv4Address(address)
        for segment, networks in self._segments.items():
            if any(address in network for network in networks):
                return segment
        return None

    def segments(self) -> list[str]:
        """Return all segment names, sorted."""
        return sorted(self._segments)

    # ------------------------------------------------------------------
    # BaselinePolicy interface
    # ------------------------------------------------------------------

    def decide(self, flow: FlowSpec, context: Optional[FlowContext] = None) -> str:
        """Intra-segment passes; inter-segment only if whitelisted; unknown hosts blocked."""
        self.decisions += 1
        src_segment = self.segment_of(flow.src_ip)
        dst_segment = self.segment_of(flow.dst_ip)
        if src_segment is None or dst_segment is None:
            return self.default_action
        if src_segment == dst_segment:
            return ACTION_PASS
        if (src_segment, dst_segment) in self._allowed_pairs:
            return ACTION_PASS
        return ACTION_BLOCK

    def uses_information(self) -> tuple[str, ...]:
        return ("machine-to-segment assignment",)
