"""Distributed firewalls [9].

"Distributed firewalls centralize the policy, and distribute enforcement
to firewalls implemented on the end-host. ... Unfortunately, [they]
suffer from a number of problems.  First, if enforcement is done only at
the receiving end-host ..., the end-host can become vulnerable to denial
of service attacks.  Second, a compromised end-host effectively has no
protection.  The central administrator's policies are completely
bypassed." (§6)

The model here captures exactly those properties: the same rule language
as the vanilla firewall, but the *enforcement point* is the destination
host, so

* a flow always traverses the network and consumes bandwidth before
  being dropped (``enforced_at_destination``), and
* when the destination host is compromised, :meth:`decide` passes
  everything regardless of policy.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.baselines.base import ACTION_PASS, FlowContext
from repro.baselines.vanilla_firewall import FirewallRule, VanillaFirewall
from repro.identpp.flowspec import FlowSpec
from repro.netsim.addresses import IPv4Address


class DistributedFirewall(VanillaFirewall):
    """End-host-enforced firewall with centrally distributed policy."""

    enforced_at_destination = True

    def __init__(
        self,
        rules: Iterable[FirewallRule] = (),
        *,
        default_action: str = "block",
        name: str = "distributed-firewall",
        compromised_hosts: Optional[set[IPv4Address]] = None,
        host_compromise_check: Optional[Callable[[IPv4Address], bool]] = None,
    ) -> None:
        super().__init__(rules, default_action=default_action, name=name)
        self.compromised_hosts: set[IPv4Address] = set(compromised_hosts or ())
        self._host_compromise_check = host_compromise_check

    def mark_host_compromised(self, address: IPv4Address | str) -> None:
        """Record that the enforcement point at ``address`` is attacker-controlled."""
        self.compromised_hosts.add(IPv4Address(address))

    def _destination_compromised(self, flow: FlowSpec) -> bool:
        if flow.dst_ip in self.compromised_hosts:
            return True
        if self._host_compromise_check is not None:
            return bool(self._host_compromise_check(flow.dst_ip))
        return False

    def decide(self, flow: FlowSpec, context: Optional[FlowContext] = None) -> str:
        """Apply the policy at the destination host.

        A compromised destination enforces nothing (§6), and because the
        packet already crossed the network, inbound denial-of-service
        traffic still consumed bandwidth — callers measuring link load
        should count the flow as having traversed the path either way.
        """
        if self._destination_compromised(flow):
            self.decisions += 1
            return ACTION_PASS
        return super().decide(flow, context)

    def uses_information(self) -> tuple[str, ...]:
        return ("5-tuple", "end-host-local context")
