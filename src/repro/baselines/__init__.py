"""Baseline security architectures the paper compares against.

§5 and §6 position ident++ against:

* a **vanilla firewall** — port/address rules, no user or application
  information (:mod:`repro.baselines.vanilla_firewall`),
* **distributed firewalls** [Ioannidis et al.] — the same policy but
  enforced on the receiving end-host, so a compromised end-host has no
  protection at all (:mod:`repro.baselines.distributed_firewall`),
* **Ethane** [Casado et al.] — centralized flow admission with user
  bindings but "no application-level information"
  (:mod:`repro.baselines.ethane`), and
* **VLAN/VPN partitioning** — ahead-of-time assignment of machines to
  segments (:mod:`repro.baselines.vlan`).

Each baseline implements the same small :class:`BaselinePolicy`
interface so the security matrix (experiment E9) and the latency
comparison (E10) can drive them uniformly, and each can be mounted on
the OpenFlow substrate via :class:`BaselineController` where a datapath
is needed.
"""

from repro.baselines.base import BaselineController, BaselinePolicy, FlowContext
from repro.baselines.distributed_firewall import DistributedFirewall
from repro.baselines.ethane import EthanePolicy, HostBinding
from repro.baselines.vanilla_firewall import FirewallRule, VanillaFirewall
from repro.baselines.vlan import VLANSegmentation

__all__ = [
    "BaselineController",
    "BaselinePolicy",
    "FlowContext",
    "DistributedFirewall",
    "EthanePolicy",
    "HostBinding",
    "FirewallRule",
    "VanillaFirewall",
    "VLANSegmentation",
]
