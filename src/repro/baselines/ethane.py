"""An Ethane-style controller [5].

"Ethane provides administrators with centralized control of network
flows in an enterprise network.  However, it forces the administrator to
make security decisions based on the source and destination's physical
switch ports and network primitives, and not on any application-level
information." (§6)

The model: hosts *register* with the controller (a binding of IP/MAC →
switch port and authenticated user).  Policy rules may refer to the
bound users, groups and the 5-tuple — but never to applications,
executable hashes, versions or patch levels, because Ethane has no way
to learn them.  That is precisely the gap ident++ fills, and what the
comparison experiments show: the Skype-vs-web and Conficker policies of
Figures 2 and 8 are inexpressible here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.baselines.base import ACTION_BLOCK, ACTION_PASS, FlowContext
from repro.identpp.flowspec import FlowSpec
from repro.netsim.addresses import IPv4Address, IPv4Network
from repro.netsim.packet import proto_number


@dataclass
class HostBinding:
    """One registered host: where it is attached and who authenticated it."""

    ip: IPv4Address
    user: str
    groups: tuple[str, ...] = ()
    switch: str = ""
    port: int = 0

    def __post_init__(self) -> None:
        self.ip = IPv4Address(self.ip)


@dataclass
class EthaneRule:
    """One Ethane policy rule: users/groups and network primitives, first match wins."""

    action: str
    src_user: Optional[str] = None
    dst_user: Optional[str] = None
    src_group: Optional[str] = None
    dst_group: Optional[str] = None
    src: Optional[IPv4Network] = None
    dst: Optional[IPv4Network] = None
    proto: Optional[int] = None
    dst_port: Optional[int] = None
    comment: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.src, str):
            self.src = IPv4Network(self.src)
        if isinstance(self.dst, str):
            self.dst = IPv4Network(self.dst)
        if isinstance(self.proto, str):
            self.proto = proto_number(self.proto)

    def matches(
        self, flow: FlowSpec, src_binding: Optional[HostBinding], dst_binding: Optional[HostBinding]
    ) -> bool:
        """Return ``True`` if both the network fields and the binding fields match."""
        if self.src is not None and flow.src_ip not in self.src:
            return False
        if self.dst is not None and flow.dst_ip not in self.dst:
            return False
        if self.proto is not None and flow.proto != self.proto:
            return False
        if self.dst_port is not None and flow.dst_port != self.dst_port:
            return False
        if self.src_user is not None and (src_binding is None or src_binding.user != self.src_user):
            return False
        if self.dst_user is not None and (dst_binding is None or dst_binding.user != self.dst_user):
            return False
        if self.src_group is not None and (
            src_binding is None or self.src_group not in src_binding.groups
        ):
            return False
        if self.dst_group is not None and (
            dst_binding is None or self.dst_group not in dst_binding.groups
        ):
            return False
        return True


class EthanePolicy:
    """Centralized admission control over registered hosts and users."""

    def __init__(
        self,
        rules: Iterable[EthaneRule] = (),
        *,
        default_action: str = ACTION_BLOCK,
        name: str = "ethane",
    ) -> None:
        self.name = name
        self.rules: list[EthaneRule] = list(rules)
        self.default_action = default_action
        self._bindings: dict[IPv4Address, HostBinding] = {}
        self.decisions = 0

    # ------------------------------------------------------------------
    # Registration (Ethane's host/user authentication step)
    # ------------------------------------------------------------------

    def register_host(
        self,
        ip: IPv4Address | str,
        user: str,
        *,
        groups: Iterable[str] = (),
        switch: str = "",
        port: int = 0,
    ) -> HostBinding:
        """Bind a host address to an authenticated user and attachment point."""
        binding = HostBinding(ip=IPv4Address(ip), user=user, groups=tuple(groups), switch=switch, port=port)
        self._bindings[binding.ip] = binding
        return binding

    def binding_for(self, ip: IPv4Address | str) -> Optional[HostBinding]:
        """Return the binding for an address, if the host registered."""
        return self._bindings.get(IPv4Address(ip))

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def allow(self, **kwargs) -> EthaneRule:
        """Append an allow rule."""
        rule = EthaneRule(action=ACTION_PASS, **kwargs)
        self.rules.append(rule)
        return rule

    def deny(self, **kwargs) -> EthaneRule:
        """Append a deny rule."""
        rule = EthaneRule(action=ACTION_BLOCK, **kwargs)
        self.rules.append(rule)
        return rule

    # ------------------------------------------------------------------
    # BaselinePolicy interface
    # ------------------------------------------------------------------

    def decide(self, flow: FlowSpec, context: Optional[FlowContext] = None) -> str:
        """First matching rule wins; bindings substitute for ident++'s userID.

        The optional ``context`` is ignored on purpose: Ethane cannot see
        application names, versions or patch levels even if a test
        provides them.
        """
        self.decisions += 1
        src_binding = self._bindings.get(flow.src_ip)
        dst_binding = self._bindings.get(flow.dst_ip)
        for rule in self.rules:
            if rule.matches(flow, src_binding, dst_binding):
                return rule.action
        return self.default_action

    def uses_information(self) -> tuple[str, ...]:
        return ("5-tuple", "switch port bindings", "authenticated users")
