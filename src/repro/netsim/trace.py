"""Packet traces.

A :class:`PacketTrace` is the simulator's equivalent of a pcap capture:
nodes and links can append :class:`TraceRecord` entries, and tests /
benchmarks filter the trace to check, for example, that no disallowed
flow ever crossed a given link (the §5 security matrix does exactly
that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.netsim.packet import Packet


@dataclass(frozen=True)
class TraceRecord:
    """One observed packet.

    Attributes:
        time: Simulated time of the observation.
        where: Name of the node, port or link that observed the packet.
        event: What happened (``"tx"``, ``"rx"``, ``"drop"``, ``"forward"``,
            ``"punt"``...).  Free-form but lowercase by convention.
        packet: The observed packet.
        note: Optional human-readable annotation.
    """

    time: float
    where: str
    event: str
    packet: Packet
    note: str = ""


@dataclass
class PacketTrace:
    """An append-only list of :class:`TraceRecord` entries."""

    name: str = "trace"
    records: list[TraceRecord] = field(default_factory=list)
    enabled: bool = True

    def record(
        self,
        time: float,
        where: str,
        event: str,
        packet: Packet,
        note: str = "",
    ) -> None:
        """Append one record (no-op when the trace is disabled)."""
        if not self.enabled:
            return
        self.records.append(TraceRecord(time, where, event, packet, note))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(
        self,
        *,
        where: Optional[str] = None,
        event: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        """Return the records matching all provided criteria."""
        selected: Iterable[TraceRecord] = self.records
        if where is not None:
            selected = (r for r in selected if r.where == where)
        if event is not None:
            selected = (r for r in selected if r.event == event)
        if predicate is not None:
            selected = (r for r in selected if predicate(r))
        return list(selected)

    def flows_seen(self) -> set[tuple]:
        """Return the set of distinct 5-tuples observed anywhere in the trace."""
        return {record.packet.five_tuple() for record in self.records if record.packet.is_ip()}

    def bytes_observed(self, *, where: Optional[str] = None, event: Optional[str] = None) -> int:
        """Return the total wire bytes of matching records."""
        return sum(record.packet.wire_size() for record in self.filter(where=where, event=event))

    def clear(self) -> None:
        """Discard all records."""
        self.records.clear()

    def summary(self) -> dict[str, int]:
        """Return a per-event record count."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.event] = counts.get(record.event, 0) + 1
        return counts
