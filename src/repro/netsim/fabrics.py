"""Multi-stage switching fabric builders (spine-leaf and fat-tree).

The ident++ controller installs flow entries "along the path" of an
approved flow (§3.4), but a path is only worth installing when there
*is* one: the early workloads hung every host off a single enforcement
switch, so the path-install machinery degenerated to one hop.  These
builders produce the two standard multi-stage Clos fabrics so
enforcement can be exercised — and benchmarked — across real multi-hop
paths:

* :func:`build_spine_leaf` — a two-stage leaf-spine fabric; every leaf
  uplinks to every spine, hosts attach to leaves.  Any leaf-to-leaf
  flow crosses exactly three switches (leaf → spine → leaf).
* :func:`build_fat_tree` — the canonical k-ary fat-tree: ``(k/2)²``
  cores, ``k`` pods of ``k/2`` aggregation and ``k/2`` edge switches,
  hosts attach to edges.  Cross-pod flows traverse five switches.

The builders are deliberately agnostic about what a "switch" is: they
take a ``switch_factory(name) -> Node`` callable, so :mod:`repro.netsim`
stays below :mod:`repro.openflow` in the dependency order and tests can
build fabrics out of plain nodes.  Pass an existing :class:`Topology` to
grow a fabric inside a network that already owns its topology (what
:meth:`repro.core.network.IdentPPNetwork.add_spine_leaf_fabric` does).

Equal-cost multipath is resolved by :meth:`Topology.shortest_path`'s
deterministic tie-break (lexicographically smallest node-name sequence),
so a given flow always maps to the same spine/core — reproducible
install sets, at the price of not load-balancing the fabric links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.exceptions import TopologyError
from repro.netsim.links import DEFAULT_BANDWIDTH, DEFAULT_LATENCY
from repro.netsim.nodes import Node
from repro.netsim.topology import Topology


@dataclass
class SpineLeafFabric:
    """A built spine-leaf fabric: the topology plus stage membership."""

    topology: Topology
    spines: list[Node]
    leaves: list[Node]

    def switches(self) -> list[Node]:
        """Return every fabric switch, spines first then leaves."""
        return [*self.spines, *self.leaves]

    def describe(self) -> dict[str, object]:
        """Return the fabric's shape (used in reports and examples)."""
        return {
            "kind": "spine-leaf",
            "spines": [node.name for node in self.spines],
            "leaves": [node.name for node in self.leaves],
            "links": len(self.spines) * len(self.leaves),
        }


@dataclass
class FatTreeFabric:
    """A built k-ary fat-tree: the topology plus per-stage membership."""

    topology: Topology
    k: int
    cores: list[Node]
    aggregations: list[Node]
    edges: list[Node]

    def switches(self) -> list[Node]:
        """Return every fabric switch: cores, then aggregations, then edges."""
        return [*self.cores, *self.aggregations, *self.edges]

    def pod_edges(self, pod: int) -> list[Node]:
        """Return the edge switches of one pod (where that pod's hosts attach)."""
        half = self.k // 2
        if not 0 <= pod < self.k:
            raise TopologyError(f"fat-tree has pods 0..{self.k - 1} (got {pod})")
        return self.edges[pod * half : (pod + 1) * half]

    def describe(self) -> dict[str, object]:
        """Return the fabric's shape (used in reports and examples)."""
        return {
            "kind": "fat-tree",
            "k": self.k,
            "cores": [node.name for node in self.cores],
            "aggregations": [node.name for node in self.aggregations],
            "edges": [node.name for node in self.edges],
        }


def build_spine_leaf(
    switch_factory: Callable[[str], Node],
    *,
    spines: int = 2,
    leaves: int = 4,
    topology: Optional[Topology] = None,
    prefix: str = "fabric",
    name: str = "spine-leaf",
    latency: float = DEFAULT_LATENCY,
    bandwidth: Optional[float] = DEFAULT_BANDWIDTH,
) -> SpineLeafFabric:
    """Build a spine-leaf fabric: every leaf uplinks to every spine.

    Args:
        switch_factory: Called once per switch with the node name;
            returns the (not yet attached) switch node.
        spines: Number of spine switches (≥ 1).
        leaves: Number of leaf switches (≥ 2 — one leaf is no fabric).
        topology: Grow the fabric inside this topology instead of
            creating a fresh one.
        prefix: Node-name prefix (``{prefix}-spine0``, ``{prefix}-leaf0``).
        name: Name of the topology when one is created here.
        latency / bandwidth: Applied to every leaf↔spine link.
    """
    if spines < 1:
        raise TopologyError(f"a spine-leaf fabric needs at least 1 spine (got {spines})")
    if leaves < 2:
        raise TopologyError(f"a spine-leaf fabric needs at least 2 leaves (got {leaves})")
    topo = topology if topology is not None else Topology(name=name)
    spine_nodes = [
        topo.add_node(switch_factory(f"{prefix}-spine{index}")) for index in range(spines)
    ]
    leaf_nodes = [
        topo.add_node(switch_factory(f"{prefix}-leaf{index}")) for index in range(leaves)
    ]
    for leaf in leaf_nodes:
        for spine in spine_nodes:
            topo.add_link(leaf, spine, latency=latency, bandwidth=bandwidth)
    return SpineLeafFabric(topology=topo, spines=spine_nodes, leaves=leaf_nodes)


def build_fat_tree(
    switch_factory: Callable[[str], Node],
    *,
    k: int = 4,
    topology: Optional[Topology] = None,
    prefix: str = "ft",
    name: str = "fat-tree",
    latency: float = DEFAULT_LATENCY,
    bandwidth: Optional[float] = DEFAULT_BANDWIDTH,
) -> FatTreeFabric:
    """Build the canonical k-ary fat-tree switching fabric.

    ``k`` must be even and ≥ 2.  The fabric has ``(k/2)²`` core
    switches and ``k`` pods, each with ``k/2`` aggregation and ``k/2``
    edge switches.  Every edge connects to every aggregation in its
    pod; aggregation ``i`` of each pod connects to core group ``i``
    (cores ``i*(k/2) .. (i+1)*(k/2)-1``).
    """
    if k < 2 or k % 2:
        raise TopologyError(f"fat-tree k must be even and >= 2 (got {k})")
    half = k // 2
    topo = topology if topology is not None else Topology(name=name)
    cores = [
        topo.add_node(switch_factory(f"{prefix}-core{index}")) for index in range(half * half)
    ]
    aggregations: list[Node] = []
    edges: list[Node] = []
    for pod in range(k):
        pod_aggs = [
            topo.add_node(switch_factory(f"{prefix}-pod{pod}-agg{index}"))
            for index in range(half)
        ]
        pod_edges = [
            topo.add_node(switch_factory(f"{prefix}-pod{pod}-edge{index}"))
            for index in range(half)
        ]
        for edge in pod_edges:
            for agg in pod_aggs:
                topo.add_link(edge, agg, latency=latency, bandwidth=bandwidth)
        for index, agg in enumerate(pod_aggs):
            for core in cores[index * half : (index + 1) * half]:
                topo.add_link(agg, core, latency=latency, bandwidth=bandwidth)
        aggregations.extend(pod_aggs)
        edges.extend(pod_edges)
    return FatTreeFabric(
        topology=topo, k=k, cores=cores, aggregations=aggregations, edges=edges
    )
