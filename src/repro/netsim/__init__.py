"""Discrete-event network simulator substrate.

The paper evaluates ident++ on an OpenFlow enterprise network.  No such
testbed is available offline, so this package provides the substrate the
rest of the library runs on: a small but complete discrete-event network
simulator with

* IPv4 / MAC addressing and CIDR prefixes (:mod:`repro.netsim.addresses`),
* packets carrying the Ethernet/IP/TCP/UDP header fields OpenFlow matches
  on (:mod:`repro.netsim.packet`),
* a deterministic event scheduler (:mod:`repro.netsim.events`),
* nodes with named ports and point-to-point links with latency and
  bandwidth (:mod:`repro.netsim.nodes`, :mod:`repro.netsim.links`),
* a :class:`~repro.netsim.topology.Topology` builder backed by
  :mod:`networkx` for path computations,
* multi-stage fabric builders — spine-leaf and k-ary fat-tree — for
  path-wide enforcement at scale (:mod:`repro.netsim.fabrics`), and
* statistics and packet-trace helpers
  (:mod:`repro.netsim.statistics`, :mod:`repro.netsim.trace`).

Everything above this package (OpenFlow switches, end-hosts, the ident++
controller) plugs into the simulator by subclassing
:class:`~repro.netsim.nodes.Node`.
"""

from repro.netsim.addresses import (
    BROADCAST_MAC,
    IPv4Address,
    IPv4Network,
    MACAddress,
)
from repro.netsim.events import Event, Simulator
from repro.netsim.fabrics import (
    FatTreeFabric,
    SpineLeafFabric,
    build_fat_tree,
    build_spine_leaf,
)
from repro.netsim.links import Link
from repro.netsim.nodes import Node, Port
from repro.netsim.sanitizer import (
    EventTraceHasher,
    SanitizerReport,
    ShadowReplayReport,
    SimulationSanitizer,
    shadow_replay,
)
from repro.netsim.packet import (
    ETH_TYPE_ARP,
    ETH_TYPE_IP,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Packet,
)
from repro.netsim.statistics import Counter, Histogram, RateCounter, StatsRegistry
from repro.netsim.topology import Topology
from repro.netsim.trace import PacketTrace, TraceRecord

__all__ = [
    "BROADCAST_MAC",
    "IPv4Address",
    "IPv4Network",
    "MACAddress",
    "Event",
    "Simulator",
    "FatTreeFabric",
    "SpineLeafFabric",
    "build_fat_tree",
    "build_spine_leaf",
    "Link",
    "Node",
    "Port",
    "ETH_TYPE_ARP",
    "ETH_TYPE_IP",
    "IP_PROTO_ICMP",
    "IP_PROTO_TCP",
    "IP_PROTO_UDP",
    "Packet",
    "Counter",
    "EventTraceHasher",
    "Histogram",
    "RateCounter",
    "SanitizerReport",
    "ShadowReplayReport",
    "SimulationSanitizer",
    "shadow_replay",
    "StatsRegistry",
    "Topology",
    "PacketTrace",
    "TraceRecord",
]
