"""Packets carrying the header fields OpenFlow and ident++ care about.

OpenFlow 1.0 (and therefore the paper, §3.1) defines a flow by the
10-tuple ``{ingress port, MAC src/dst, Ethernet type, VLAN id, IP src/dst,
IP protocol, transport src/dst port}``; ident++ (§2) uses the 5-tuple
subset ``{IP src/dst, IP protocol, transport src/dst port}``.  A
:class:`Packet` therefore carries exactly those header fields plus an
opaque payload, and knows how to serialise itself so that link
transmission delays can be computed from a realistic wire size.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.exceptions import PacketError
from repro.netsim.addresses import BROADCAST_MAC, IPv4Address, MACAddress

#: EtherType for IPv4.
ETH_TYPE_IP = 0x0800
#: EtherType for ARP.
ETH_TYPE_ARP = 0x0806

#: IP protocol numbers used throughout the library.
IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

_PROTO_NAMES = {IP_PROTO_ICMP: "icmp", IP_PROTO_TCP: "tcp", IP_PROTO_UDP: "udp"}
_PROTO_NUMBERS = {name: number for number, name in _PROTO_NAMES.items()}

#: Fixed header sizes (bytes) used to estimate wire size.
_ETH_HEADER_LEN = 14
_VLAN_TAG_LEN = 4
_IP_HEADER_LEN = 20
_TCP_HEADER_LEN = 20
_UDP_HEADER_LEN = 8

_packet_ids = itertools.count(1)


def proto_name(number: int) -> str:
    """Return the conventional name (``tcp``/``udp``/``icmp``) for an IP protocol number."""
    return _PROTO_NAMES.get(number, str(number))


def proto_number(name: str | int) -> int:
    """Return the IP protocol number for a name, passing numbers through."""
    if isinstance(name, int):
        return name
    key = name.strip().lower()
    if key in _PROTO_NUMBERS:
        return _PROTO_NUMBERS[key]
    try:
        return int(key)
    except ValueError as exc:
        raise PacketError(f"unknown IP protocol: {name!r}") from exc


@dataclass
class Packet:
    """A network packet in the simulator.

    The addressing fields accept strings and are normalised to
    :class:`~repro.netsim.addresses.MACAddress` /
    :class:`~repro.netsim.addresses.IPv4Address` on construction.

    Attributes:
        eth_src: Source MAC address.
        eth_dst: Destination MAC address.
        eth_type: EtherType (defaults to IPv4).
        vlan_id: VLAN identifier, ``0`` meaning untagged.
        ip_src: Source IPv4 address (``None`` for non-IP frames).
        ip_dst: Destination IPv4 address (``None`` for non-IP frames).
        ip_proto: IP protocol number.
        tp_src: Transport-layer source port (0 when not applicable).
        tp_dst: Transport-layer destination port (0 when not applicable).
        payload: Opaque application payload.  The ident++ query/response
            documents ride here as text.
        payload_size: Explicit payload size override in bytes; when left
            at ``None`` the size of the serialised payload text is used.
        metadata: Free-form annotations (never examined by switches);
            the trace and analysis modules use it to tag packets with the
            scenario that generated them.
    """

    eth_src: MACAddress = field(default_factory=lambda: MACAddress(0))
    eth_dst: MACAddress = field(default_factory=lambda: BROADCAST_MAC)
    eth_type: int = ETH_TYPE_IP
    vlan_id: int = 0
    ip_src: Optional[IPv4Address] = None
    ip_dst: Optional[IPv4Address] = None
    ip_proto: int = IP_PROTO_TCP
    tp_src: int = 0
    tp_dst: int = 0
    payload: Any = b""
    payload_size: Optional[int] = None
    metadata: dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        self.eth_src = MACAddress(self.eth_src)
        self.eth_dst = MACAddress(self.eth_dst)
        if self.ip_src is not None:
            self.ip_src = IPv4Address(self.ip_src)
        if self.ip_dst is not None:
            self.ip_dst = IPv4Address(self.ip_dst)
        if isinstance(self.ip_proto, str):
            self.ip_proto = proto_number(self.ip_proto)
        for name in ("tp_src", "tp_dst"):
            value = getattr(self, name)
            if not 0 <= int(value) <= 0xFFFF:
                raise PacketError(f"{name} out of range: {value}")
        if not 0 <= self.vlan_id <= 0xFFF:
            raise PacketError(f"vlan_id out of range: {self.vlan_id}")

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def tcp(
        cls,
        ip_src: IPv4Address | str,
        ip_dst: IPv4Address | str,
        tp_src: int,
        tp_dst: int,
        *,
        payload: Any = b"",
        **kwargs: Any,
    ) -> "Packet":
        """Build a TCP packet with the given 4-tuple."""
        return cls(
            ip_src=IPv4Address(ip_src),
            ip_dst=IPv4Address(ip_dst),
            ip_proto=IP_PROTO_TCP,
            tp_src=tp_src,
            tp_dst=tp_dst,
            payload=payload,
            **kwargs,
        )

    @classmethod
    def udp(
        cls,
        ip_src: IPv4Address | str,
        ip_dst: IPv4Address | str,
        tp_src: int,
        tp_dst: int,
        *,
        payload: Any = b"",
        **kwargs: Any,
    ) -> "Packet":
        """Build a UDP packet with the given 4-tuple."""
        return cls(
            ip_src=IPv4Address(ip_src),
            ip_dst=IPv4Address(ip_dst),
            ip_proto=IP_PROTO_UDP,
            tp_src=tp_src,
            tp_dst=tp_dst,
            payload=payload,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def is_ip(self) -> bool:
        """Return ``True`` if the packet carries an IPv4 payload."""
        return self.eth_type == ETH_TYPE_IP and self.ip_src is not None and self.ip_dst is not None

    def is_tcp(self) -> bool:
        """Return ``True`` for TCP-over-IPv4 packets."""
        return self.is_ip() and self.ip_proto == IP_PROTO_TCP

    def is_udp(self) -> bool:
        """Return ``True`` for UDP-over-IPv4 packets."""
        return self.is_ip() and self.ip_proto == IP_PROTO_UDP

    def proto_name(self) -> str:
        """Return the transport protocol name (``tcp``, ``udp``, ``icmp`` or the number)."""
        return proto_name(self.ip_proto)

    def five_tuple(self) -> tuple:
        """Return the ident++ 5-tuple ``(ip_src, ip_dst, ip_proto, tp_src, tp_dst)``."""
        return (self.ip_src, self.ip_dst, self.ip_proto, self.tp_src, self.tp_dst)

    def payload_bytes(self) -> bytes:
        """Return the payload encoded as bytes (UTF-8 for text payloads)."""
        if isinstance(self.payload, bytes):
            return self.payload
        if isinstance(self.payload, str):
            return self.payload.encode("utf-8")
        return repr(self.payload).encode("utf-8")

    def wire_size(self) -> int:
        """Return the estimated on-the-wire size in bytes.

        Link transmission delay is ``wire_size() * 8 / bandwidth``.  The
        size is computed once and cached on the packet (headers and
        payload are fixed by the time a packet is transmitted; ``copy()``
        and ``reply_template()`` build fresh packets, so the cache never
        leaks across mutations made through those paths).
        """
        cached = self.__dict__.get("_wire_size")
        if cached is not None:
            return cached
        size = _ETH_HEADER_LEN
        if self.vlan_id:
            size += _VLAN_TAG_LEN
        if self.is_ip():
            size += _IP_HEADER_LEN
            if self.ip_proto == IP_PROTO_TCP:
                size += _TCP_HEADER_LEN
            elif self.ip_proto == IP_PROTO_UDP:
                size += _UDP_HEADER_LEN
        if self.payload_size is not None:
            size += self.payload_size
        else:
            size += len(self.payload_bytes())
        size = max(size, 64)
        self._wire_size = size
        return size

    def reply_template(self) -> "Packet":
        """Return a new packet with addresses and ports swapped.

        Used by end-hosts and daemons to answer a request on the same
        flow in the reverse direction.
        """
        return Packet(
            eth_src=self.eth_dst,
            eth_dst=self.eth_src,
            eth_type=self.eth_type,
            vlan_id=self.vlan_id,
            ip_src=self.ip_dst,
            ip_dst=self.ip_src,
            ip_proto=self.ip_proto,
            tp_src=self.tp_dst,
            tp_dst=self.tp_src,
        )

    def copy(self, **overrides: Any) -> "Packet":
        """Return a shallow copy with a fresh packet id and optional field overrides."""
        overrides.setdefault("packet_id", next(_packet_ids))
        overrides.setdefault("metadata", dict(self.metadata))
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def serialize(self) -> bytes:
        """Serialise the header fields and payload to a byte string.

        The format is a compact library-private encoding (not real
        Ethernet framing); it exists so traces can be persisted and so
        property tests can check round-tripping.
        """
        payload = self.payload_bytes()
        header = b"".join(
            [
                self.eth_src.to_bytes(),
                self.eth_dst.to_bytes(),
                self.eth_type.to_bytes(2, "big"),
                self.vlan_id.to_bytes(2, "big"),
                (self.ip_src.to_int() if self.ip_src else 0).to_bytes(4, "big"),
                (self.ip_dst.to_int() if self.ip_dst else 0).to_bytes(4, "big"),
                self.ip_proto.to_bytes(1, "big"),
                self.tp_src.to_bytes(2, "big"),
                self.tp_dst.to_bytes(2, "big"),
                len(payload).to_bytes(4, "big"),
            ]
        )
        return header + payload

    @classmethod
    def deserialize(cls, data: bytes) -> "Packet":
        """Parse a byte string produced by :meth:`serialize`."""
        if len(data) < 31:
            raise PacketError(f"packet truncated: {len(data)} bytes")
        eth_src = MACAddress(int.from_bytes(data[0:6], "big"))
        eth_dst = MACAddress(int.from_bytes(data[6:12], "big"))
        eth_type = int.from_bytes(data[12:14], "big")
        vlan_id = int.from_bytes(data[14:16], "big")
        ip_src_raw = int.from_bytes(data[16:20], "big")
        ip_dst_raw = int.from_bytes(data[20:24], "big")
        ip_proto = data[24]
        tp_src = int.from_bytes(data[25:27], "big")
        tp_dst = int.from_bytes(data[27:29], "big")
        payload_len = int.from_bytes(data[29:33], "big")
        payload = data[33 : 33 + payload_len]
        if len(payload) != payload_len:
            raise PacketError("packet payload truncated")
        is_ip_frame = eth_type == ETH_TYPE_IP
        return cls(
            eth_src=eth_src,
            eth_dst=eth_dst,
            eth_type=eth_type,
            vlan_id=vlan_id,
            ip_src=IPv4Address(ip_src_raw) if is_ip_frame else None,
            ip_dst=IPv4Address(ip_dst_raw) if is_ip_frame else None,
            ip_proto=ip_proto,
            tp_src=tp_src,
            tp_dst=tp_dst,
            payload=payload,
        )

    def __str__(self) -> str:
        if self.is_ip():
            return (
                f"{self.proto_name()} {self.ip_src}:{self.tp_src} -> "
                f"{self.ip_dst}:{self.tp_dst} ({self.wire_size()}B)"
            )
        return f"eth {self.eth_src} -> {self.eth_dst} type=0x{self.eth_type:04x}"
