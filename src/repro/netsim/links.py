"""Point-to-point links with latency, bandwidth and loss.

A link connects exactly two :class:`~repro.netsim.nodes.Port` objects.
Packet delivery is scheduled on the simulator: the delay is
``propagation latency + wire_size * 8 / bandwidth``, and an optional
deterministic loss pattern lets failure-injection tests drop packets.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.exceptions import SimulationError, TopologyError
from repro.netsim.events import Simulator
from repro.netsim.nodes import Port
from repro.netsim.packet import Packet
from repro.netsim.statistics import Counter

#: Default link latency: 50 microseconds, a typical enterprise LAN hop.
DEFAULT_LATENCY = 50e-6
#: Default link bandwidth: 1 Gb/s.
DEFAULT_BANDWIDTH = 1e9


class Link:
    """A bidirectional point-to-point link between two ports.

    Attributes:
        latency: One-way propagation delay in seconds.
        bandwidth: Capacity in bits per second; ``None`` models an
            infinitely fast link (zero serialisation delay).
        loss_filter: Optional callable ``f(packet) -> bool``; returning
            ``True`` drops the packet.  Used by the failure-injection
            tests and the security harness.
    """

    def __init__(
        self,
        port_a: Port,
        port_b: Port,
        *,
        latency: float = DEFAULT_LATENCY,
        bandwidth: Optional[float] = DEFAULT_BANDWIDTH,
        name: str = "",
        loss_filter: Optional[Callable[[Packet], bool]] = None,
    ) -> None:
        if port_a is port_b:
            raise TopologyError("cannot link a port to itself")
        if latency < 0:
            raise TopologyError(f"negative latency: {latency}")
        if bandwidth is not None and bandwidth <= 0:
            raise TopologyError(f"non-positive bandwidth: {bandwidth}")
        self.port_a = port_a
        self.port_b = port_b
        self.latency = latency
        self.bandwidth = bandwidth
        self.name = name or f"{port_a.name}<->{port_b.name}"
        self.loss_filter = loss_filter
        self.up = True
        self.tx_packets = Counter(f"{self.name}.tx_packets")
        self.tx_bytes = Counter(f"{self.name}.tx_bytes")
        self.dropped_packets = Counter(f"{self.name}.dropped_packets")
        port_a.attach_link(self)
        port_b.attach_link(self)

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------

    def other_end(self, port: Port) -> Port:
        """Return the port at the opposite end from ``port``."""
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise TopologyError(f"port {port.name} is not an endpoint of link {self.name}")

    def endpoints(self) -> tuple[Port, Port]:
        """Return both endpoint ports."""
        return (self.port_a, self.port_b)

    def set_up(self, up: bool) -> None:
        """Administratively bring the link up or down (failure injection)."""
        self.up = up

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def transfer_delay(self, packet: Packet) -> float:
        """Return the total one-way delay for ``packet`` on this link."""
        serialization = 0.0
        if self.bandwidth is not None:
            serialization = packet.wire_size() * 8.0 / self.bandwidth
        return self.latency + serialization

    def transmit(self, packet: Packet, from_port: Port) -> None:
        """Send a packet from one endpoint toward the other.

        Delivery is scheduled on the simulator of the *receiving* node;
        both nodes must therefore be attached to the same simulator (the
        topology builder guarantees this).
        """
        destination = self.other_end(from_port)
        if not self.up or (self.loss_filter is not None and self.loss_filter(packet)):
            self.dropped_packets.increment()
            return
        self.tx_packets.increment()
        self.tx_bytes.increment(packet.wire_size())
        sim: Optional[Simulator] = destination.node.sim or from_port.node.sim
        if sim is None:
            raise SimulationError(
                f"link {self.name} cannot deliver: neither endpoint is attached to a simulator"
            )
        sim.schedule(
            self.transfer_delay(packet),
            destination.deliver,
            packet,
            label=f"deliver:{self.name}",
        )

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"Link({self.name}, latency={self.latency}, {state})"
