"""Topology builder.

A :class:`Topology` owns a :class:`~repro.netsim.events.Simulator`, the
set of :class:`~repro.netsim.nodes.Node` objects and the
:class:`~repro.netsim.links.Link` objects between them, and mirrors the
connectivity into a :class:`networkx.Graph` so path queries (which the
ident++ controller uses to install flow entries "along the path", §3.4)
are one call away.

The builder also hands out unique MAC addresses and keeps an IP → node
index so controllers and daemons can resolve the hosts behind a flow.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Optional

import networkx as nx

from repro.exceptions import TopologyError
from repro.netsim.addresses import IPv4Address, MACAddress
from repro.netsim.events import Simulator
from repro.netsim.links import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, Link
from repro.netsim.nodes import Node, Port
from repro.netsim.trace import PacketTrace


class Topology:
    """A collection of nodes and links bound to a single simulator."""

    def __init__(self, name: str = "topology", sim: Optional[Simulator] = None) -> None:
        self.name = name
        self.sim = sim if sim is not None else Simulator()
        self.trace = PacketTrace(name=f"{name}.trace")
        self._nodes: dict[str, Node] = {}
        self._links: list[Link] = []
        self._graph = nx.Graph()
        self._mac_index = 0
        self._ip_to_node: dict[IPv4Address, Node] = {}
        # (source, target) name pair -> shortest path (as names); valid
        # until the graph gains or loses a node or link.  Path-wide flow
        # install resolves one path per decision, so repeat pairs are the
        # hot case.
        self._path_cache: dict[tuple[str, str], list[str]] = {}
        # Bumped on every connectivity mutation.  Derived caches (the
        # path cache here, the query client's mean-link-latency) key on
        # this instead of sizes: removing one link and adding another
        # leaves counts unchanged but must still invalidate.
        self._mutation_epoch = 0

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register a node, binding it to the topology's simulator."""
        if node.name in self._nodes:
            raise TopologyError(f"duplicate node name: {node.name}")
        node.attach(self.sim)
        self._nodes[node.name] = node
        self._graph.add_node(node.name)
        self._note_mutation()
        return node

    def node(self, name: str) -> Node:
        """Return the node with the given name."""
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise TopologyError(f"unknown node: {name}") from exc

    def has_node(self, name: str) -> bool:
        """Return ``True`` if a node with this name is registered."""
        return name in self._nodes

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in name order."""
        for name in sorted(self._nodes):
            yield self._nodes[name]

    def node_names(self) -> list[str]:
        """Return all node names sorted."""
        return sorted(self._nodes)

    def next_mac(self) -> MACAddress:
        """Return a fresh, unique, locally administered MAC address."""
        self._mac_index += 1
        return MACAddress.from_index(self._mac_index)

    def register_ip(self, address: IPv4Address | str, node: Node) -> None:
        """Record that ``address`` belongs to ``node`` (used by host lookups)."""
        address = IPv4Address(address)
        existing = self._ip_to_node.get(address)
        if existing is not None and existing is not node:
            raise TopologyError(f"IP {address} already assigned to {existing.name}")
        self._ip_to_node[address] = node

    def node_for_ip(self, address: IPv4Address | str) -> Optional[Node]:
        """Return the node owning ``address``, or ``None``."""
        return self._ip_to_node.get(IPv4Address(address))

    def registered_ips(self) -> dict[IPv4Address, Node]:
        """Return a copy of the IP → node index."""
        return dict(self._ip_to_node)

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------

    def add_link(
        self,
        node_a: Node | str,
        node_b: Node | str,
        *,
        latency: float = DEFAULT_LATENCY,
        bandwidth: Optional[float] = DEFAULT_BANDWIDTH,
        port_a: Optional[int] = None,
        port_b: Optional[int] = None,
    ) -> Link:
        """Create a link between two registered nodes.

        New ports are allocated on each node unless explicit port numbers
        are given.  Returns the created :class:`Link`.
        """
        node_a = self._resolve(node_a)
        node_b = self._resolve(node_b)
        if node_a is node_b:
            raise TopologyError(f"cannot link node {node_a.name} to itself")
        end_a = node_a.port(port_a) if port_a is not None else node_a.add_port()
        end_b = node_b.port(port_b) if port_b is not None else node_b.add_port()
        link = Link(end_a, end_b, latency=latency, bandwidth=bandwidth)
        self._links.append(link)
        self._graph.add_edge(node_a.name, node_b.name, latency=latency, link=link)
        self._note_mutation()
        return link

    def remove_link(self, node_a: Node | str, node_b: Node | str) -> Link:
        """Remove the link directly connecting two nodes.

        The endpoint ports are detached (and stay on their nodes, ready
        to be re-wired), the graph edge disappears, and the mutation
        epoch advances so every connectivity-derived cache re-reads the
        topology.  Returns the removed :class:`Link`.
        """
        name_a = self._resolve(node_a).name
        name_b = self._resolve(node_b).name
        link = self.link_between(name_a, name_b)
        if link is None:
            raise TopologyError(f"nodes {name_a} and {name_b} are not adjacent")
        for port in link.endpoints():
            port.detach_link()
        self._links.remove(link)
        self._graph.remove_edge(name_a, name_b)
        self._note_mutation()
        return link

    def _note_mutation(self) -> None:
        """Record a connectivity change: bump the epoch, drop derived caches."""
        self._mutation_epoch += 1
        self._path_cache.clear()

    @property
    def mutation_epoch(self) -> int:
        """Return the connectivity mutation counter (bumped per node/link change).

        Anything caching a value derived from connectivity (paths, mean
        link latency) must key the cache on this epoch, **not** on node
        or link counts: a remove-then-add leaves the counts unchanged
        while the derived values move.
        """
        return self._mutation_epoch

    def links(self) -> list[Link]:
        """Return all links in creation order."""
        return list(self._links)

    def link_count(self) -> int:
        """Return the number of links without copying the link list."""
        return len(self._links)

    def link_between(self, node_a: Node | str, node_b: Node | str) -> Optional[Link]:
        """Return the link directly connecting two nodes, or ``None``."""
        name_a = self._resolve(node_a).name
        name_b = self._resolve(node_b).name
        data = self._graph.get_edge_data(name_a, name_b)
        if data is None:
            return None
        return data.get("link")

    def _resolve(self, node: Node | str) -> Node:
        if isinstance(node, Node):
            if node.name not in self._nodes:
                raise TopologyError(f"node {node.name} is not part of topology {self.name}")
            return node
        return self.node(node)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """Return the underlying :mod:`networkx` graph (node names as vertices)."""
        return self._graph

    def shortest_path(self, source: Node | str, target: Node | str) -> list[Node]:
        """Return the latency-weighted shortest path as a list of nodes (inclusive).

        Equal-latency ties (the normal case on spine-leaf and fat-tree
        fabrics, where every leaf pair has one path per spine) break
        deterministically: the fewest hops win, then the
        lexicographically smallest node-name sequence.  Path-wide flow
        install depends on this — every decision about a flow, on any
        controller, must resolve the *same* hop set.  Results are cached
        until the topology's connectivity mutates (node or link added or
        removed).
        """
        source_name = self._resolve(source).name
        target_name = self._resolve(target).name
        names = self._path_cache.get((source_name, target_name))
        if names is None:
            names = self._lex_shortest_path(source_name, target_name)
            self._path_cache[(source_name, target_name)] = names
        return [self._nodes[name] for name in names]

    def _lex_shortest_path(self, source: str, target: str) -> list[str]:
        """One uniform-cost search keyed on ``(latency, hops, path names)``.

        A single Dijkstra-style pass whose heap key carries the path
        itself: the first time ``target`` pops, its key is minimal, so
        the result is the fewest-hop, lexicographically smallest of the
        minimum-latency paths — *without* enumerating the (potentially
        combinatorial) set of equal-cost paths.  Key extension is
        monotone (latency ≥ 0, hops +1) and prefix comparison decides
        equal-length path ties, so the standard first-pop finalization
        argument carries over to the composite key.
        """
        graph = self._graph
        if source not in graph or target not in graph:
            missing = source if source not in graph else target
            raise TopologyError(f"node {missing} is not in the graph")
        heap: list[tuple[float, int, tuple[str, ...]]] = [(0.0, 0, (source,))]
        finalized: set[str] = set()
        while heap:
            latency, hops, path = heapq.heappop(heap)
            node = path[-1]
            if node in finalized:
                continue
            finalized.add(node)
            if node == target:
                return list(path)
            for neighbor, data in graph[node].items():
                if neighbor not in finalized:
                    heapq.heappush(
                        heap,
                        (latency + data["latency"], hops + 1, path + (neighbor,)),
                    )
        raise TopologyError(f"no path from {source} to {target}")

    def path_latency(self, source: Node | str, target: Node | str) -> float:
        """Return the sum of link latencies along the shortest path."""
        path = self.shortest_path(source, target)
        total = 0.0
        for left, right in zip(path, path[1:]):
            link = self.link_between(left, right)
            if link is None:
                raise TopologyError(f"missing link between {left.name} and {right.name}")
            total += link.latency
        return total

    def egress_port(self, node: Node | str, toward: Node | str) -> Port:
        """Return the port on ``node`` whose link leads directly to ``toward``.

        The ident++ controller uses this when installing flow entries hop
        by hop along the path of an approved flow.
        """
        node = self._resolve(node)
        toward = self._resolve(toward)
        link = self.link_between(node, toward)
        if link is None:
            raise TopologyError(f"nodes {node.name} and {toward.name} are not adjacent")
        for port in link.endpoints():
            if port.node is node:
                return port
        raise TopologyError(f"link {link.name} has no endpoint on {node.name}")

    def connected(self, source: Node | str, target: Node | str) -> bool:
        """Return ``True`` if a path exists between the two nodes."""
        try:
            self.shortest_path(source, target)
        except TopologyError:
            return False
        return True

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run the owned simulator (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until, max_events=max_events)

    def describe(self) -> dict[str, object]:
        """Return a dictionary summarising the topology (used in reports)."""
        return {
            "name": self.name,
            "nodes": self.node_names(),
            "links": [link.name for link in self._links],
            "diameter": self._diameter(),
        }

    def _diameter(self) -> int:
        if self._graph.number_of_nodes() < 2 or not nx.is_connected(self._graph):
            return 0
        return int(nx.diameter(self._graph))


def build_linear_topology(
    node_factories: Iterable[Node],
    *,
    name: str = "linear",
    latency: float = DEFAULT_LATENCY,
    bandwidth: Optional[float] = DEFAULT_BANDWIDTH,
) -> Topology:
    """Build a chain topology out of pre-constructed nodes (in order).

    Convenience used by tests and the Figure 1 benchmark:
    ``host -- switch -- ... -- switch -- host``.
    """
    topo = Topology(name=name)
    nodes = list(node_factories)
    if len(nodes) < 2:
        raise TopologyError("a linear topology needs at least two nodes")
    for node in nodes:
        topo.add_node(node)
    for left, right in zip(nodes, nodes[1:]):
        topo.add_link(left, right, latency=latency, bandwidth=bandwidth)
    return topo
