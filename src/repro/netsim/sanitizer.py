"""Runtime simulation sanitizer: trace hashing and ordering race detection.

The repo's correctness story rests on the simulator being *bit-for-bit
deterministic*: two runs of the same scenario must fire the same events
in the same order and leave the same state behind, or the experiment
harness and the committed benchmark trajectory measure noise.  Three
failure classes silently break that promise:

* **Hidden nondeterminism** — wall-clock reads or unseeded randomness
  leaking into simulation logic (the static rules R1/R2 in
  ``tools/analysis`` catch these at the source level; the trace hasher
  here catches anything they miss at runtime, because the two runs
  produce different hashes).
* **Same-instant ordering sensitivity** — two events scheduled at one
  virtual instant whose *relative* order decides the outcome.  The
  ``(time, seq)`` tie-break makes any one run reproducible, but the
  outcome then hangs off scheduling-call order, which refactors change
  freely.  The :func:`shadow_replay` helper is the virtual-time
  analogue of a race detector: it re-runs the scenario with same-instant
  ties served in the opposite order and flags state divergence.
* **Stale continuations** — a continuation firing for a
  :class:`~repro.core.controller.DecisionTask` whose generation token no
  longer matches (the punt was failed closed, exported, or re-punted).
  The decision core *discards* these by design; with the sanitizer
  attached the discard is also *reported*, so a scenario that quietly
  races its own deadline becomes visible instead of just slow.

Enable it per simulator::

    sim = Simulator(sanitize=True)
    ...
    sim.run()
    print(sim.sanitizer.trace_hash)       # deterministic event-trace digest
    print(sim.sanitizer.summary())

or retroactively on an already-built network::

    net = IdentPPNetwork("x")
    net.topology.sim.enable_sanitizer()
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (events imports us)
    from repro.netsim.events import Event, Simulator

#: Report kinds the library itself emits (scenarios may add their own).
KIND_STALE_CONTINUATION = "stale-continuation"
KIND_ORDER_DIVERGENCE = "order-divergence"


def callback_name(callback: Callable[..., Any]) -> str:
    """Return a stable, address-free name for an event callback.

    ``repr()`` of a bound method embeds the instance's memory address,
    which would make trace hashes differ between identical runs; the
    qualified name (plus the owner's ``name`` attribute when it has one)
    is deterministic and still tells a human which component fired.
    """
    owner = getattr(callback, "__self__", None)
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        qualname = type(callback).__qualname__
    owner_name = getattr(owner, "name", None)
    if isinstance(owner_name, str):
        return f"{qualname}@{owner_name}"
    return qualname


@dataclass(frozen=True)
class SanitizerReport:
    """One sanitizer finding (not an exception: the run continues)."""

    kind: str
    time: float
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] t={self.time:g}: {self.detail}"


class EventTraceHasher:
    """Folds the fired-event stream into one deterministic SHA-256 digest.

    Two runs of the same scenario produce the same digest if and only if
    they fired the same callbacks, under the same labels, at the same
    virtual times, in the same order.  Wall-clock reads, unseeded RNGs
    and iteration-order leaks all surface as a digest mismatch.
    """

    __slots__ = ("_hash", "events")

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.events = 0

    def fold(self, event: "Event") -> None:
        """Mix one fired event into the digest."""
        self.events += 1
        self._hash.update(
            f"{event.time!r}|{event.label}|{callback_name(event.callback)}\n".encode()
        )

    @property
    def hexdigest(self) -> str:
        """Return the digest over every event folded so far."""
        return self._hash.hexdigest()


class SimulationSanitizer:
    """Per-simulator instrumentation: trace hash, tie stats, findings.

    Attached by ``Simulator(sanitize=True)`` or
    :meth:`~repro.netsim.events.Simulator.enable_sanitizer`; the
    simulator calls :meth:`on_event` for every event it fires.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.hasher = EventTraceHasher()
        self.reports: list[SanitizerReport] = []
        #: Virtual instants at which >= 2 events fired (each is a spot a
        #: shadow replay would perturb).
        self.same_instant_groups = 0
        #: Largest number of events sharing one instant.
        self.max_same_instant = 0
        self._last_time: Optional[float] = None
        self._group_size = 0

    # ------------------------------------------------------------------
    # Hooks called by the simulator
    # ------------------------------------------------------------------

    def on_event(self, event: "Event") -> None:
        """Record one fired event (called by ``Simulator.step``)."""
        self.hasher.fold(event)
        if event.time == self._last_time:
            self._group_size += 1
            if self._group_size == 2:
                self.same_instant_groups += 1
            self.max_same_instant = max(self.max_same_instant, self._group_size)
        else:
            self._last_time = event.time
            self._group_size = 1
            self.max_same_instant = max(self.max_same_instant, 1)

    # ------------------------------------------------------------------
    # Findings
    # ------------------------------------------------------------------

    def report(self, kind: str, detail: str) -> SanitizerReport:
        """File a finding at the current simulated time and return it."""
        finding = SanitizerReport(kind=kind, time=self.sim.now, detail=detail)
        self.reports.append(finding)
        return finding

    def reports_of(self, kind: str) -> list[SanitizerReport]:
        """Return the findings of one kind, in filing order."""
        return [report for report in self.reports if report.kind == kind]

    @property
    def trace_hash(self) -> str:
        """Return the deterministic digest of the event trace so far."""
        return self.hasher.hexdigest

    def summary(self) -> dict[str, object]:
        """Return a JSON-serialisable snapshot (benchmarks embed this)."""
        by_kind: dict[str, int] = {}
        for finding in self.reports:
            by_kind[finding.kind] = by_kind.get(finding.kind, 0) + 1
        return {
            "trace_hash": self.trace_hash,
            "events_hashed": self.hasher.events,
            "same_instant_groups": self.same_instant_groups,
            "max_same_instant": self.max_same_instant,
            "reports": len(self.reports),
            "reports_by_kind": by_kind,
        }


@dataclass
class ShadowReplayReport:
    """The outcome of one baseline-vs-perturbed scenario pair."""

    #: ``digest(state)`` of the baseline (seq-order ties) run.
    baseline_digest: str
    #: ``digest(state)`` of the shadow (reversed ties) run.
    shadow_digest: str
    baseline_trace_hash: str
    shadow_trace_hash: str
    #: Same-instant groups seen by the baseline run — how many places
    #: the perturbation actually changed the service order.
    same_instant_groups: int
    #: Findings filed during either run (stale continuations etc.),
    #: plus the order-divergence finding when the digests differ.
    reports: list[SanitizerReport] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        """True when same-instant ordering changed the scenario's outcome."""
        return self.baseline_digest != self.shadow_digest

    def as_dict(self) -> dict[str, object]:
        """Return a JSON-serialisable summary."""
        return {
            "diverged": self.diverged,
            "baseline_digest": self.baseline_digest,
            "shadow_digest": self.shadow_digest,
            "baseline_trace_hash": self.baseline_trace_hash,
            "shadow_trace_hash": self.shadow_trace_hash,
            "same_instant_groups": self.same_instant_groups,
            "reports": [str(report) for report in self.reports],
        }


def shadow_replay(
    scenario: Callable[["Simulator"], Any],
    *,
    digest: Callable[[Any], str] = repr,
) -> ShadowReplayReport:
    """Run ``scenario`` twice — normal and with same-instant ties reversed.

    ``scenario`` receives a fresh sanitized :class:`Simulator`, must
    drive it (build nodes, schedule work, call ``run()``) and return the
    state the outcome is judged by; ``digest`` collapses that state to a
    comparable string.  The baseline run serves same-instant ties in
    schedule order (the deterministic contract); the shadow run serves
    them in *reverse* order — any legal tie-break.  A digest mismatch
    means the scenario's outcome depends on same-instant event ordering:
    the virtual-time analogue of a data race, filed as an
    ``order-divergence`` finding on the shadow run.
    """
    from repro.netsim.events import Simulator

    baseline = Simulator(sanitize=True)
    baseline_state = scenario(baseline)
    shadow = Simulator(sanitize=True, perturb_ties=True)
    shadow_state = scenario(shadow)

    baseline_digest = digest(baseline_state)
    shadow_digest = digest(shadow_state)
    reports = list(baseline.sanitizer.reports) + list(shadow.sanitizer.reports)
    if baseline_digest != shadow_digest:
        reports.append(
            shadow.sanitizer.report(
                KIND_ORDER_DIVERGENCE,
                f"state digest changed under same-instant reordering "
                f"({baseline_digest!r} != {shadow_digest!r})",
            )
        )
    return ShadowReplayReport(
        baseline_digest=baseline_digest,
        shadow_digest=shadow_digest,
        baseline_trace_hash=baseline.sanitizer.trace_hash,
        shadow_trace_hash=shadow.sanitizer.trace_hash,
        same_instant_groups=baseline.sanitizer.same_instant_groups,
        reports=reports,
    )
