"""Counters, histograms and a statistics registry.

The benchmark harness (flow-setup latency breakdowns, bottleneck traffic
saved, cache hit rates) reads these rather than scraping logs, so every
statistic of interest in the library is a :class:`Counter` or a
:class:`Histogram` registered in a :class:`StatsRegistry`.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator


class Counter:
    """A monotonically increasing (but resettable) named counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str = "", initial: int | float = 0) -> None:
        self.name = name
        self._value = initial

    @property
    def value(self) -> int | float:
        """Return the current count."""
        return self._value

    def increment(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot increment by negative {amount}")
        self._value += amount

    def reset(self) -> None:
        """Set the counter back to zero."""
        self._value = 0

    def __int__(self) -> int:
        return int(self._value)

    def __float__(self) -> float:
        return float(self._value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counter):
            return self._value == other._value
        if isinstance(other, (int, float)):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:  # counters are identity-hashed; equality is numeric
        return id(self)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self._value})"


class Histogram:
    """A streaming histogram of observations.

    Keeps every sample (scenarios in this library are small enough) and
    exposes count/mean/percentiles, which the latency benchmarks report.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._samples.append(float(value))
        self._sorted = False

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations."""
        for value in values:
            self.observe(value)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    @property
    def count(self) -> int:
        """Return the number of observations."""
        return len(self._samples)

    @property
    def total(self) -> float:
        """Return the sum of all observations."""
        return sum(self._samples)

    @property
    def mean(self) -> float:
        """Return the arithmetic mean (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return self.total / len(self._samples)

    @property
    def minimum(self) -> float:
        """Return the smallest observation (0.0 when empty)."""
        return min(self._samples) if self._samples else 0.0

    @property
    def maximum(self) -> float:
        """Return the largest observation (0.0 when empty)."""
        return max(self._samples) if self._samples else 0.0

    @property
    def stddev(self) -> float:
        """Return the population standard deviation (0.0 for < 2 samples)."""
        if len(self._samples) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((x - mean) ** 2 for x in self._samples) / len(self._samples))

    def percentile(self, pct: float) -> float:
        """Return the ``pct``-th percentile using nearest-rank interpolation."""
        if not self._samples:
            return 0.0
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile out of range: {pct}")
        self._ensure_sorted()
        if len(self._samples) == 1:
            return self._samples[0]
        rank = (pct / 100.0) * (len(self._samples) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return self._samples[low]
        fraction = rank - low
        lower_value = self._samples[low]
        return lower_value + fraction * (self._samples[high] - lower_value)

    @property
    def median(self) -> float:
        """Return the 50th percentile."""
        return self.percentile(50)

    def samples(self) -> list[float]:
        """Return a copy of all recorded samples (sorted)."""
        self._ensure_sorted()
        return list(self._samples)

    def reset(self) -> None:
        """Discard all observations."""
        self._samples.clear()
        self._sorted = True

    def summary(self) -> dict[str, float]:
        """Return a summary dictionary used by the benchmark reports."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.maximum,
            "stddev": self.stddev,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.6g})"


class StatsRegistry:
    """A named collection of counters and histograms.

    Scenario objects expose a registry so that the analysis and benchmark
    modules can enumerate everything that was measured during a run.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Return the counter with the given name, creating it if needed."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        """Return the histogram with the given name, creating it if needed."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def counters(self) -> Iterator[Counter]:
        """Iterate over registered counters in name order."""
        for name in sorted(self._counters):
            yield self._counters[name]

    def histograms(self) -> Iterator[Histogram]:
        """Iterate over registered histograms in name order."""
        for name in sorted(self._histograms):
            yield self._histograms[name]

    def snapshot(self) -> dict[str, float | dict[str, float]]:
        """Return every statistic as plain Python values."""
        result: dict[str, float | dict[str, float]] = {}
        for counter in self.counters():
            result[counter.name] = float(counter.value)
        for histogram in self.histograms():
            result[histogram.name] = histogram.summary()
        return result

    def reset(self) -> None:
        """Reset every registered statistic."""
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
