"""Counters, histograms and a statistics registry.

The benchmark harness (flow-setup latency breakdowns, bottleneck traffic
saved, cache hit rates) reads these rather than scraping logs, so every
statistic of interest in the library is a :class:`Counter` or a
:class:`Histogram` registered in a :class:`StatsRegistry`.
"""

from __future__ import annotations

import math
import random
import zlib
from collections import deque
from typing import Iterable, Iterator, Optional


class Counter:
    """A monotonically increasing (but resettable) named counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str = "", initial: int | float = 0) -> None:
        self.name = name
        self._value = initial

    @property
    def value(self) -> int | float:
        """Return the current count."""
        return self._value

    def increment(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot increment by negative {amount}")
        self._value += amount

    def reset(self) -> None:
        """Set the counter back to zero."""
        self._value = 0

    def __int__(self) -> int:
        return int(self._value)

    def __float__(self) -> float:
        return float(self._value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counter):
            return self._value == other._value
        if isinstance(other, (int, float)):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:  # counters are identity-hashed; equality is numeric
        return id(self)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self._value})"


class Histogram:
    """A streaming histogram of observations.

    Keeps every sample by default (scenarios in this library are small
    enough) and exposes count/mean/percentiles, which the latency
    benchmarks report.  Long-running consumers — the telemetry plane
    samples for the lifetime of a simulation — pass ``reservoir=N`` to
    bound memory: count/total/mean/min/max/stddev stay exact (tracked
    as running accumulators), while percentiles are estimated from an
    Algorithm-R reservoir of at most ``N`` samples drawn uniformly from
    the whole stream.  The reservoir's RNG is seeded from the histogram
    name, so identical streams reproduce identical percentiles run to
    run (the determinism gate double-runs scenarios).
    """

    def __init__(self, name: str = "", *, reservoir: Optional[int] = None) -> None:
        if reservoir is not None and reservoir < 1:
            raise ValueError(f"histogram {name!r}: reservoir must be >= 1 (got {reservoir})")
        self.name = name
        self.reservoir = reservoir
        self._samples: list[float] = []
        self._sorted = True
        self._count = 0
        self._total = 0.0
        self._sum_sq = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._rng = (
            random.Random(zlib.crc32(name.encode("utf-8")))
            if reservoir is not None
            else None
        )

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._count += 1
        self._total += value
        self._sum_sq += value * value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if self.reservoir is None or len(self._samples) < self.reservoir:
            self._samples.append(value)
            self._sorted = False
            return
        # Vitter's Algorithm R: the incoming sample replaces a random
        # slot with probability reservoir/count, so every observation in
        # the stream is retained with equal probability.
        slot = self._rng.randrange(self._count)
        if slot < self.reservoir:
            self._samples[slot] = value
            self._sorted = False

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations."""
        for value in values:
            self.observe(value)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    @property
    def count(self) -> int:
        """Return the number of observations (exact, even with a reservoir)."""
        return self._count

    @property
    def total(self) -> float:
        """Return the sum of all observations (exact, even with a reservoir)."""
        return self._total

    @property
    def mean(self) -> float:
        """Return the arithmetic mean (0.0 when empty)."""
        if not self._count:
            return 0.0
        return self._total / self._count

    @property
    def minimum(self) -> float:
        """Return the smallest observation (0.0 when empty)."""
        return self._min if self._min is not None else 0.0

    @property
    def maximum(self) -> float:
        """Return the largest observation (0.0 when empty)."""
        return self._max if self._max is not None else 0.0

    @property
    def stddev(self) -> float:
        """Return the population standard deviation (0.0 for < 2 samples)."""
        if self._count < 2:
            return 0.0
        if self.reservoir is None:
            mean = self.mean
            return math.sqrt(sum((x - mean) ** 2 for x in self._samples) / self._count)
        # One-pass form over the exact accumulators; the max() guards the
        # tiny negative values floating-point cancellation can produce.
        mean = self.mean
        return math.sqrt(max(0.0, self._sum_sq / self._count - mean * mean))

    def percentile(self, pct: float) -> float:
        """Return the ``pct``-th percentile.

        Uses nearest-rank at tiny sample counts (n <= 2) — reporting an
        actual observation instead of interpolating between the only two
        points, which invented values nothing ever measured and
        underestimated tail percentiles — and linear interpolation
        between order statistics for larger n.
        """
        if not self._samples:
            return 0.0
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile out of range: {pct}")
        self._ensure_sorted()
        size = len(self._samples)
        if size <= 2:
            rank = max(1, math.ceil((pct / 100.0) * size))
            return self._samples[rank - 1]
        rank = (pct / 100.0) * (size - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return self._samples[low]
        fraction = rank - low
        lower_value = self._samples[low]
        return lower_value + fraction * (self._samples[high] - lower_value)

    @property
    def median(self) -> float:
        """Return the 50th percentile."""
        return self.percentile(50)

    def samples(self) -> list[float]:
        """Return a copy of the retained samples (sorted).

        With a reservoir this is the bounded uniform sample, not the
        full stream; :attr:`count` still reports the true stream length.
        """
        self._ensure_sorted()
        return list(self._samples)

    def reset(self) -> None:
        """Discard all observations."""
        self._samples.clear()
        self._sorted = True
        self._count = 0
        self._total = 0.0
        self._sum_sq = 0.0
        self._min = None
        self._max = None

    def summary(self) -> dict[str, float]:
        """Return a summary dictionary used by the benchmark reports."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.maximum,
            "stddev": self.stddev,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.6g})"


class RateCounter:
    """Events per sliding virtual-time window, on the simulation clock.

    The telemetry pipeline's rate probes (controller punt rate, switch
    FlowRemoved rate) and the workload reports' mean-throughput numbers
    both need "events per simulated second"; this keeps a deque of
    ``(time, count)`` events pruned to the window, so :meth:`rate` is
    the recent windowed rate and :meth:`mean_rate` the whole-run
    average.  Feed it either incrementally (:meth:`record`) or from an
    existing monotonic counter (:meth:`observe_total`, which records
    the delta since the previous observation).
    """

    __slots__ = ("name", "window", "_events", "_total", "_last_total", "_start")

    def __init__(self, name: str = "", window: float = 1.0, *, start: float = 0.0) -> None:
        if window <= 0:
            raise ValueError(f"rate counter {name!r}: window must be positive (got {window})")
        self.name = name
        self.window = window
        self._events: deque[tuple[float, float]] = deque()
        self._total = 0.0
        self._last_total: Optional[float] = None
        self._start = start

    @property
    def total(self) -> float:
        """Return the total events recorded over the counter's lifetime."""
        return self._total

    def record(self, now: float, count: float = 1.0) -> None:
        """Record ``count`` events at virtual time ``now``."""
        if count < 0:
            raise ValueError(f"rate counter {self.name!r}: negative count {count}")
        if count:
            self._events.append((now, float(count)))
            self._total += count
        self._prune(now)

    def observe_total(self, now: float, total: float) -> None:
        """Feed a monotonic counter reading; the delta since the last
        observation is recorded as events at ``now``.

        The first observation seeds the baseline without recording
        (history that predates the probe is not a burst); a counter
        reset shows up as a negative delta and is clamped to zero.
        """
        total = float(total)
        previous = self._last_total
        self._last_total = total
        delta = 0.0 if previous is None else max(0.0, total - previous)
        self.record(now, delta)

    def events_in_window(self, now: float) -> float:
        """Return how many events fall inside ``(now - window, now]``."""
        self._prune(now)
        return sum(count for _, count in self._events)

    def rate(self, now: float) -> float:
        """Return the windowed rate (events per virtual second) at ``now``."""
        return self.events_in_window(now) / self.window

    def mean_rate(self, until: float) -> float:
        """Return the whole-run average rate from ``start`` to ``until``."""
        elapsed = until - self._start
        return self._total / elapsed if elapsed > 0 else 0.0

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        events = self._events
        while events and events[0][0] <= cutoff:
            events.popleft()

    def reset(self) -> None:
        """Discard all events and the monotonic baseline."""
        self._events.clear()
        self._total = 0.0
        self._last_total = None

    def __repr__(self) -> str:
        return f"RateCounter({self.name!r}, window={self.window}, total={self._total})"


class StatsRegistry:
    """A named collection of counters, histograms and rate counters.

    Scenario objects expose a registry so that the analysis and benchmark
    modules can enumerate everything that was measured during a run, and
    the telemetry pipeline consumes :meth:`snapshot` with the current
    virtual time to fold windowed rates into its time series.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._rates: dict[str, RateCounter] = {}

    def counter(self, name: str) -> Counter:
        """Return the counter with the given name, creating it if needed."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str, *, reservoir: Optional[int] = None) -> Histogram:
        """Return the histogram with the given name, creating it if needed."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, reservoir=reservoir)
        return self._histograms[name]

    def rate_counter(self, name: str, window: float = 1.0) -> RateCounter:
        """Return the rate counter with the given name, creating it if needed."""
        if name not in self._rates:
            self._rates[name] = RateCounter(name, window)
        return self._rates[name]

    def counters(self) -> Iterator[Counter]:
        """Iterate over registered counters in name order."""
        for name in sorted(self._counters):
            yield self._counters[name]

    def histograms(self) -> Iterator[Histogram]:
        """Iterate over registered histograms in name order."""
        for name in sorted(self._histograms):
            yield self._histograms[name]

    def rate_counters(self) -> Iterator[RateCounter]:
        """Iterate over registered rate counters in name order."""
        for name in sorted(self._rates):
            yield self._rates[name]

    def snapshot(self, now: Optional[float] = None) -> dict[str, float | dict[str, float]]:
        """Return every statistic as plain Python values.

        Pass the current virtual time ``now`` to include each rate
        counter's windowed ``per_sec`` value — the form the telemetry
        pipeline samples; without it rate counters report totals only
        (a windowed rate is meaningless with no clock reading).
        """
        result: dict[str, float | dict[str, float]] = {}
        for counter in self.counters():
            result[counter.name] = float(counter.value)
        for histogram in self.histograms():
            result[histogram.name] = histogram.summary()
        for rate in self.rate_counters():
            entry: dict[str, float] = {"total": rate.total, "window": rate.window}
            if now is not None:
                entry["per_sec"] = rate.rate(now)
            result[rate.name] = entry
        return result

    def reset(self) -> None:
        """Reset every registered statistic."""
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        for rate in self._rates.values():
            rate.reset()
