"""IPv4 and MAC addressing primitives.

The PF+=2 policy language (Figures 2, 5, 7 and 8 of the paper) matches on
IP addresses, address *tables* and CIDR prefixes such as
``192.168.0.0/24``, and the OpenFlow 10-tuple additionally matches on MAC
addresses.  This module implements those primitives from scratch so that
the rest of the library does not depend on platform networking libraries.

All classes are immutable and hashable so they can be used as dictionary
keys (flow tables, ARP caches, policy tables).
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Iterable, Iterator, Union

from repro.exceptions import AddressError

_IPV4_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")
_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")

IPv4Like = Union["IPv4Address", str, int]
MACLike = Union["MACAddress", str, int]


@total_ordering
class IPv4Address:
    """A single IPv4 address.

    Accepts dotted-quad strings, integers in ``[0, 2**32)`` or another
    :class:`IPv4Address`.

    >>> IPv4Address("192.168.42.32").to_int()
    3232246304
    >>> str(IPv4Address(3232246304))
    '192.168.42.32'
    """

    __slots__ = ("_value",)

    def __init__(self, address: IPv4Like) -> None:
        if isinstance(address, IPv4Address):
            self._value = address._value
        elif isinstance(address, int):
            if not 0 <= address < 2**32:
                raise AddressError(f"IPv4 integer out of range: {address}")
            self._value = address
        elif isinstance(address, str):
            self._value = self._parse(address)
        else:
            raise AddressError(f"cannot build IPv4Address from {type(address).__name__}")

    @staticmethod
    def _parse(text: str) -> int:
        match = _IPV4_RE.match(text.strip())
        if match is None:
            raise AddressError(f"invalid IPv4 address: {text!r}")
        octets = [int(part) for part in match.groups()]
        if any(octet > 255 for octet in octets):
            raise AddressError(f"invalid IPv4 address (octet > 255): {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return value

    def to_int(self) -> int:
        """Return the address as an unsigned 32-bit integer."""
        return self._value

    def to_bytes(self) -> bytes:
        """Return the 4-byte big-endian representation."""
        return self._value.to_bytes(4, "big")

    def octets(self) -> tuple[int, int, int, int]:
        """Return the four octets most-significant first."""
        value = self._value
        return (
            (value >> 24) & 0xFF,
            (value >> 16) & 0xFF,
            (value >> 8) & 0xFF,
            value & 0xFF,
        )

    def is_private(self) -> bool:
        """Return ``True`` for RFC 1918 addresses (10/8, 172.16/12, 192.168/16)."""
        return (
            self in IPv4Network("10.0.0.0/8")
            or self in IPv4Network("172.16.0.0/12")
            or self in IPv4Network("192.168.0.0/16")
        )

    def is_loopback(self) -> bool:
        """Return ``True`` for 127/8 addresses."""
        return self in IPv4Network("127.0.0.0/8")

    def is_multicast(self) -> bool:
        """Return ``True`` for 224/4 addresses."""
        return self in IPv4Network("224.0.0.0/4")

    def __str__(self) -> str:
        return ".".join(str(octet) for octet in self.octets())

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (str, int)):
            try:
                other = IPv4Address(other)
            except AddressError:
                return NotImplemented
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            other = IPv4Address(other)
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(("IPv4Address", self._value))

    def __int__(self) -> int:
        return self._value

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address((self._value + offset) % 2**32)


class IPv4Network:
    """An IPv4 CIDR prefix such as ``192.168.0.0/24``.

    A :class:`IPv4Network` supports containment tests against addresses,
    strings, integers and other networks, and iteration over host
    addresses, which the workload generators use to assign addresses.

    >>> IPv4Address("192.168.0.7") in IPv4Network("192.168.0.0/24")
    True
    """

    __slots__ = ("_network", "_prefix_len")

    def __init__(self, cidr: Union[str, "IPv4Network"], prefix_len: int | None = None) -> None:
        if isinstance(cidr, IPv4Network):
            self._network = cidr._network
            self._prefix_len = cidr._prefix_len
            return
        if prefix_len is None:
            if "/" in cidr:
                base, _, prefix_text = cidr.partition("/")
                try:
                    prefix_len = int(prefix_text)
                except ValueError as exc:
                    raise AddressError(f"invalid prefix length in {cidr!r}") from exc
            else:
                base = cidr
                prefix_len = 32
        else:
            base = str(cidr)
        if not 0 <= prefix_len <= 32:
            raise AddressError(f"prefix length out of range: {prefix_len}")
        self._prefix_len = prefix_len
        base_value = IPv4Address(base).to_int()
        self._network = base_value & self.netmask_int()

    def netmask_int(self) -> int:
        """Return the netmask as an integer."""
        if self._prefix_len == 0:
            return 0
        return (0xFFFFFFFF << (32 - self._prefix_len)) & 0xFFFFFFFF

    @property
    def netmask(self) -> IPv4Address:
        """Return the netmask as an :class:`IPv4Address`."""
        return IPv4Address(self.netmask_int())

    @property
    def network_address(self) -> IPv4Address:
        """Return the all-zero host address of the prefix."""
        return IPv4Address(self._network)

    @property
    def broadcast_address(self) -> IPv4Address:
        """Return the all-one host address of the prefix."""
        return IPv4Address(self._network | (~self.netmask_int() & 0xFFFFFFFF))

    @property
    def prefix_len(self) -> int:
        """Return the prefix length (0-32)."""
        return self._prefix_len

    def num_addresses(self) -> int:
        """Return the total number of addresses covered by the prefix."""
        return 2 ** (32 - self._prefix_len)

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate over usable host addresses (excludes network/broadcast for /30 and larger)."""
        first = self._network
        last = self._network | (~self.netmask_int() & 0xFFFFFFFF)
        if self._prefix_len >= 31:
            candidates: Iterable[int] = range(first, last + 1)
        else:
            candidates = range(first + 1, last)
        for value in candidates:
            yield IPv4Address(value)

    def __contains__(self, other: Union[IPv4Like, "IPv4Network"]) -> bool:
        if isinstance(other, IPv4Network):
            return (
                other._prefix_len >= self._prefix_len
                and (other._network & self.netmask_int()) == self._network
            )
        try:
            address = IPv4Address(other)
        except AddressError:
            return False
        return (address.to_int() & self.netmask_int()) == self._network

    def overlaps(self, other: "IPv4Network") -> bool:
        """Return ``True`` if the two prefixes share any address."""
        return other.network_address in self or self.network_address in other

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            try:
                other = IPv4Network(other)
            except AddressError:
                return NotImplemented
        if isinstance(other, IPv4Network):
            return self._network == other._network and self._prefix_len == other._prefix_len
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("IPv4Network", self._network, self._prefix_len))

    def __str__(self) -> str:
        return f"{IPv4Address(self._network)}/{self._prefix_len}"

    def __repr__(self) -> str:
        return f"IPv4Network({str(self)!r})"


@total_ordering
class MACAddress:
    """A 48-bit Ethernet MAC address.

    Accepts ``aa:bb:cc:dd:ee:ff`` / ``aa-bb-cc-dd-ee-ff`` strings, 48-bit
    integers or another :class:`MACAddress`.
    """

    __slots__ = ("_value",)

    def __init__(self, address: MACLike) -> None:
        if isinstance(address, MACAddress):
            self._value = address._value
        elif isinstance(address, int):
            if not 0 <= address < 2**48:
                raise AddressError(f"MAC integer out of range: {address}")
            self._value = address
        elif isinstance(address, str):
            text = address.strip()
            if not _MAC_RE.match(text):
                raise AddressError(f"invalid MAC address: {address!r}")
            self._value = int(text.replace(":", "").replace("-", ""), 16)
        else:
            raise AddressError(f"cannot build MACAddress from {type(address).__name__}")

    @classmethod
    def from_index(cls, index: int) -> "MACAddress":
        """Return a locally administered unicast MAC derived from ``index``.

        Used by the topology builder to hand out unique, stable MACs.
        """
        if index < 0 or index >= 2**40:
            raise AddressError(f"MAC index out of range: {index}")
        return cls((0x02 << 40) | index)

    def to_int(self) -> int:
        """Return the address as an unsigned 48-bit integer."""
        return self._value

    def to_bytes(self) -> bytes:
        """Return the 6-byte big-endian representation."""
        return self._value.to_bytes(6, "big")

    def is_broadcast(self) -> bool:
        """Return ``True`` for ff:ff:ff:ff:ff:ff."""
        return self._value == 2**48 - 1

    def is_multicast(self) -> bool:
        """Return ``True`` if the group bit is set (includes broadcast)."""
        return bool((self._value >> 40) & 0x01)

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MACAddress({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (str, int)):
            try:
                other = MACAddress(other)
            except AddressError:
                return NotImplemented
        if isinstance(other, MACAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MACAddress") -> bool:
        if not isinstance(other, MACAddress):
            other = MACAddress(other)
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(("MACAddress", self._value))

    def __int__(self) -> int:
        return self._value


#: The Ethernet broadcast address.
BROADCAST_MAC = MACAddress(2**48 - 1)
