"""Node and port abstractions.

Every element of the simulated network — OpenFlow switches, end-hosts,
legacy hosts, middleboxes — is a :class:`Node` with numbered
:class:`Port` objects.  Links (see :mod:`repro.netsim.links`) connect two
ports; a node sends a packet by handing it to one of its ports and
receives packets through :meth:`Node.receive`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.exceptions import PortError
from repro.netsim.packet import Packet
from repro.netsim.statistics import Counter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.netsim.events import Simulator
    from repro.netsim.links import Link


class Port:
    """A numbered attachment point on a :class:`Node`.

    Ports count transmitted/received packets and bytes; the OpenFlow
    switch statistics and the collaboration benchmark (bottleneck-link
    traffic saved) read these counters.
    """

    def __init__(self, node: "Node", number: int, name: str = "") -> None:
        self.node = node
        self.number = number
        self.name = name or f"{node.name}:{number}"
        self.link: Optional["Link"] = None
        self.tx_packets = Counter(f"{self.name}.tx_packets")
        self.rx_packets = Counter(f"{self.name}.rx_packets")
        self.tx_bytes = Counter(f"{self.name}.tx_bytes")
        self.rx_bytes = Counter(f"{self.name}.rx_bytes")

    @property
    def is_wired(self) -> bool:
        """Return ``True`` when a link is attached to this port."""
        return self.link is not None

    def attach_link(self, link: "Link") -> None:
        """Wire a link to this port.  A port can carry at most one link."""
        if self.link is not None:
            raise PortError(f"port {self.name} already wired to {self.link}")
        self.link = link

    def detach_link(self) -> None:
        """Remove the attached link (used when simulating link failures)."""
        self.link = None

    def send(self, packet: Packet) -> bool:
        """Transmit a packet out of this port.

        Returns ``True`` if a link was attached and the packet was handed
        to it, ``False`` if the port is un-wired (the packet is dropped,
        mirroring a real NIC with no carrier).
        """
        self.tx_packets.increment()
        self.tx_bytes.increment(packet.wire_size())
        if self.link is None:
            return False
        self.link.transmit(packet, self)
        return True

    def deliver(self, packet: Packet) -> None:
        """Called by the attached link when a packet arrives at this port."""
        self.rx_packets.increment()
        self.rx_bytes.increment(packet.wire_size())
        self.node.receive(packet, self)

    def peer(self) -> Optional["Port"]:
        """Return the port at the other end of the attached link, if any."""
        if self.link is None:
            return None
        return self.link.other_end(self)

    def __repr__(self) -> str:
        return f"Port({self.name})"


class Node:
    """Base class for every simulated network element.

    Subclasses override :meth:`receive` to implement forwarding or host
    behaviour.  Nodes are created detached; :meth:`attach` binds them to
    a :class:`~repro.netsim.events.Simulator` (the topology builder does
    this automatically).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.sim: Optional["Simulator"] = None
        self._ports: dict[int, Port] = {}
        self.packets_received = Counter(f"{name}.packets_received")
        self.packets_sent = Counter(f"{name}.packets_sent")

    # ------------------------------------------------------------------
    # Simulator binding
    # ------------------------------------------------------------------

    def attach(self, sim: "Simulator") -> None:
        """Bind this node to a simulator clock."""
        self.sim = sim

    @property
    def now(self) -> float:
        """Return the current simulated time (0.0 when detached)."""
        return self.sim.now if self.sim is not None else 0.0

    # ------------------------------------------------------------------
    # Ports
    # ------------------------------------------------------------------

    def add_port(self, number: int | None = None, name: str = "") -> Port:
        """Create a new port.  Port numbers default to the next free integer starting at 1."""
        if number is None:
            number = max(self._ports, default=0) + 1
        if number in self._ports:
            raise PortError(f"node {self.name} already has port {number}")
        port = Port(self, number, name)
        self._ports[number] = port
        return port

    def port(self, number: int) -> Port:
        """Return the port with the given number."""
        try:
            return self._ports[number]
        except KeyError as exc:
            raise PortError(f"node {self.name} has no port {number}") from exc

    def ports(self) -> Iterator[Port]:
        """Iterate over ports in port-number order."""
        for number in sorted(self._ports):
            yield self._ports[number]

    def port_count(self) -> int:
        """Return the number of ports on this node."""
        return len(self._ports)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------

    def receive(self, packet: Packet, in_port: Port) -> None:
        """Handle a packet arriving on ``in_port``.

        The base implementation only counts the packet; switches and
        hosts override this.
        """
        self.packets_received.increment()

    def send(self, packet: Packet, out_port: Port | int) -> bool:
        """Send a packet out of the given port (number or object)."""
        if isinstance(out_port, int):
            out_port = self.port(out_port)
        if out_port.node is not self:
            raise PortError(f"port {out_port.name} does not belong to node {self.name}")
        self.packets_sent.increment()
        return out_port.send(packet)

    def flood(self, packet: Packet, exclude: Port | None = None) -> int:
        """Send a copy of the packet out of every wired port except ``exclude``.

        Returns the number of ports the packet was sent on.
        """
        count = 0
        for port in self.ports():
            if port is exclude or not port.is_wired:
                continue
            self.send(packet.copy(), port)
            count += 1
        return count

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
