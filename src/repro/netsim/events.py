"""Deterministic discrete-event scheduler.

The simulator is single-threaded and deterministic: events are ordered by
``(time, sequence number)`` so two runs of the same scenario produce the
same packet orderings, which the integration tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.exceptions import SimulationError
from repro.netsim.sanitizer import SimulationSanitizer


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)``; the callback and its arguments are
    excluded from the ordering.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    kwargs: dict = field(compare=False, default_factory=dict)
    cancelled: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is harmless."""
        self.cancelled = True


class Future:
    """A one-shot completion slot for continuation-scheduled pipelines.

    The async decision core composes punt → query → decide out of
    schedulable steps; a :class:`Future` is the joint between two steps:
    the producer calls :meth:`set_result` (usually from a scheduled
    event) and every continuation registered with
    :meth:`add_done_callback` runs immediately, at the producer's
    simulated instant.  A callback added after completion runs at once,
    so late subscribers (a coalescing waiter joining an already-answered
    query) need no special casing.

    Callbacks are deliberately synchronous — the *producer* is the
    scheduled event, so continuations inherit its timestamp without
    burning an extra queue entry per hop.  A step that must advance the
    clock schedules its own follow-up event.
    """

    __slots__ = ("_done", "_result", "_callbacks")

    def __init__(self) -> None:
        self._done = False
        self._result: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        """Return ``True`` once a result has been set."""
        return self._done

    def result(self) -> Any:
        """Return the completed value; raises if the future is still open."""
        if not self._done:
            raise SimulationError("future result read before completion")
        return self._result

    def set_result(self, value: Any = None) -> None:
        """Complete the future and run every registered continuation."""
        if self._done:
            raise SimulationError("future completed twice")
        self._done = True
        self._result = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def add_done_callback(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(result)`` on completion (immediately if already done)."""
        if self._done:
            callback(self._result)
        else:
            self._callbacks.append(callback)

    @classmethod
    def gather(cls, futures: "list[Future]") -> "Future":
        """Return a future completing with the list of results once all are done.

        The aggregate completes at the instant the *last* input does —
        exactly the "both endpoint answers are in" barrier the decision
        pipeline needs — and preserves input order in the result list.
        An empty input completes immediately with ``[]``.
        """
        aggregate = cls()
        remaining = len(futures)
        if remaining == 0:
            aggregate.set_result([])
            return aggregate
        results: list[Any] = [None] * remaining
        state = {"left": remaining}

        def _arm(index: int, future: "Future") -> None:
            def _done(value: Any) -> None:
                results[index] = value
                state["left"] -= 1
                if state["left"] == 0:
                    aggregate.set_result(results)

            future.add_done_callback(_done)

        for index, future in enumerate(futures):
            _arm(index, future)
        return aggregate


class RepeatingEvent:
    """A self-rescheduling callback with a termination condition.

    The callback runs every ``interval`` seconds of simulated time and
    returns whether to keep running: a falsy return (or :meth:`cancel`)
    stops the cycle and lets the event queue drain.  Services that sweep
    periodically (flow-state lifecycle, statistics collection) use this
    instead of scheduling themselves unconditionally, which would keep
    :meth:`Simulator.run` from ever reaching an empty queue.
    """

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        callback: Callable[[], object],
        *,
        label: str = "",
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"repeating interval must be positive (got {interval})")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.label = label
        self.fires = 0
        self._event: Optional[Event] = None
        self._cancelled = False

    @property
    def scheduled(self) -> bool:
        """Return ``True`` while a next firing is queued."""
        return self._event is not None and not self._event.cancelled

    def start(self) -> "RepeatingEvent":
        """Queue the next firing (idempotent while already scheduled)."""
        if not self.scheduled:
            self._cancelled = False
            self._event = self.sim.schedule(self.interval, self._fire, label=self.label)
        return self

    def cancel(self) -> None:
        """Stop the cycle; the pending firing (if any) is cancelled.

        Cancelling from *inside* the callback also stops the cycle, even
        when the callback returns truthy — at that point no firing is
        queued, so the intent is recorded in a flag that vetoes the
        reschedule.
        """
        self._cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._cancelled = False
        self.fires += 1
        if self.callback() and not self._cancelled:
            self.start()


class Simulator:
    """A discrete-event simulator clock and event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, node.receive, packet, port)
        sim.run()

    Time is measured in seconds (floats).  The simulator never advances
    wall-clock time; :meth:`run` drains the event queue in timestamp
    order until it is empty or a time/event limit is hit.

    With ``sanitize=True`` a :class:`~repro.netsim.sanitizer.
    SimulationSanitizer` instruments the loop: every fired event is
    folded into a deterministic trace hash, same-instant event groups
    are counted, and library code files findings (stale continuations,
    order divergences) on :attr:`sanitizer` instead of discarding them
    silently.  ``perturb_ties=True`` serves same-instant ties in
    *reverse* schedule order — the shadow half of
    :func:`~repro.netsim.sanitizer.shadow_replay`'s ordering-race
    detector; never enable it on a run whose results you keep.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        *,
        sanitize: bool = False,
        perturb_ties: bool = False,
    ) -> None:
        self._now = float(start_time)
        # Heap of (time, tie_key, event): the explicit tie key lets the
        # sanitizer's shadow replay flip same-instant service order
        # without touching Event's own (time, seq) ordering contract.
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._tie_sign = -1 if perturb_ties else 1
        self.sanitizer: Optional[SimulationSanitizer] = (
            SimulationSanitizer(self) if sanitize else None
        )

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Return how many events have fired so far."""
        return self._events_processed

    @property
    def sanitize(self) -> bool:
        """Return ``True`` while a sanitizer is attached."""
        return self.sanitizer is not None

    def enable_sanitizer(self, *, perturb_ties: bool = False) -> SimulationSanitizer:
        """Attach a sanitizer to an already-built simulator.

        Convenience for retrofitting networks that construct their own
        simulator (``net.topology.sim.enable_sanitizer()``); the trace
        hash covers events fired from this point on.  Idempotent: an
        already-attached sanitizer is returned unchanged (though the tie
        order follows the *latest* ``perturb_ties`` requested).
        """
        self._tie_sign = -1 if perturb_ties else 1
        if self.sanitizer is None:
            self.sanitizer = SimulationSanitizer(self)
        return self.sanitizer

    def pending(self) -> int:
        """Return the number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may :meth:`Event.cancel`.
        A negative delay raises :class:`~repro.exceptions.SimulationError`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            seq=next(self._seq),
            callback=callback,
            args=args,
            kwargs=kwargs,
            label=label,
        )
        heapq.heappush(self._queue, (event.time, self._tie_sign * event.seq, event))
        return event

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule a callback at an absolute simulated time."""
        return self.schedule(when - self._now, callback, *args, label=label, **kwargs)

    def call_now(self, callback: Callable[..., None], *args: Any, **kwargs: Any) -> Event:
        """Schedule a callback to run at the current time (after already-queued events at this time)."""
        return self.schedule(0.0, callback, *args, **kwargs)

    def schedule_repeating(
        self,
        interval: float,
        callback: Callable[[], object],
        *,
        label: str = "",
    ) -> RepeatingEvent:
        """Run ``callback`` every ``interval`` seconds while it returns truthy.

        Returns the started :class:`RepeatingEvent`; the caller may
        :meth:`RepeatingEvent.cancel` it or :meth:`RepeatingEvent.start`
        it again after it stopped itself.
        """
        return RepeatingEvent(self, interval, callback, label=label).start()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> Optional[Event]:
        """Fire the earliest pending event and return it.

        Returns ``None`` when the queue is empty.  Cancelled events are
        skipped silently.
        """
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event queue corrupted: time went backwards")
            self._now = event.time
            self._events_processed += 1
            if self.sanitizer is not None:
                self.sanitizer.on_event(event)
            event.callback(*event.args, **event.kwargs)
            return event
        return None

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run until the queue drains, ``until`` seconds of simulated time, or ``max_events``.

        Returns the number of events processed by this call.  Nested calls
        to :meth:`run` are rejected to avoid re-entrancy bugs in node
        callbacks.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    self._now = until
                    break
                if self.step() is not None:
                    processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return processed

    def _peek(self) -> Optional[Event]:
        """Return the earliest non-cancelled event without firing it."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][2] if self._queue else None

    def reset(self) -> None:
        """Clear the queue and rewind the clock to zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0
