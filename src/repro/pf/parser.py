"""Recursive-descent parser for PF+=2.

Because backslash continuations are collapsed by the lexer, rule
boundaries are recognised structurally: a new statement starts at a
``pass``, ``block``, ``table`` or ``dict`` keyword or at a macro
assignment.  This is also what lets ``requirements`` values — which hold
several rules on one logical line (Figures 3, 4 and 6) — parse without
any special casing.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import PFParseError
from repro.netsim.addresses import IPv4Address, IPv4Network
from repro.exceptions import AddressError
from repro.pf import lexer
from repro.pf.ast_nodes import (
    ACTION_BLOCK,
    ACTION_PASS,
    AddressLiteral,
    AnyAddress,
    DictAccess,
    DictDef,
    EndpointSpec,
    Expr,
    FuncCall,
    Literal,
    MacroDef,
    MacroRef,
    NAMED_PORTS,
    Rule,
    Ruleset,
    TableDef,
    TableRef,
    TableRefExpr,
)
from repro.pf.lexer import Token, tokenize

_ACTIONS = {ACTION_PASS, ACTION_BLOCK}
_RULE_CLAUSE_WORDS = {"from", "to", "with", "keep", "all", "quick"}


class Parser:
    """Parses a token stream into a :class:`~repro.pf.ast_nodes.Ruleset`."""

    def __init__(self, tokens: list[Token], origin: str = "") -> None:
        self._tokens = tokens
        self._position = 0
        self._origin = origin

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type != lexer.EOF:
            self._position += 1
        return token

    def _expect(self, token_type: str, description: str = "") -> Token:
        token = self._peek()
        if token.type != token_type:
            what = description or token_type
            raise PFParseError(
                f"{self._origin}: expected {what} but found {token.value!r} (line {token.line})",
                line=token.line,
            )
        return self._advance()

    def _expect_word(self, *values: str) -> Token:
        token = self._peek()
        if token.type != lexer.WORD or (values and not token.is_word(*values)):
            expected = "/".join(values) if values else "a word"
            raise PFParseError(
                f"{self._origin}: expected {expected} but found {token.value!r} (line {token.line})",
                line=token.line,
            )
        return self._advance()

    def _at_eof(self) -> bool:
        return self._peek().type == lexer.EOF

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def parse(self) -> Ruleset:
        """Parse the whole token stream."""
        ruleset = Ruleset(name=self._origin)
        while not self._at_eof():
            ruleset.append(self._parse_statement())
        return ruleset

    def _parse_statement(self):
        token = self._peek()
        if token.type != lexer.WORD:
            raise PFParseError(
                f"{self._origin}: unexpected {token.value!r} at start of statement (line {token.line})",
                line=token.line,
            )
        if token.is_word("table"):
            return self._parse_table()
        if token.is_word("dict"):
            return self._parse_dict()
        if token.is_word(*_ACTIONS):
            return self._parse_rule()
        if self._peek(1).type == lexer.EQUALS:
            return self._parse_macro()
        raise PFParseError(
            f"{self._origin}: unexpected word {token.value!r} at start of statement (line {token.line})",
            line=token.line,
        )

    # ------------------------------------------------------------------
    # Definitions
    # ------------------------------------------------------------------

    def _parse_table(self) -> TableDef:
        start = self._expect_word("table")
        self._expect(lexer.LANGLE, "'<'")
        name = self._expect(lexer.WORD, "table name").value
        self._expect(lexer.RANGLE, "'>'")
        self._expect(lexer.LBRACE, "'{'")
        items: list = []
        while self._peek().type != lexer.RBRACE:
            token = self._peek()
            if token.type == lexer.LANGLE:
                self._advance()
                nested = self._expect(lexer.WORD, "table name").value
                self._expect(lexer.RANGLE, "'>'")
                items.append(TableRef(nested))
            elif token.type == lexer.WORD:
                items.append(AddressLiteral(self._advance().value))
            elif token.type == lexer.COMMA:
                self._advance()
            else:
                raise PFParseError(
                    f"{self._origin}: unexpected {token.value!r} inside table <{name}> (line {token.line})",
                    line=token.line,
                )
        self._expect(lexer.RBRACE, "'}'")
        return TableDef(name=name, items=tuple(items), origin=self._origin or f"line {start.line}")

    def _parse_dict(self) -> DictDef:
        start = self._expect_word("dict")
        self._expect(lexer.LANGLE, "'<'")
        name = self._expect(lexer.WORD, "dict name").value
        self._expect(lexer.RANGLE, "'>'")
        self._expect(lexer.LBRACE, "'{'")
        entries: dict[str, str] = {}
        while self._peek().type != lexer.RBRACE:
            key_token = self._peek()
            if key_token.type == lexer.COMMA:
                self._advance()
                continue
            key = self._expect(lexer.WORD, "dict key").value
            self._expect(lexer.COLON, "':'")
            value_token = self._peek()
            if value_token.type in (lexer.WORD, lexer.STRING):
                entries[key] = self._advance().value
            else:
                raise PFParseError(
                    f"{self._origin}: expected a value for dict key {key!r} (line {value_token.line})",
                    line=value_token.line,
                )
        self._expect(lexer.RBRACE, "'}'")
        return DictDef(name=name, entries=entries, origin=self._origin or f"line {start.line}")

    def _parse_macro(self) -> MacroDef:
        name = self._expect(lexer.WORD, "macro name").value
        self._expect(lexer.EQUALS, "'='")
        token = self._peek()
        if token.type in (lexer.STRING, lexer.WORD):
            value = self._advance().value
        else:
            raise PFParseError(
                f"{self._origin}: expected a macro value for {name!r} (line {token.line})",
                line=token.line,
            )
        return MacroDef(name=name, value=value, origin=self._origin)

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def _parse_rule(self) -> Rule:
        action_token = self._expect_word(*_ACTIONS)
        action = action_token.value.lower()
        quick = False
        src = EndpointSpec.any()
        dst = EndpointSpec.any()
        conditions: list[FuncCall] = []
        keep_state = False

        if self._peek().is_word("quick"):
            self._advance()
            quick = True

        while True:
            token = self._peek()
            if token.type != lexer.WORD:
                break
            word = token.value.lower()
            if word == "all":
                self._advance()
                continue
            if word == "from":
                self._advance()
                src = self._parse_endpoint()
                continue
            if word == "to":
                self._advance()
                dst = self._parse_endpoint()
                continue
            if word == "with":
                self._advance()
                conditions.append(self._parse_funccall())
                continue
            if word == "keep":
                self._advance()
                self._expect_word("state")
                keep_state = True
                continue
            if word == "quick":
                self._advance()
                quick = True
                continue
            break

        return Rule(
            action=action,
            src=src,
            dst=dst,
            conditions=tuple(conditions),
            quick=quick,
            keep_state=keep_state,
            origin=self._origin,
            line=action_token.line,
        )

    def _parse_endpoint(self) -> EndpointSpec:
        negated = False
        if self._peek().type == lexer.BANG:
            self._advance()
            negated = True
        token = self._peek()
        address = None
        if token.type == lexer.LANGLE:
            self._advance()
            name = self._expect(lexer.WORD, "table name").value
            self._expect(lexer.RANGLE, "'>'")
            address = TableRef(name)
        elif token.type == lexer.DOLLAR:
            self._advance()
            name = self._expect(lexer.WORD, "macro name").value
            address = MacroRef(name)
        elif token.type == lexer.WORD:
            if token.is_word("any"):
                self._advance()
                address = AnyAddress()
            elif _looks_like_address(token.value):
                self._advance()
                address = AddressLiteral(token.value)
            elif token.is_word("port"):
                # "from port http" with an implicit any address.
                address = AnyAddress()
            else:
                raise PFParseError(
                    f"{self._origin}: unexpected endpoint {token.value!r} (line {token.line})",
                    line=token.line,
                )
        else:
            raise PFParseError(
                f"{self._origin}: unexpected endpoint token {token.value!r} (line {token.line})",
                line=token.line,
            )

        port: Optional[int] = None
        if self._peek().is_word("port"):
            self._advance()
            port = self._parse_port()
        return EndpointSpec(address=address, negated=negated, port=port)

    def _parse_port(self) -> int:
        token = self._expect(lexer.WORD, "port number or service name")
        value = token.value.lower()
        if value.isdigit():
            port = int(value)
            if not 0 < port <= 0xFFFF:
                raise PFParseError(
                    f"{self._origin}: port out of range: {value} (line {token.line})", line=token.line
                )
            return port
        if value in NAMED_PORTS:
            return NAMED_PORTS[value]
        raise PFParseError(
            f"{self._origin}: unknown service name {token.value!r} (line {token.line})",
            line=token.line,
        )

    def _parse_funccall(self) -> FuncCall:
        name = self._expect(lexer.WORD, "function name").value
        self._expect(lexer.LPAREN, "'('")
        args: list[Expr] = []
        while self._peek().type != lexer.RPAREN:
            if self._peek().type == lexer.COMMA:
                self._advance()
                continue
            args.append(self._parse_expr())
        self._expect(lexer.RPAREN, "')'")
        return FuncCall(name=name, args=tuple(args))

    def _parse_expr(self) -> Expr:
        token = self._peek()
        if token.type == lexer.STAR:
            self._advance()
            self._expect(lexer.AT, "'@' after '*'")
            return self._parse_dict_access(concatenated=True)
        if token.type == lexer.AT:
            self._advance()
            return self._parse_dict_access(concatenated=False)
        if token.type == lexer.DOLLAR:
            self._advance()
            name = self._expect(lexer.WORD, "macro name").value
            return MacroRef(name)
        if token.type == lexer.LANGLE:
            self._advance()
            name = self._expect(lexer.WORD, "table name").value
            self._expect(lexer.RANGLE, "'>'")
            return TableRefExpr(name)
        if token.type == lexer.STRING:
            self._advance()
            return Literal(token.value, quoted=True)
        if token.type == lexer.WORD:
            self._advance()
            return Literal(token.value)
        raise PFParseError(
            f"{self._origin}: unexpected function argument {token.value!r} (line {token.line})",
            line=token.line,
        )

    def _parse_dict_access(self, *, concatenated: bool) -> DictAccess:
        name = self._expect(lexer.WORD, "dictionary name").value
        self._expect(lexer.LBRACKET, "'['")
        key = self._expect(lexer.WORD, "dictionary key").value
        self._expect(lexer.RBRACKET, "']'")
        return DictAccess(dict_name=name, key=key, concatenated=concatenated)


def _looks_like_address(text: str) -> bool:
    """Return True if a bare word is an IPv4 address or CIDR prefix."""
    try:
        if "/" in text:
            IPv4Network(text)
        else:
            IPv4Address(text)
    except AddressError:
        return False
    return True


def parse_ruleset(text: str, origin: str = "") -> Ruleset:
    """Parse PF+=2 source text into a :class:`Ruleset`."""
    return Parser(tokenize(text), origin=origin).parse()


def parse_rules_text(text: str, origin: str = "requirements") -> Ruleset:
    """Parse rule text embedded in a ``requirements`` value.

    Identical to :func:`parse_ruleset`; the separate name documents the
    call sites where delegated (possibly attacker-supplied) rule text is
    being parsed, which must never raise uncaught exceptions into the
    controller — callers are expected to catch
    :class:`~repro.exceptions.PFError`.
    """
    return parse_ruleset(text, origin=origin)
