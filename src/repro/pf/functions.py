"""Predicate functions callable from ``with`` clauses.

§3.3: "Each ``with`` is followed by a function call that can operate on
values from the ``@src`` or ``@dst`` dictionaries.  Functions are
user-definable and new functions can be added."  The predefined set is

* ``eq, gt, lt, gte, lte`` — comparisons,
* ``member`` — "tests if first argument is in list named by second
  argument",
* ``allowed`` — "tests if flow is allowed by rule specified in argument"
  (the delegation hook: the argument is PF+=2 rule text, typically an
  end-host-supplied ``requirements`` value),
* ``verify`` — "tests if first argument is the correct signature for
  public key specified in second argument and data specified in
  remaining arguments",

plus ``includes``, which Figure 8 uses (``includes(@dst[os-patch],
MS08-067)``).

Functions receive already-resolved argument values: strings, lists of
strings (for table arguments) or ``None`` when a dictionary key was
absent from the ident++ response.  Missing values make predicates return
``False`` rather than raising — a flow about which too little is known
must simply fail to match permissive rules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from repro.exceptions import PFEvalError, UnknownFunctionError
from repro.crypto.signatures import verify_values

if TYPE_CHECKING:  # pragma: no cover
    from repro.pf.evaluator import EvalContext

#: The value types predicate functions receive.
ArgValue = Union[str, list, None]
#: Signature of a predicate implementation.
PredicateFn = Callable[["EvalContext", Sequence[ArgValue]], bool]


class FunctionRegistry:
    """Mapping of predicate names to implementations.

    Administrators (and tests) register additional functions with
    :meth:`register`, fulfilling the paper's "functions are
    user-definable" requirement.
    """

    def __init__(self) -> None:
        self._functions: dict[str, PredicateFn] = {}

    def register(self, name: str, function: PredicateFn, *, replace: bool = False) -> None:
        """Register a predicate under ``name``."""
        key = name.lower()
        if key in self._functions and not replace:
            raise PFEvalError(f"function {name!r} is already registered")
        self._functions[key] = function

    def unregister(self, name: str) -> None:
        """Remove a predicate."""
        self._functions.pop(name.lower(), None)

    def names(self) -> list[str]:
        """Return the registered function names, sorted."""
        return sorted(self._functions)

    def call(self, name: str, context: "EvalContext", args: Sequence[ArgValue]) -> bool:
        """Invoke a predicate; unknown names raise :class:`UnknownFunctionError`."""
        function = self._functions.get(name.lower())
        if function is None:
            raise UnknownFunctionError(f"unknown PF+=2 function: {name}")
        return bool(function(context, args))

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._functions

    def copy(self) -> "FunctionRegistry":
        """Return an independent copy (used when layering per-scenario functions)."""
        clone = FunctionRegistry()
        clone._functions = dict(self._functions)
        return clone


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _as_number(value: ArgValue) -> Optional[float]:
    if value is None or isinstance(value, list):
        return None
    try:
        return float(str(value).strip())
    except ValueError:
        return None


def _tokens(value: ArgValue) -> list[str]:
    """Split a value into comparison tokens."""
    if value is None:
        return []
    if isinstance(value, list):
        return [str(item) for item in value]
    text = str(value).strip()
    if text.startswith("{") and text.endswith("}"):
        text = text[1:-1]
    return text.split()


def _require(args: Sequence[ArgValue], count: int, name: str) -> None:
    if len(args) < count:
        raise PFEvalError(f"{name}() expects at least {count} arguments, got {len(args)}")


# ---------------------------------------------------------------------------
# Predefined predicates
# ---------------------------------------------------------------------------

def _fn_eq(context: "EvalContext", args: Sequence[ArgValue]) -> bool:
    _require(args, 2, "eq")
    left, right = args[0], args[1]
    if left is None or right is None:
        return False
    left_number, right_number = _as_number(left), _as_number(right)
    if left_number is not None and right_number is not None:
        return left_number == right_number
    return str(left).strip() == str(right).strip()


def _compare(left: ArgValue, right: ArgValue) -> Optional[int]:
    """Return -1/0/+1 comparing two values numerically if possible, else lexically."""
    if left is None or right is None:
        return None
    left_number, right_number = _as_number(left), _as_number(right)
    if left_number is not None and right_number is not None:
        if left_number < right_number:
            return -1
        if left_number > right_number:
            return 1
        return 0
    left_text, right_text = str(left).strip(), str(right).strip()
    if left_text < right_text:
        return -1
    if left_text > right_text:
        return 1
    return 0


def _fn_gt(context: "EvalContext", args: Sequence[ArgValue]) -> bool:
    _require(args, 2, "gt")
    result = _compare(args[0], args[1])
    return result is not None and result > 0


def _fn_lt(context: "EvalContext", args: Sequence[ArgValue]) -> bool:
    _require(args, 2, "lt")
    result = _compare(args[0], args[1])
    return result is not None and result < 0


def _fn_gte(context: "EvalContext", args: Sequence[ArgValue]) -> bool:
    _require(args, 2, "gte")
    result = _compare(args[0], args[1])
    return result is not None and result >= 0


def _fn_lte(context: "EvalContext", args: Sequence[ArgValue]) -> bool:
    _require(args, 2, "lte")
    result = _compare(args[0], args[1])
    return result is not None and result <= 0


def _fn_member(context: "EvalContext", args: Sequence[ArgValue]) -> bool:
    """``member(value, list)`` — is the value in the named list?

    The list argument may be (in priority order) a table argument that
    already resolved to a list, a macro whose value is a ``{ ... }``
    list, a defined PF table name, or a bare name treated as a literal
    one-element list.  The value side may itself carry several
    whitespace-separated tokens (``groupID`` reports every group of the
    user); membership of any token suffices.
    """
    _require(args, 2, "member")
    value, list_spec = args[0], args[1]
    if value is None:
        return False
    candidates = _resolve_list(context, list_spec)
    if not candidates:
        return False
    value_tokens = set(_tokens(value))
    return bool(value_tokens & set(candidates))


def _resolve_list(context: "EvalContext", list_spec: ArgValue) -> list[str]:
    if list_spec is None:
        return []
    if isinstance(list_spec, list):
        return [str(item) for item in list_spec]
    name = str(list_spec).strip()
    macro_value = context.macros.get(name)
    if macro_value is not None:
        return _tokens(macro_value)
    if context.tables.has_table(name):
        rendered = []
        for network in context.tables.resolve(name).networks:
            # Host prefixes read back as bare addresses so membership tests
            # against values like "192.168.1.1" behave as expected.
            rendered.append(str(network.network_address) if network.prefix_len == 32 else str(network))
        return rendered
    named_dict = context.dicts.get(name)
    if named_dict is not None:
        return [str(key) for key in named_dict]
    return _tokens(name)


def _fn_allowed(context: "EvalContext", args: Sequence[ArgValue]) -> bool:
    """``allowed(rules)`` — does the delegated rule text allow the current flow?

    The argument is PF+=2 source (a ``requirements`` value reported by an
    end-host or third party).  It is parsed and evaluated against the
    *same* flow and response documents, in a nested context with a
    recursion-depth guard.  Any parse or evaluation error means "not
    allowed": delegated text is untrusted input.
    """
    _require(args, 1, "allowed")
    rules_text = args[0]
    if rules_text is None or isinstance(rules_text, list):
        return False
    text = str(rules_text).strip()
    if not text:
        return False
    # Imported here to avoid the import cycle functions -> evaluator -> functions.
    from repro.exceptions import PFError
    from repro.pf.evaluator import PolicyEvaluator
    from repro.pf.parser import parse_rules_text

    if context.depth >= context.max_depth:
        return False
    try:
        ruleset = parse_rules_text(text)
    except PFError:
        return False
    # Delegated requirements are fail-closed: a flow the requirements do not
    # explicitly pass is not "allowed by the rule specified in the argument".
    # The evaluator is built for exactly one evaluation, so compiling the
    # delegated text would cost more than the interpreted walk it replaces.
    nested = PolicyEvaluator(
        ruleset, registry=context.registry, default_action="block", name="allowed()",
        compile_rules=False,
    )
    nested.tables.merge(context.tables)
    try:
        verdict = nested.evaluate(
            context.flow,
            context.src_doc,
            context.dst_doc,
            extra=context.extra,
            depth=context.depth + 1,
        )
    except PFError:
        return False
    return verdict.is_pass


def _fn_verify(context: "EvalContext", args: Sequence[ArgValue]) -> bool:
    """``verify(signature, pubkey, data...)`` — check a delegation signature."""
    _require(args, 3, "verify")
    signature, public_key = args[0], args[1]
    data = args[2:]
    if signature is None or public_key is None or any(item is None for item in data):
        return False
    return verify_values(str(public_key), str(signature), [str(item) for item in data])


def _fn_includes(context: "EvalContext", args: Sequence[ArgValue]) -> bool:
    """``includes(haystack, needle)`` — token or substring containment.

    Figure 8 uses it to check the destination's installed patch list:
    ``includes(@dst[os-patch], MS08-067)``.
    """
    _require(args, 2, "includes")
    haystack, needle = args[0], args[1]
    if haystack is None or needle is None:
        return False
    needle_text = str(needle).strip()
    if not needle_text:
        return False
    tokens = _tokens(haystack)
    if needle_text in tokens:
        return True
    return needle_text in str(haystack)


def default_registry() -> FunctionRegistry:
    """Return a registry with every predefined PF+=2 function."""
    registry = FunctionRegistry()
    registry.register("eq", _fn_eq)
    registry.register("gt", _fn_gt)
    registry.register("lt", _fn_lt)
    registry.register("gte", _fn_gte)
    registry.register("lte", _fn_lte)
    registry.register("member", _fn_member)
    registry.register("allowed", _fn_allowed)
    registry.register("verify", _fn_verify)
    registry.register("includes", _fn_includes)
    return registry
