"""The ``keep state`` state table.

In PF, a ``pass ... keep state`` rule creates a state entry when it
matches, and subsequent packets of the flow (in either direction) are
handled by the state table without re-evaluating rules.  In the ident++
controller the state table is additionally what drives proactive
flow-entry installation: once a flow is approved with ``keep state``,
the reverse direction is approved too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.identpp.flowspec import FlowSpec

#: Default idle lifetime of a state entry, seconds.
DEFAULT_STATE_TIMEOUT = 300.0


@dataclass
class StateEntry:
    """One established flow."""

    flow: FlowSpec
    created_at: float = 0.0
    last_seen: float = 0.0
    rule_origin: str = ""
    cookie: str = ""
    packets: int = 0

    def touches(self, flow: FlowSpec) -> bool:
        """Return ``True`` if ``flow`` is this entry's flow or its reverse."""
        return flow == self.flow or flow == self.flow.reversed()

    def record(self, now: float) -> None:
        """Record one packet of the flow."""
        self.packets += 1
        self.last_seen = now


class StateTable:
    """All established flows known to one policy enforcement point."""

    def __init__(self, *, timeout: float = DEFAULT_STATE_TIMEOUT) -> None:
        self.timeout = timeout
        self._entries: dict[FlowSpec, StateEntry] = {}
        self.insertions = 0
        self.hits = 0
        self.misses = 0
        self.expirations = 0

    def add(
        self,
        flow: FlowSpec,
        now: float = 0.0,
        *,
        rule_origin: str = "",
        cookie: str = "",
    ) -> StateEntry:
        """Create (or refresh) the state entry for ``flow``."""
        entry = self._entries.get(flow)
        if entry is None:
            entry = StateEntry(
                flow=flow, created_at=now, last_seen=now, rule_origin=rule_origin, cookie=cookie
            )
            self._entries[flow] = entry
            self.insertions += 1
        else:
            entry.last_seen = now
        return entry

    def match(self, flow: FlowSpec, now: float = 0.0) -> Optional[StateEntry]:
        """Return the entry covering ``flow`` (either direction), updating counters."""
        entry = self._entries.get(flow) or self._entries.get(flow.reversed())
        if entry is None:
            self.misses += 1
            return None
        if self.timeout and now - entry.last_seen > self.timeout:
            self.remove(entry.flow)
            self.expirations += 1
            self.misses += 1
            return None
        entry.record(now)
        self.hits += 1
        return entry

    def remove(self, flow: FlowSpec) -> bool:
        """Remove the entry for ``flow`` (exact direction).  Returns ``True`` if present."""
        return self._entries.pop(flow, None) is not None

    def remove_by_cookie(self, cookie: str) -> int:
        """Remove every entry carrying ``cookie`` (policy revocation).  Returns the count."""
        victims = [flow for flow, entry in self._entries.items() if entry.cookie == cookie]
        for flow in victims:
            del self._entries[flow]
        return len(victims)

    def expire(self, now: float) -> int:
        """Remove idle entries; returns how many were dropped."""
        if not self.timeout:
            return 0
        victims = [
            flow for flow, entry in self._entries.items() if now - entry.last_seen > self.timeout
        ]
        for flow in victims:
            del self._entries[flow]
        self.expirations += len(victims)
        return len(victims)

    def entries(self) -> Iterator[StateEntry]:
        """Iterate over current entries."""
        return iter(list(self._entries.values()))

    def expirable_count(self) -> int:
        """Return how many entries a future :meth:`expire` could reclaim."""
        return len(self._entries) if self.timeout else 0

    def next_deadline(self) -> Optional[float]:
        """Return when the least-recently-seen entry times out (``None`` when idle)."""
        if not self.timeout or not self._entries:
            return None
        return min(entry.last_seen for entry in self._entries.values()) + self.timeout

    def stats(self) -> dict[str, float]:
        """Return the table's counters (wired into controller summaries)."""
        return {
            "entries": float(len(self._entries)),
            "insertions": float(self.insertions),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "expirations": float(self.expirations),
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, flow: FlowSpec) -> bool:
        return flow in self._entries or flow.reversed() in self._entries
