"""PF address tables.

``table <lan> { 192.168.0.0/24 }`` defines a named set of addresses and
prefixes; tables can nest (``table <int_hosts> { <lan> <server> }`` in
Figure 2).  :class:`TableSet` resolves the nesting (detecting cycles)
and answers the membership queries rule evaluation needs.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.exceptions import AddressError, PFEvalError
from repro.netsim.addresses import IPv4Address, IPv4Network
from repro.pf.ast_nodes import AddressLiteral, TableDef, TableRef


class AddressTable:
    """A resolved (flattened) named set of IPv4 networks."""

    def __init__(self, name: str, networks: Iterable[IPv4Network] = ()) -> None:
        self.name = name
        self.networks: list[IPv4Network] = list(networks)

    def add(self, item: IPv4Network | IPv4Address | str) -> None:
        """Add an address or prefix to the table."""
        self.networks.append(_to_network(item))

    def contains(self, address: IPv4Address | str) -> bool:
        """Return ``True`` if the address falls inside any member prefix."""
        try:
            address = IPv4Address(address)
        except AddressError:
            return False
        return any(address in network for network in self.networks)

    def __contains__(self, address: IPv4Address | str) -> bool:
        return self.contains(address)

    def __len__(self) -> int:
        return len(self.networks)

    def __repr__(self) -> str:
        return f"AddressTable({self.name!r}, {[str(n) for n in self.networks]})"


class TableSet:
    """All tables of a ruleset, with nested references resolved lazily."""

    def __init__(self, definitions: Optional[dict[str, TableDef]] = None) -> None:
        self._definitions: dict[str, TableDef] = dict(definitions or {})
        self._resolved: dict[str, AddressTable] = {}
        #: Bumped on every mutation; compiled policies record the version
        #: they were built against and recompile when it moves.
        self.version = 0

    @classmethod
    def from_definitions(cls, definitions: dict[str, TableDef]) -> "TableSet":
        """Build a table set from parsed ``table`` statements."""
        return cls(definitions)

    def define(self, definition: TableDef) -> None:
        """Add or replace a table definition (invalidates the resolution cache)."""
        self._definitions[definition.name] = definition
        self._resolved.clear()
        self.version += 1

    def add_table(self, name: str, items: Iterable[str]) -> None:
        """Define a table directly from address/prefix strings (used by scenarios)."""
        literals = tuple(AddressLiteral(str(item)) for item in items)
        self.define(TableDef(name=name, items=literals))

    def names(self) -> list[str]:
        """Return the defined table names, sorted."""
        return sorted(self._definitions)

    def has_table(self, name: str) -> bool:
        """Return ``True`` if a table with this name is defined."""
        return name in self._definitions

    def resolve(self, name: str, _chain: tuple[str, ...] = ()) -> AddressTable:
        """Return the flattened :class:`AddressTable` for ``name``.

        Raises :class:`~repro.exceptions.PFEvalError` for unknown tables
        and for cyclic nesting.
        """
        if name in self._resolved:
            return self._resolved[name]
        if name in _chain:
            cycle = " -> ".join(_chain + (name,))
            raise PFEvalError(f"cyclic table definition: {cycle}")
        definition = self._definitions.get(name)
        if definition is None:
            raise PFEvalError(f"unknown table <{name}>")
        table = AddressTable(name)
        for item in definition.items:
            if isinstance(item, TableRef):
                nested = self.resolve(item.name, _chain + (name,))
                table.networks.extend(nested.networks)
            elif isinstance(item, AddressLiteral):
                table.add(item.text)
            else:
                raise PFEvalError(f"unsupported table item in <{name}>: {item!r}")
        self._resolved[name] = table
        return table

    def contains(self, name: str, address: IPv4Address | str) -> bool:
        """Return ``True`` if ``address`` is a member of table ``name``."""
        return self.resolve(name).contains(address)

    def merge(self, other: "TableSet") -> None:
        """Add every definition from ``other`` (other's definitions win on clash)."""
        self._definitions.update(other._definitions)
        self._resolved.clear()
        self.version += 1

    def __len__(self) -> int:
        return len(self._definitions)


def _to_network(item: IPv4Network | IPv4Address | str) -> IPv4Network:
    if isinstance(item, IPv4Network):
        return item
    if isinstance(item, IPv4Address):
        return IPv4Network(str(item))
    return IPv4Network(str(item))
