"""Rule evaluation: PF's last-match-wins semantics with ``quick`` and PF+=2 predicates.

§3.3: "In vanilla PF, rules are read in top-down order, with the last
matching rule being executed.  A matching rule can force its execution
and bypass later rules if it contains the ``quick`` keyword."  When no
rule matches at all, PF's default is to pass — which is why every
configuration in the paper begins with an explicit ``block all``.

Two execution strategies produce identical verdicts:

* the **interpreted** path (:meth:`PolicyEvaluator.evaluate_interpreted`)
  walks the AST per flow, exactly as written above, and
* the **compiled** path (default) runs the ruleset through
  :mod:`repro.pf.compiler` — closures over pre-parsed addresses plus a
  destination-port/prefix index — and only visits candidate rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.exceptions import PFEvalError
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.netsim.addresses import AddressError, IPv4Address, IPv4Network
from repro.pf.ast_nodes import (
    ACTION_PASS,
    AddressLiteral,
    AnyAddress,
    DictAccess,
    EndpointSpec,
    Expr,
    Literal,
    MacroRef,
    Rule,
    Ruleset,
    TableRef,
    TableRefExpr,
)
from repro.pf.compiler import CompiledPolicy, _split_list, compile_ruleset
from repro.pf.functions import ArgValue, FunctionRegistry, default_registry
from repro.pf.tables import TableSet

#: Maximum nesting depth for ``allowed()`` evaluating delegated rule text
#: that itself calls ``allowed()``.
MAX_NESTED_DEPTH = 4


@dataclass
class EvalContext:
    """Everything a rule needs to be evaluated against one flow."""

    flow: Optional[FlowSpec]
    src_doc: ResponseDocument
    dst_doc: ResponseDocument
    tables: TableSet
    macros: dict[str, str]
    dicts: dict[str, dict[str, str]]
    registry: FunctionRegistry
    extra: dict[str, object] = field(default_factory=dict)
    depth: int = 0
    max_depth: int = MAX_NESTED_DEPTH

    # ------------------------------------------------------------------
    # Value resolution
    # ------------------------------------------------------------------

    def dictionary_lookup(self, dict_name: str, key: str, *, concatenated: bool = False) -> Optional[str]:
        """Resolve ``@name[key]`` / ``*@name[key]``.

        ``@src`` and ``@dst`` read the ident++ response documents with the
        latest-value (or, with ``*``, concatenation) semantics; any other
        name reads a ``dict`` definition from the configuration.
        """
        if dict_name == "src":
            document = self.src_doc
        elif dict_name == "dst":
            document = self.dst_doc
        else:
            named = self.dicts.get(dict_name)
            if named is None:
                raise PFEvalError(f"unknown dictionary @{dict_name}")
            return named.get(key)
        if concatenated:
            value = document.concatenated(key)
            return value if value else None
        return document.latest(key)

    def resolve_expr(self, expr: Expr) -> ArgValue:
        """Resolve a function-call argument to a plain value."""
        if isinstance(expr, DictAccess):
            return self.dictionary_lookup(expr.dict_name, expr.key, concatenated=expr.concatenated)
        if isinstance(expr, MacroRef):
            value = self.macros.get(expr.name)
            if value is None:
                raise PFEvalError(f"unknown macro ${expr.name}")
            return value
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, TableRefExpr):
            return [str(network) for network in self.tables.resolve(expr.name).networks]
        raise PFEvalError(f"cannot resolve expression {expr!r}")


@dataclass
class Verdict:
    """The outcome of evaluating a ruleset against one flow."""

    action: str
    rule: Optional[Rule] = None
    matched_rules: list[Rule] = field(default_factory=list)
    rules_evaluated: int = 0
    quick_terminated: bool = False
    default_used: bool = False

    @property
    def is_pass(self) -> bool:
        """Return ``True`` when the flow is allowed."""
        return self.action == ACTION_PASS

    @property
    def keep_state(self) -> bool:
        """Return ``True`` when the deciding rule asked for ``keep state``."""
        return bool(self.rule is not None and self.rule.keep_state)

    def explain(self) -> str:
        """Return a one-line human-readable explanation (used in audit logs)."""
        if self.rule is None:
            return f"{self.action} (no rule matched; PF default)"
        origin = f" [{self.rule.origin}]" if self.rule.origin else ""
        return f"{self.action} by rule '{self.rule}'{origin}"


class PolicyEvaluator:
    """Evaluates a parsed :class:`~repro.pf.ast_nodes.Ruleset` against flows."""

    def __init__(
        self,
        ruleset: Ruleset,
        *,
        registry: Optional[FunctionRegistry] = None,
        default_action: str = ACTION_PASS,
        name: str = "policy",
        compile_rules: bool = True,
    ) -> None:
        self.name = name
        self.ruleset = ruleset
        self.registry = registry if registry is not None else default_registry()
        self.default_action = default_action
        self.tables = TableSet.from_definitions(ruleset.tables())
        self.macros = ruleset.macros()
        self.dicts = {n: dict(d.entries) for n, d in ruleset.dicts().items()}
        self.compile_rules = compile_rules
        self._compiled: Optional[CompiledPolicy] = None
        self.evaluations = 0
        self.rules_checked = 0
        self.fallback_scans = 0
        self.batches = 0
        self.batched_evaluations = 0
        self.max_batch_size = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def make_context(
        self,
        flow: Optional[FlowSpec],
        src_doc: Optional[ResponseDocument] = None,
        dst_doc: Optional[ResponseDocument] = None,
        *,
        extra: Optional[dict[str, object]] = None,
        depth: int = 0,
    ) -> EvalContext:
        """Build the evaluation context for one flow."""
        return EvalContext(
            flow=flow,
            src_doc=src_doc if src_doc is not None else ResponseDocument(),
            dst_doc=dst_doc if dst_doc is not None else ResponseDocument(),
            tables=self.tables,
            macros=self.macros,
            dicts=self.dicts,
            registry=self.registry,
            extra=dict(extra or {}),
            depth=depth,
        )

    def evaluate(
        self,
        flow: Optional[FlowSpec],
        src_doc: Optional[ResponseDocument] = None,
        dst_doc: Optional[ResponseDocument] = None,
        *,
        extra: Optional[dict[str, object]] = None,
        depth: int = 0,
    ) -> Verdict:
        """Run the ruleset against one flow and return the verdict."""
        context = self.make_context(flow, src_doc, dst_doc, extra=extra, depth=depth)
        return self.evaluate_with_context(context)

    def evaluate_with_context(self, context: EvalContext) -> Verdict:
        """Run the ruleset against an existing context (last match wins, ``quick`` stops).

        Uses the compiled fast path when enabled; flowless evaluation and
        ``compile_rules=False`` fall back to the interpreted linear scan.
        """
        self.evaluations += 1
        if self.compile_rules and context.flow is not None:
            return self._evaluate_compiled(context)
        self.fallback_scans += 1
        return self._evaluate_linear(context)

    def evaluate_batch(
        self,
        items: Sequence[tuple],
        *,
        extra: Optional[dict[str, object]] = None,
    ) -> list[Verdict]:
        """Evaluate many ``(flow, src_doc, dst_doc)`` tuples in one call.

        One :class:`EvalContext` (and one empty response document for
        absent sides) is reused for the whole batch, which amortizes the
        per-decision setup the single-flow API pays every time.
        """
        self.batches += 1
        self.batched_evaluations += len(items)
        self.max_batch_size = max(self.max_batch_size, len(items))
        context = self.make_context(None, None, None, extra=extra)
        empty_doc = context.src_doc
        verdicts: list[Verdict] = []
        for flow, src_doc, dst_doc in items:
            context.flow = flow
            context.src_doc = src_doc if src_doc is not None else empty_doc
            context.dst_doc = dst_doc if dst_doc is not None else empty_doc
            verdicts.append(self.evaluate_with_context(context))
        return verdicts

    def evaluate_interpreted(
        self,
        flow: Optional[FlowSpec],
        src_doc: Optional[ResponseDocument] = None,
        dst_doc: Optional[ResponseDocument] = None,
        *,
        extra: Optional[dict[str, object]] = None,
        depth: int = 0,
    ) -> Verdict:
        """Run the original AST-walking path (the parity reference)."""
        context = self.make_context(flow, src_doc, dst_doc, extra=extra, depth=depth)
        self.evaluations += 1
        return self._evaluate_linear(context)

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------

    @property
    def compiled(self) -> CompiledPolicy:
        """Return the compiled policy, (re)building it if tables moved."""
        compiled = self._compiled
        if compiled is None or compiled.table_version != self.tables.version:
            compiled = compile_ruleset(self.ruleset, self.macros, self.tables)
            self._compiled = compiled
        return compiled

    def _evaluate_compiled(self, context: EvalContext) -> Verdict:
        compiled = self.compiled
        flow = context.flow
        candidates = compiled.index.candidates(flow.dst_port)
        compiled.index_lookups += 1
        dst_octet = flow.dst_ip.to_int() >> 24
        matched: list[Rule] = []
        deciding: Optional[Rule] = None
        rules_evaluated = 0
        quick_terminated = False
        for candidate in candidates:
            rules_evaluated += 1
            octets = candidate.dst_octets
            if octets is not None and dst_octet not in octets:
                compiled.gate_skipped += 1
                continue
            compiled.candidates_visited += 1
            self.rules_checked += 1
            if candidate.matches(context):
                rule = candidate.rule
                matched.append(rule)
                deciding = rule
                if rule.quick:
                    quick_terminated = True
                    break
        if deciding is None:
            return Verdict(
                action=self.default_action,
                rule=None,
                matched_rules=[],
                rules_evaluated=rules_evaluated,
                default_used=True,
            )
        return Verdict(
            action=deciding.action,
            rule=deciding,
            matched_rules=matched,
            rules_evaluated=rules_evaluated,
            quick_terminated=quick_terminated,
        )

    def _evaluate_linear(self, context: EvalContext) -> Verdict:
        matched: list[Rule] = []
        deciding: Optional[Rule] = None
        rules_evaluated = 0
        quick_terminated = False
        for rule in self.ruleset.rules():
            rules_evaluated += 1
            self.rules_checked += 1
            if self._rule_matches(rule, context):
                matched.append(rule)
                deciding = rule
                if rule.quick:
                    quick_terminated = True
                    break
        if deciding is None:
            return Verdict(
                action=self.default_action,
                rule=None,
                matched_rules=[],
                rules_evaluated=rules_evaluated,
                default_used=True,
            )
        return Verdict(
            action=deciding.action,
            rule=deciding,
            matched_rules=matched,
            rules_evaluated=rules_evaluated,
            quick_terminated=quick_terminated,
        )

    # ------------------------------------------------------------------
    # Rule matching
    # ------------------------------------------------------------------

    def _rule_matches(self, rule: Rule, context: EvalContext) -> bool:
        flow = context.flow
        if flow is not None:
            if not self._endpoint_matches(rule.src, flow.src_ip, flow.src_port, context):
                return False
            if not self._endpoint_matches(rule.dst, flow.dst_ip, flow.dst_port, context):
                return False
        elif not (rule.src.is_any() and rule.dst.is_any()):
            # Without a flow only address-free rules can match.
            return False
        for condition in rule.conditions:
            args = [context.resolve_expr(argument) for argument in condition.args]
            if not context.registry.call(condition.name, context, args):
                return False
        return True

    def _endpoint_matches(
        self,
        endpoint: EndpointSpec,
        address: IPv4Address,
        port: int,
        context: EvalContext,
    ) -> bool:
        if endpoint.port is not None and endpoint.port != port:
            return False
        matches = self._address_matches(endpoint, address, context)
        if endpoint.negated:
            matches = not matches
        return matches

    def _address_matches(
        self, endpoint: EndpointSpec, address: IPv4Address, context: EvalContext
    ) -> bool:
        spec = endpoint.address
        if isinstance(spec, AnyAddress):
            return True
        if isinstance(spec, TableRef):
            return context.tables.contains(spec.name, address)
        if isinstance(spec, AddressLiteral):
            return _literal_contains(spec.text, address)
        if isinstance(spec, MacroRef):
            value = context.macros.get(spec.name)
            if value is None:
                raise PFEvalError(f"unknown macro ${spec.name} used as an address")
            return any(_literal_contains(part, address) for part in _split_list(value))
        raise PFEvalError(f"unsupported endpoint address spec: {spec!r}")

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """Return evaluator counters (used by the throughput benchmark).

        Includes the compile/index counters so benchmarks can assert the
        index is actually being hit rather than silently falling back.
        """
        stats = {
            "evaluations": float(self.evaluations),
            "rules_checked": float(self.rules_checked),
            "rules_in_policy": float(len(self.ruleset.rules())),
            "fallback_scans": float(self.fallback_scans),
            "batches": float(self.batches),
            "batched_evaluations": float(self.batched_evaluations),
            "max_batch_size": float(self.max_batch_size),
            "compile_enabled": 1.0 if self.compile_rules else 0.0,
        }
        if self._compiled is not None:
            stats.update(self._compiled.stats())
        return stats


def _literal_contains(text: str, address: IPv4Address) -> bool:
    try:
        if "/" in text:
            return address in IPv4Network(text)
        return IPv4Address(text) == address
    except AddressError:
        return False
