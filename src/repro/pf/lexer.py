"""Lexer for PF+=2.

The lexer is deliberately newline-insensitive: the paper's configuration
files make heavy use of trailing-backslash line continuations (every
multi-line rule in Figures 2–8), so by the time rule text reaches the
parser, line structure carries no meaning — rules are delimited by their
leading ``pass`` / ``block`` action keywords instead.

Comments run from ``#`` to end of line.  Quoted strings keep their inner
whitespace (used by macros such as ``allowed = "{ http ssh }"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import PFLexError

# Token types.
WORD = "WORD"
STRING = "STRING"
LANGLE = "LANGLE"
RANGLE = "RANGLE"
LBRACE = "LBRACE"
RBRACE = "RBRACE"
LPAREN = "LPAREN"
RPAREN = "RPAREN"
LBRACKET = "LBRACKET"
RBRACKET = "RBRACKET"
COMMA = "COMMA"
COLON = "COLON"
BANG = "BANG"
EQUALS = "EQUALS"
DOLLAR = "DOLLAR"
AT = "AT"
STAR = "STAR"
EOF = "EOF"

_SINGLE_CHAR_TOKENS = {
    "<": LANGLE,
    ">": RANGLE,
    "{": LBRACE,
    "}": RBRACE,
    "(": LPAREN,
    ")": RPAREN,
    "[": LBRACKET,
    "]": RBRACKET,
    ",": COMMA,
    ":": COLON,
    "!": BANG,
    "=": EQUALS,
    "$": DOLLAR,
    "@": AT,
    "*": STAR,
}

#: Characters allowed inside a bare WORD token.  Covers identifiers,
#: key names with dashes (``req-sig``, ``os-patch``), numbers, IPv4
#: addresses and CIDR prefixes, signature/hash blobs, domain names and
#: executable paths.
_WORD_CHARS = set(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789"
    "._-/+"
)


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    type: str
    value: str
    line: int
    column: int

    def is_word(self, *values: str) -> bool:
        """Return ``True`` if this is a WORD token equal to any of ``values`` (case-insensitive)."""
        return self.type == WORD and self.value.lower() in {v.lower() for v in values}

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}, line {self.line})"


def _strip_continuations(text: str) -> str:
    """Replace backslash-newline continuations with plain spaces."""
    return text.replace("\\\r\n", " ").replace("\\\n", " ")


def tokenize(text: str) -> list[Token]:
    """Tokenise PF+=2 source text.

    Raises :class:`~repro.exceptions.PFLexError` on characters that
    cannot start a token.
    """
    return list(_tokenize_iter(_strip_continuations(text)))


def _tokenize_iter(text: str) -> Iterator[Token]:
    line = 1
    column = 1
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#":
            # Comment to end of line.
            while index < length and text[index] != "\n":
                index += 1
            continue
        if char == '"':
            end = text.find('"', index + 1)
            if end == -1:
                raise PFLexError("unterminated string literal", line, column)
            value = text[index + 1 : end]
            yield Token(STRING, value, line, column)
            column += end - index + 1
            index = end + 1
            continue
        if char in _SINGLE_CHAR_TOKENS:
            yield Token(_SINGLE_CHAR_TOKENS[char], char, line, column)
            index += 1
            column += 1
            continue
        if char in _WORD_CHARS:
            start = index
            while index < length and text[index] in _WORD_CHARS:
                index += 1
            value = text[start:index]
            yield Token(WORD, value, line, column)
            column += index - start
            continue
        raise PFLexError(f"unexpected character {char!r}", line, column)
    yield Token(EOF, "", line, column)
