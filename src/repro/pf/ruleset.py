"""Loading ``.control`` configuration files.

§3.4: "The controller's configuration files reside in a well known
location and have the ``.control`` extension.  The files are read in
alphabetical order and their contents are concatenated.  Some of these
configuration files can be written by the administrator, while others
can be provided by application developers or third-party security
companies."

:class:`RulesetLoader` implements exactly that: files are registered by
name (from memory or from a directory on disk), sorted alphabetically,
parsed and concatenated into a single :class:`~repro.pf.ast_nodes.Ruleset`.
The alphabetical convention is what makes the Figure 2 layout work:
``00-local-header.control`` (defaults and the ``block all``),
``50-skype.control`` (application-supplied rules) and
``99-local-footer.control`` (administrator constraints that must come
last so they win under last-match semantics).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.exceptions import PolicyError
from repro.pf.ast_nodes import Ruleset
from repro.pf.parser import parse_ruleset

#: The configuration file extension the controller looks for.
CONTROL_EXTENSION = ".control"


@dataclass
class ControlFile:
    """One named configuration file."""

    name: str
    text: str
    provenance: str = "administrator"

    def parse(self) -> Ruleset:
        """Parse this file's contents."""
        return parse_ruleset(self.text, origin=self.name)


class RulesetLoader:
    """Collects ``.control`` files and concatenates them in alphabetical order."""

    def __init__(self) -> None:
        self._files: dict[str, ControlFile] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_file(self, name: str, text: str, *, provenance: str = "administrator") -> ControlFile:
        """Register a configuration file by name.

        Re-registering a name replaces the previous contents (the way
        overwriting the file on disk would).
        """
        if not name.endswith(CONTROL_EXTENSION):
            name = name + CONTROL_EXTENSION
        control_file = ControlFile(name=name, text=text, provenance=provenance)
        self._files[name] = control_file
        return control_file

    def add_files(self, files: dict[str, str], *, provenance: str = "administrator") -> None:
        """Register several files at once."""
        for name, text in files.items():
            self.add_file(name, text, provenance=provenance)

    def remove_file(self, name: str) -> bool:
        """Unregister a file (e.g. withdrawing a third party's rules). Returns ``True`` if present."""
        if not name.endswith(CONTROL_EXTENSION):
            name = name + CONTROL_EXTENSION
        return self._files.pop(name, None) is not None

    def load_directory(self, path: str) -> int:
        """Load every ``*.control`` file from a directory on disk.

        Returns the number of files loaded.  Missing directories raise
        :class:`~repro.exceptions.PolicyError`.
        """
        if not os.path.isdir(path):
            raise PolicyError(f"not a configuration directory: {path}")
        count = 0
        for entry in sorted(os.listdir(path)):
            if not entry.endswith(CONTROL_EXTENSION):
                continue
            full_path = os.path.join(path, entry)
            with open(full_path, "r", encoding="utf-8") as handle:
                self.add_file(entry, handle.read(), provenance=f"file:{full_path}")
            count += 1
        return count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def file_names(self) -> list[str]:
        """Return registered file names in the order they will be concatenated."""
        return sorted(self._files)

    def files(self) -> Iterator[ControlFile]:
        """Iterate over files in concatenation (alphabetical) order."""
        for name in self.file_names():
            yield self._files[name]

    def get(self, name: str) -> Optional[ControlFile]:
        """Return a registered file by name."""
        if not name.endswith(CONTROL_EXTENSION):
            name = name + CONTROL_EXTENSION
        return self._files.get(name)

    def __len__(self) -> int:
        return len(self._files)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def build(self) -> Ruleset:
        """Parse and concatenate every registered file, alphabetically."""
        combined = Ruleset(name="+".join(self.file_names()))
        for control_file in self.files():
            combined.extend(control_file.parse())
        return combined

    def concatenated_text(self) -> str:
        """Return the raw concatenation of all files (useful for debugging)."""
        return "\n".join(control_file.text for control_file in self.files())


def build_ruleset(files: dict[str, str] | Iterable[tuple[str, str]]) -> Ruleset:
    """One-shot helper: build a ruleset from ``{file name: contents}``."""
    loader = RulesetLoader()
    if isinstance(files, dict):
        items = files.items()
    else:
        items = files
    for name, text in items:
        loader.add_file(name, text)
    return loader.build()
