"""Compilation and indexing of PF+=2 rulesets (the evaluator fast path).

The interpreted evaluator re-walks the AST for every flow: each
:class:`~repro.pf.ast_nodes.Rule` re-parses its address literals, re-reads
macros and re-dispatches on node types.  That is fine for the paper's
hand-written figures but collapses linearly once rulesets reach the
thousands of rules the benchmarks (E10b) sweep.

This module pays that cost once, at :class:`~repro.pf.evaluator.PolicyEvaluator`
build time:

* every rule becomes a :class:`CompiledRule` — a closure that checks the
  flow against pre-parsed integer network/mask pairs (address literals and
  macro address lists are parsed exactly once), with condition arguments
  pre-resolved when they are literals or macros;
* rules are placed in a :class:`RuleIndex` keyed on the destination port,
  with an additional first-octet prefix gate for literal destination
  prefixes, so a decision only visits candidate rules;
* un-indexable rules (no destination port, raising source endpoints,
  flowless evaluation) fall back to the always-visited scan bucket so
  last-match-wins, ``quick`` and error semantics are bit-identical to the
  interpreted path.

The index only ever *skips* rules that provably cannot match (destination
port mismatch, destination octet outside every literal prefix) and never
reorders them, which is what keeps the verdicts identical — the parity
test suite (``tests/test_pf_compiler_parity.py``) asserts exactly that
over the benchmark rulesets and the paper-figure configurations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.exceptions import PFEvalError
from repro.netsim.addresses import AddressError, IPv4Network
from repro.pf.ast_nodes import (
    AddressLiteral,
    AnyAddress,
    DictAccess,
    EndpointSpec,
    FuncCall,
    Literal,
    MacroRef,
    Rule,
    Ruleset,
    TableRef,
    TableRefExpr,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.pf.evaluator import EvalContext
    from repro.pf.tables import TableSet

#: Signature of a compiled address matcher: ``(address_int, context) -> bool``.
AddressMatcher = Callable[[int, "EvalContext"], bool]
#: Signature of a compiled condition: ``(context) -> bool``.
ConditionFn = Callable[["EvalContext"], bool]


def _split_list(value: str) -> Sequence[str]:
    text = value.strip()
    if text.startswith("{") and text.endswith("}"):
        text = text[1:-1]
    return text.split()


def _parse_literal(text: str) -> Optional[tuple[int, int]]:
    """Parse an address/CIDR literal once into ``(mask, network)`` ints.

    Returns ``None`` for unparseable text — the interpreted path treats
    those as never-matching, so the compiled matcher must too.
    """
    try:
        network = IPv4Network(text)
    except AddressError:
        return None
    return (network.netmask_int(), network.network_address.to_int())


def _octets_for(mask_net: tuple[int, int]) -> Optional[frozenset[int]]:
    """Return the set of first octets a prefix can cover (``None`` = any)."""
    mask, net = mask_net
    high_mask = (mask >> 24) & 0xFF
    base = (net >> 24) & 0xFF
    span = 0xFF & ~high_mask
    if span > 7:
        # Shorter than /5: the octet set is too wide to be a useful gate.
        return None
    return frozenset(range(base, base + span + 1))


class _CompiledAddress:
    """One endpoint address spec, pre-resolved as far as it safely can be."""

    __slots__ = ("matcher", "octets", "total")

    def __init__(self, matcher: Optional[AddressMatcher], octets: Optional[frozenset[int]], total: bool) -> None:
        #: ``None`` means "matches everything" (``any``).
        self.matcher = matcher
        #: First-octet gate for literal prefixes (``None`` = no gate).
        self.octets = octets
        #: ``True`` when evaluation can never raise (safe to skip via the index).
        self.total = total


def _compile_address(spec: object, macros: dict[str, str], tables: "TableSet") -> _CompiledAddress:
    if isinstance(spec, AnyAddress):
        return _CompiledAddress(None, None, True)
    if isinstance(spec, AddressLiteral):
        parsed = _parse_literal(spec.text)
        if parsed is None:
            return _CompiledAddress(lambda value, ctx: False, frozenset(), True)
        mask, net = parsed

        def literal_matcher(value: int, ctx: "EvalContext", _mask: int = mask, _net: int = net) -> bool:
            return (value & _mask) == _net

        return _CompiledAddress(literal_matcher, _octets_for(parsed), True)
    if isinstance(spec, TableRef):
        name = spec.name
        # Resolvable now == cannot raise later (tables are only ever added,
        # and a redefinition bumps the TableSet version, forcing a recompile).
        try:
            tables.resolve(name)
            total = True
        except PFEvalError:
            total = False

        def table_matcher(value: int, ctx: "EvalContext", _name: str = name) -> bool:
            return any((value & n.netmask_int()) == n.network_address.to_int()
                       for n in ctx.tables.resolve(_name).networks)

        return _CompiledAddress(table_matcher, None, total)
    if isinstance(spec, MacroRef):
        value = macros.get(spec.name)
        if value is None:
            message = f"unknown macro ${spec.name} used as an address"

            def raising_matcher(value_int: int, ctx: "EvalContext", _msg: str = message) -> bool:
                raise PFEvalError(_msg)

            return _CompiledAddress(raising_matcher, None, False)
        parts = [_parse_literal(part) for part in _split_list(value)]
        parsed_parts = tuple(part for part in parts if part is not None)

        def macro_matcher(value_int: int, ctx: "EvalContext", _parts: tuple = parsed_parts) -> bool:
            return any((value_int & mask) == net for mask, net in _parts)

        octets: Optional[frozenset[int]] = None
        part_octets = [_octets_for(part) for part in parsed_parts]
        if len(parsed_parts) == len(parts) and all(po is not None for po in part_octets):
            octets = frozenset().union(*part_octets) if part_octets else frozenset()
        return _CompiledAddress(macro_matcher, octets, True)
    raise PFEvalError(f"unsupported endpoint address spec: {spec!r}")


class _CompiledEndpoint:
    """A ``from``/``to`` clause compiled to port + pre-parsed address checks."""

    __slots__ = ("port", "matcher", "negated", "octets", "total")

    def __init__(self, endpoint: EndpointSpec, macros: dict[str, str], tables: "TableSet") -> None:
        self.port = endpoint.port
        compiled = _compile_address(endpoint.address, macros, tables)
        self.matcher = compiled.matcher
        self.negated = endpoint.negated
        # Negation makes a prefix gate invalid (the rule matches *outside*
        # the prefix), so only un-negated endpoints keep their octet set.
        self.octets = compiled.octets if not endpoint.negated else None
        self.total = compiled.total

    def matches(self, address_int: int, port: int, context: "EvalContext") -> bool:
        if self.port is not None and self.port != port:
            return False
        if self.matcher is None:
            matched = True
        else:
            matched = self.matcher(address_int, context)
        return not matched if self.negated else matched


def _compile_condition(condition: FuncCall, macros: dict[str, str]) -> ConditionFn:
    """Compile one ``with`` predicate, pre-resolving literal/macro arguments."""
    resolvers: list[object] = []
    all_const = True
    for argument in condition.args:
        if isinstance(argument, Literal):
            resolvers.append(("const", argument.value))
        elif isinstance(argument, MacroRef):
            value = macros.get(argument.name)
            if value is None:
                message = f"unknown macro ${argument.name}"

                def raising_resolver(ctx: "EvalContext", _msg: str = message) -> object:
                    raise PFEvalError(_msg)

                resolvers.append(("fn", raising_resolver))
                all_const = False
            else:
                resolvers.append(("const", value))
        elif isinstance(argument, DictAccess):
            def dict_resolver(
                ctx: "EvalContext",
                _name: str = argument.dict_name,
                _key: str = argument.key,
                _concat: bool = argument.concatenated,
            ) -> object:
                return ctx.dictionary_lookup(_name, _key, concatenated=_concat)

            resolvers.append(("fn", dict_resolver))
            all_const = False
        elif isinstance(argument, TableRefExpr):
            def table_resolver(ctx: "EvalContext", _name: str = argument.name) -> object:
                return [str(network) for network in ctx.tables.resolve(_name).networks]

            resolvers.append(("fn", table_resolver))
            all_const = False
        else:
            message = f"cannot resolve expression {argument!r}"

            def unknown_resolver(ctx: "EvalContext", _msg: str = message) -> object:
                raise PFEvalError(_msg)

            resolvers.append(("fn", unknown_resolver))
            all_const = False
    name = condition.name
    if all_const:
        fixed_args = [value for _, value in resolvers]

        def constant_call(ctx: "EvalContext", _name: str = name, _args: list = fixed_args) -> bool:
            return ctx.registry.call(_name, ctx, _args)

        return constant_call

    steps = tuple(resolvers)

    def dynamic_call(ctx: "EvalContext", _name: str = name, _steps: tuple = steps) -> bool:
        args = [value if kind == "const" else value(ctx) for kind, value in _steps]
        return ctx.registry.call(_name, ctx, args)

    return dynamic_call


class CompiledRule:
    """One rule compiled to closures, plus the keys the index needs."""

    __slots__ = (
        "rule",
        "position",
        "src",
        "dst",
        "conditions",
        "address_free",
        "index_port",
        "dst_octets",
    )

    def __init__(self, rule: Rule, position: int, macros: dict[str, str], tables: "TableSet") -> None:
        self.rule = rule
        self.position = position
        self.src = _CompiledEndpoint(rule.src, macros, tables)
        self.dst = _CompiledEndpoint(rule.dst, macros, tables)
        self.conditions = tuple(_compile_condition(c, macros) for c in rule.conditions)
        self.address_free = rule.src.is_any() and rule.dst.is_any()
        # The interpreted path evaluates src before dst, so skipping a rule
        # on its dst port is only sound when the src side cannot raise.
        if self.src.total and self.dst.port is not None:
            self.index_port = self.dst.port
        else:
            self.index_port = None
        self.dst_octets = self.dst.octets if self.src.total else None

    def matches(self, context: "EvalContext") -> bool:
        flow = context.flow
        if flow is not None:
            if not self.src.matches(flow.src_ip.to_int(), flow.src_port, context):
                return False
            if not self.dst.matches(flow.dst_ip.to_int(), flow.dst_port, context):
                return False
        elif not self.address_free:
            return False
        for condition in self.conditions:
            if not condition(context):
                return False
        return True


class RuleIndex:
    """Destination-port buckets plus the always-visited scan bucket.

    ``candidates(port)`` merges the port bucket with the scan bucket in
    original rule order; rules the index cannot safely skip live in the
    scan bucket, which degrades gracefully to the interpreted linear walk.
    """

    def __init__(self, compiled: Sequence[CompiledRule]) -> None:
        self._port_buckets: dict[int, list[CompiledRule]] = {}
        self._scan: list[CompiledRule] = []
        for rule in compiled:
            if rule.index_port is not None:
                self._port_buckets.setdefault(rule.index_port, []).append(rule)
            else:
                self._scan.append(rule)
        self._scan_only = tuple(self._scan)
        # Merged candidate lists are cached per indexed port only, so the
        # cache is bounded by the number of distinct ports in the ruleset
        # (a port sweep over unindexed ports shares _scan_only).
        self._candidates_cache: dict[int, tuple[CompiledRule, ...]] = {}
        self.indexed_rules = sum(len(bucket) for bucket in self._port_buckets.values())
        self.scan_rules = len(self._scan)

    def candidates(self, dst_port: int) -> tuple[CompiledRule, ...]:
        bucket = self._port_buckets.get(dst_port)
        if not bucket:
            return self._scan_only
        cached = self._candidates_cache.get(dst_port)
        if cached is not None:
            return cached
        merged = tuple(sorted(bucket + self._scan, key=lambda rule: rule.position))
        self._candidates_cache[dst_port] = merged
        return merged


class CompiledPolicy:
    """A fully compiled ruleset: per-rule closures + the candidate index."""

    def __init__(self, ruleset: Ruleset, macros: dict[str, str], tables: "TableSet") -> None:
        self.rules = tuple(
            CompiledRule(rule, position, macros, tables)
            for position, rule in enumerate(ruleset.rules())
        )
        self.index = RuleIndex(self.rules)
        self.table_version = tables.version
        # Counters the benchmarks assert on (PolicyEvaluator.stats()).
        self.index_lookups = 0
        self.candidates_visited = 0
        self.gate_skipped = 0

    def stats(self) -> dict[str, float]:
        """Return compile/index counters."""
        return {
            "compiled_rules": float(len(self.rules)),
            "indexed_rules": float(self.index.indexed_rules),
            "scan_bucket_rules": float(self.index.scan_rules),
            "index_lookups": float(self.index_lookups),
            "candidates_visited": float(self.candidates_visited),
            "gate_skipped": float(self.gate_skipped),
        }


def compile_ruleset(ruleset: Ruleset, macros: dict[str, str], tables: "TableSet") -> CompiledPolicy:
    """Compile a parsed ruleset against its macros and tables."""
    return CompiledPolicy(ruleset, macros, tables)
