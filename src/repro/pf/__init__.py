"""PF+=2 — the paper's policy language (§3.3).

PF+=2 extends OpenBSD PF with:

* the ``dict`` keyword (named dictionaries such as ``<pubkeys>``),
* the ``with`` keyword introducing boolean function-call predicates over
  the ``@src`` / ``@dst`` dictionaries filled from ident++ responses,
* ``*@src[key]`` concatenation across response sections, and
* user-definable functions, with ``eq, gt, lt, gte, lte, member,
  allowed, verify`` predefined (plus ``includes``, used by Figure 8).

The package contains a from-scratch lexer
(:mod:`repro.pf.lexer`), recursive-descent parser
(:mod:`repro.pf.parser`), AST (:mod:`repro.pf.ast_nodes`), address
tables (:mod:`repro.pf.tables`), the predicate function registry
(:mod:`repro.pf.functions`), the last-match-wins / ``quick`` evaluator
(:mod:`repro.pf.evaluator`), the ``keep state`` state table
(:mod:`repro.pf.state`) and the ``*.control`` configuration loader that
concatenates files in alphabetical order (:mod:`repro.pf.ruleset`).

Performance note: by default the evaluator does **not** interpret the
AST per flow — :mod:`repro.pf.compiler` compiles every rule into a
closure over pre-parsed addresses and indexes the ruleset by destination
port and prefix, so a decision only touches candidate rules.  See
``compiler.py`` for the compilation model and the "Performance
architecture" section of the repository README for how the pieces fit.

Every rule listed in Figures 2, 4, 5, 6, 7 and 8 of the paper parses and
evaluates with this package; the figure benchmarks assert exactly that.
"""

from repro.pf.ast_nodes import (
    ACTION_BLOCK,
    ACTION_PASS,
    DictDef,
    EndpointSpec,
    FuncCall,
    MacroDef,
    Rule,
    Ruleset,
    TableDef,
)
from repro.pf.compiler import CompiledPolicy, CompiledRule, RuleIndex, compile_ruleset
from repro.pf.evaluator import EvalContext, PolicyEvaluator, Verdict
from repro.pf.functions import FunctionRegistry, default_registry
from repro.pf.lexer import Token, tokenize
from repro.pf.parser import parse_ruleset, parse_rules_text
from repro.pf.ruleset import ControlFile, RulesetLoader
from repro.pf.state import StateEntry, StateTable
from repro.pf.tables import AddressTable, TableSet

__all__ = [
    "ACTION_BLOCK",
    "ACTION_PASS",
    "DictDef",
    "EndpointSpec",
    "FuncCall",
    "MacroDef",
    "Rule",
    "Ruleset",
    "TableDef",
    "CompiledPolicy",
    "CompiledRule",
    "RuleIndex",
    "compile_ruleset",
    "EvalContext",
    "PolicyEvaluator",
    "Verdict",
    "FunctionRegistry",
    "default_registry",
    "Token",
    "tokenize",
    "parse_ruleset",
    "parse_rules_text",
    "ControlFile",
    "RulesetLoader",
    "StateEntry",
    "StateTable",
    "AddressTable",
    "TableSet",
]
