"""Abstract syntax tree for PF+=2.

The node set mirrors the subset of PF the paper uses plus the PF+=2
extensions: ``table``/``dict``/macro definitions, ``pass``/``block``
rules with ``from``/``to`` endpoints, ``with`` function-call predicates,
``quick`` and ``keep state``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

ACTION_PASS = "pass"
ACTION_BLOCK = "block"

#: Well-known service names accepted where a port is expected.
NAMED_PORTS = {
    "http": 80,
    "https": 443,
    "ssh": 22,
    "smtp": 25,
    "dns": 53,
    "telnet": 23,
    "ident": 113,
    "identpp": 783,
    "imap": 143,
    "pop3": 110,
    "smb": 445,
    "rdp": 3389,
}


# ---------------------------------------------------------------------------
# Expressions (arguments to ``with`` function calls)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DictAccess:
    """``@src[userID]``, ``@dst[req-sig]``, ``@pubkeys[research]`` or ``*@src[key]``.

    ``concatenated`` marks the ``*@`` form, which joins the values from
    every response section instead of taking the latest one (§3.3).
    """

    dict_name: str
    key: str
    concatenated: bool = False

    def __str__(self) -> str:
        prefix = "*" if self.concatenated else ""
        return f"{prefix}@{self.dict_name}[{self.key}]"


@dataclass(frozen=True)
class MacroRef:
    """``$allowed`` — a reference to a macro definition."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class Literal:
    """A bareword, number or quoted string argument."""

    value: str
    quoted: bool = False

    def __str__(self) -> str:
        return f'"{self.value}"' if self.quoted else self.value


@dataclass(frozen=True)
class TableRefExpr:
    """``<mail-server>`` used as a function argument."""

    name: str

    def __str__(self) -> str:
        return f"<{self.name}>"


Expr = Union[DictAccess, MacroRef, Literal, TableRefExpr]


# ---------------------------------------------------------------------------
# Endpoint (from/to) specifications
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AnyAddress:
    """``any`` — matches every address."""

    def __str__(self) -> str:
        return "any"


@dataclass(frozen=True)
class TableRef:
    """``<lan>`` — the contents of a named address table."""

    name: str

    def __str__(self) -> str:
        return f"<{self.name}>"


@dataclass(frozen=True)
class AddressLiteral:
    """A literal IPv4 address or CIDR prefix appearing inline in a rule."""

    text: str

    def __str__(self) -> str:
        return self.text


AddressSpec = Union[AnyAddress, TableRef, AddressLiteral, MacroRef]


@dataclass(frozen=True)
class EndpointSpec:
    """One side of a rule: an address set, optional negation and optional port."""

    address: AddressSpec = field(default_factory=AnyAddress)
    negated: bool = False
    port: Optional[int] = None

    @classmethod
    def any(cls) -> "EndpointSpec":
        """Return the unconstrained endpoint (``any``)."""
        return cls()

    def is_any(self) -> bool:
        """Return ``True`` when the endpoint matches everything."""
        return isinstance(self.address, AnyAddress) and not self.negated and self.port is None

    def __str__(self) -> str:
        text = ("!" if self.negated else "") + str(self.address)
        if self.port is not None:
            text += f" port {self.port}"
        return text


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FuncCall:
    """A ``with`` predicate: a boolean function applied to evaluated arguments."""

    name: str
    args: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(arg) for arg in self.args)})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Rule:
    """One ``pass``/``block`` rule."""

    action: str
    src: EndpointSpec = field(default_factory=EndpointSpec.any)
    dst: EndpointSpec = field(default_factory=EndpointSpec.any)
    conditions: tuple[FuncCall, ...] = ()
    quick: bool = False
    keep_state: bool = False
    origin: str = ""
    line: int = 0

    @property
    def is_pass(self) -> bool:
        """Return ``True`` for ``pass`` rules."""
        return self.action == ACTION_PASS

    @property
    def is_block(self) -> bool:
        """Return ``True`` for ``block`` rules."""
        return self.action == ACTION_BLOCK

    def __str__(self) -> str:
        parts = [self.action]
        if self.quick:
            parts.append("quick")
        if self.src.is_any() and self.dst.is_any():
            parts.append("all")
        else:
            parts.append(f"from {self.src}")
            parts.append(f"to {self.dst}")
        for condition in self.conditions:
            parts.append(f"with {condition}")
        if self.keep_state:
            parts.append("keep state")
        return " ".join(parts)


@dataclass
class TableDef:
    """``table <name> { item item ... }``; items are addresses, prefixes or nested tables."""

    name: str
    items: tuple[Union[AddressLiteral, TableRef], ...] = ()
    origin: str = ""

    def __str__(self) -> str:
        inner = " ".join(str(item) for item in self.items)
        return f"table <{self.name}> {{ {inner} }}"


@dataclass
class DictDef:
    """``dict <name> { key : value ... }`` — PF+=2's named dictionaries."""

    name: str
    entries: dict[str, str] = field(default_factory=dict)
    origin: str = ""

    def __str__(self) -> str:
        inner = " ".join(f"{k} : {v}" for k, v in self.entries.items())
        return f"dict <{self.name}> {{ {inner} }}"


@dataclass
class MacroDef:
    """``name = "value"`` — a PF macro."""

    name: str
    value: str
    origin: str = ""

    def __str__(self) -> str:
        return f'{self.name} = "{self.value}"'


Statement = Union[Rule, TableDef, DictDef, MacroDef]


# ---------------------------------------------------------------------------
# Rulesets
# ---------------------------------------------------------------------------

class Ruleset:
    """An ordered list of statements (the concatenation of ``.control`` files)."""

    def __init__(self, statements: Optional[list[Statement]] = None, name: str = "") -> None:
        self.name = name
        self.statements: list[Statement] = list(statements or [])

    def append(self, statement: Statement) -> None:
        """Append one statement."""
        self.statements.append(statement)

    def extend(self, other: "Ruleset") -> None:
        """Append every statement of another ruleset (file concatenation)."""
        self.statements.extend(other.statements)

    def rules(self) -> list[Rule]:
        """Return the rules in order."""
        return [s for s in self.statements if isinstance(s, Rule)]

    def tables(self) -> dict[str, TableDef]:
        """Return table definitions by name (later definitions win)."""
        return {s.name: s for s in self.statements if isinstance(s, TableDef)}

    def dicts(self) -> dict[str, DictDef]:
        """Return dict definitions by name (later definitions win)."""
        return {s.name: s for s in self.statements if isinstance(s, DictDef)}

    def macros(self) -> dict[str, str]:
        """Return macro values by name (later definitions win)."""
        return {s.name: s.value for s in self.statements if isinstance(s, MacroDef)}

    def to_text(self) -> str:
        """Serialise the ruleset back to PF+=2 source (one statement per line)."""
        return "\n".join(str(statement) for statement in self.statements)

    def __iter__(self) -> Iterator[Statement]:
        return iter(self.statements)

    def __len__(self) -> int:
        return len(self.statements)

    def __repr__(self) -> str:
        return f"Ruleset({self.name!r}, statements={len(self.statements)}, rules={len(self.rules())})"
