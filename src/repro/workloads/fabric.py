"""Fabric workloads: path-wide enforcement on a multi-hop data plane.

The paper's controller installs flow entries "along the path" of an
approved flow (§3.4).  On the single-switch networks of the earlier
workloads that collapses to one hop; :class:`FabricScaleBench` runs the
same punt pipeline on a spine-leaf fabric and gates the three properties
that make path-wide enforcement real (recorded in
``BENCH_results.json`` and runnable standalone via ``make soak_fabric``):

1. **One punt per flow, k hops per install** — an approved flow's first
   packet punts exactly once (at its ingress leaf); the owning shard of
   a 2-shard cluster installs forward + reverse entries on *every*
   switch of ``Topology.shortest_path`` (leaf → spine → leaf), and the
   packet is delivered across the fabric without further controller
   involvement.
2. **Mid-path failure fails closed** — killing the spine of an approved
   flow's path stops delivery instantly (the dead hop forwards
   nothing), and the first ``FlowRemoved`` from a surviving hop unwinds
   the rest of the path, so no live hop retains an entry for a flow
   whose path is gone.
3. **Fabric throughput within 1.5x of single-switch** — with the
   controller modelled as a serial decision loop
   (``ControllerConfig.serialize_decisions``), decided-flows per
   simulated second on a 4-leaf fabric must stay within
   :data:`FABRIC_SLOWDOWN_CEILING` of the single-switch baseline:
   path-wide install must not turn k hops into a k-fold setup cost.

Run standalone::

    python -m repro.workloads.fabric
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPClusterNetwork, IdentPPNetwork
from repro.openflow.switch import OpenFlowSwitch

#: The fabric workloads' policy: allow web traffic statefully.
FABRIC_POLICY = (
    "block all\n"
    "pass from any to any port 80 keep state\n"
)

#: Acceptance ceiling on (single-switch throughput / fabric throughput):
#: path-wide install may cost at most 1.5x in decided-flows/vsec.
FABRIC_SLOWDOWN_CEILING = 1.5


def _place_hosts(net, client_switches, server_switch, clients: int) -> None:
    """Attach ``clients`` hosts round-robin to ``client_switches`` and the
    server (port 80) to ``server_switch``.

    On a fabric, pass the leaves minus the server leaf so every flow
    crosses it; on the single-switch baseline, pass the one switch for
    both roles.  One host plan for both variants keeps the throughput
    comparison apples-to-apples.
    """
    for index in range(clients):
        net.add_host(
            HostSpec(
                name=f"client{index}",
                ip=f"192.168.0.{10 + index}",
                users={"alice": ("users", "staff")},
            ),
            switch=client_switches[index % len(client_switches)],
        )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=server_switch)
    server.run_server("httpd", "root", 80)


def _spread_hosts(net, fabric, clients: int) -> None:
    """Clients on all leaves but the last, the server on the last leaf."""
    _place_hosts(net, fabric.leaves[:-1], fabric.leaves[-1], clients)


@dataclass
class FabricScaleConfig:
    """Tunables of the fabric bench's three phases."""

    #: Path-install phase (sharded cluster on a 2x4 spine-leaf).
    spines: int = 2
    leaves: int = 4
    clients: int = 6
    flows: int = 300
    shards: int = 2
    #: Throughput phase (serialized decision loop, like the cluster bench).
    throughput_flows: int = 500
    policy_eval_delay: float = 500e-6

    def cluster_config(self) -> ControllerConfig:
        """Per-shard config for the path-install phase."""
        return ControllerConfig(pending_deadline=60.0)

    def serial_config(self) -> ControllerConfig:
        """Per-controller config for the throughput comparison."""
        return ControllerConfig(
            serialize_decisions=True,
            policy_eval_delay=self.policy_eval_delay,
            pending_deadline=60.0,
        )


@dataclass
class FabricScaleReport:
    """What the fabric bench observed, with the three gates as violations."""

    flows: int
    punts_total: int
    decided: int
    delivered: int
    min_path_hops: int
    owner_installed: bool
    path_installs_tracked: int
    fail_closed: bool
    unwound: bool
    path_unwinds: int
    baseline_tput: float
    fabric_tput: float
    wall_seconds: float = 0.0
    # Computed from the fields above, never passed in.
    violations: list[str] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.violations = self._compute_violations()

    @property
    def slowdown(self) -> float:
        """Return single-switch throughput over fabric throughput."""
        return self.baseline_tput / self.fabric_tput if self.fabric_tput else float("inf")

    def _compute_violations(self) -> list[str]:
        violations = []
        if self.punts_total != self.flows:
            violations.append(
                f"{self.punts_total} punts for {self.flows} flows "
                "(path install must leave exactly one punt per flow)"
            )
        if self.decided != self.flows:
            violations.append(f"only {self.decided}/{self.flows} flows decided")
        if self.delivered != self.flows:
            violations.append(
                f"only {self.delivered}/{self.flows} first packets crossed the fabric"
            )
        if self.min_path_hops < 3:
            violations.append(
                f"a flow was installed on only {self.min_path_hops} hops "
                "(leaf-spine-leaf needs 3)"
            )
        if not self.owner_installed:
            violations.append("a flow's path was installed by a non-owning shard")
        if not self.fail_closed:
            violations.append("a packet crossed the fabric after its mid-path hop died")
        if not self.unwound:
            violations.append(
                "surviving hops kept entries for a flow whose path entry was gone"
            )
        if self.slowdown > FABRIC_SLOWDOWN_CEILING:
            violations.append(
                f"fabric decided-flows/vsec {self.slowdown:.2f}x below single-switch "
                f"(ceiling {FABRIC_SLOWDOWN_CEILING:g}x)"
            )
        return violations

    @property
    def gates_ok(self) -> bool:
        """True when every acceptance gate held."""
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        """Return a JSON-serialisable summary for the benchmark suite."""
        return {
            "flows": self.flows,
            "punts_total": self.punts_total,
            "decided": self.decided,
            "delivered": self.delivered,
            "min_path_hops": self.min_path_hops,
            "owner_installed": self.owner_installed,
            "path_installs_tracked": self.path_installs_tracked,
            "fail_closed": self.fail_closed,
            "unwound": self.unwound,
            "path_unwinds": self.path_unwinds,
            "baseline_decided_per_vsec": round(self.baseline_tput, 1),
            "fabric_decided_per_vsec": round(self.fabric_tput, 1),
            "slowdown_vs_single_switch": round(self.slowdown, 2),
            "gates_ok": self.gates_ok,
            "violations": list(self.violations),
            "wall_seconds": round(self.wall_seconds, 3),
        }


class FabricScaleBench:
    """Path-wide enforcement on a spine-leaf fabric: install, fail, scale."""

    def __init__(self, config: Optional[FabricScaleConfig] = None) -> None:
        self.config = config if config is not None else FabricScaleConfig()

    def run(self) -> FabricScaleReport:
        """Run all three phases and return the gated report."""
        wall_start = time.perf_counter()
        install = self._run_path_install()
        failure = self._run_fail_closed()
        baseline_tput = self._run_throughput(fabric=False)
        fabric_tput = self._run_throughput(fabric=True)
        return FabricScaleReport(
            **install,
            **failure,
            baseline_tput=baseline_tput,
            fabric_tput=fabric_tput,
            wall_seconds=time.perf_counter() - wall_start,
        )

    # ------------------------------------------------------------------
    # Phase 1: one punt per flow, full-path install by the owning shard
    # ------------------------------------------------------------------

    def _run_path_install(self) -> dict[str, object]:
        cfg = self.config
        net = IdentPPClusterNetwork(
            "fabric-path",
            shards=cfg.shards,
            policy_default_action="block",
            controller_config=cfg.cluster_config(),
        )
        fabric = net.add_spine_leaf_fabric(spines=cfg.spines, leaves=cfg.leaves)
        _spread_hosts(net, fabric, cfg.clients)
        net.set_policy({"00-fabric.control": FABRIC_POLICY})
        for index in range(cfg.flows):
            client = net.host(f"client{index % cfg.clients}")
            client.open_flow("http", "alice", "192.168.1.1", 80)
        net.run()

        punts_total = sum(int(s.punts.value) for s in net.switches.values())
        records = [r for r in net.cluster.audit_records() if not r.cached]
        owner_installed = all(
            record.cookie.startswith(net.cluster.shard_map.owner(record.flow) + ":")
            for record in records
        )
        delivered = len(net.host("server").delivered)
        # Hop count per decision, read back from the switch tables: every
        # hop of leaf -> spine -> leaf must hold the decision's cookie.
        min_hops = cfg.leaves + cfg.spines  # upper bound; min() below
        for record in records[: min(50, len(records))]:
            hops = sum(
                1
                for switch in net.switches.values()
                if switch.flow_table.find(lambda e, c=record.cookie: e.cookie == c)
            )
            min_hops = min(min_hops, hops)
        return {
            "flows": cfg.flows,
            "punts_total": punts_total,
            "decided": len(records),
            "delivered": delivered,
            "min_path_hops": min_hops,
            "owner_installed": owner_installed,
            "path_installs_tracked": sum(
                c.path_install_count() for c in net.cluster.replicas.values()
            ),
        }

    # ------------------------------------------------------------------
    # Phase 2: mid-path switch failure fails closed, then unwinds
    # ------------------------------------------------------------------

    def _run_fail_closed(self) -> dict[str, object]:
        cfg = self.config
        net = IdentPPNetwork(
            "fabric-fail",
            policy_default_action="block",
            controller_config=ControllerConfig(pending_deadline=60.0),
        )
        fabric = net.add_spine_leaf_fabric(spines=2, leaves=2)
        _spread_hosts(net, fabric, 1)
        net.set_policy({"00-fabric.control": FABRIC_POLICY})
        client = net.host("client0")
        server = net.host("server")
        packet, socket, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        approved = len(server.delivered) == 1

        # Fail the spine this flow's path actually crossed.
        path = net.topology.shortest_path(client, server)
        mid = next(
            node for node in path
            if isinstance(node, OpenFlowSwitch) and node in fabric.spines
        )
        mid.fail()
        client.send_on_socket(socket)
        net.run()
        fail_closed = approved and len(server.delivered) == 1

        # Idle-expire the ingress entry; its FlowRemoved must unwind the
        # egress leaf (the dead spine ignores the delete, and forwards
        # nothing regardless).
        controller = net.controller
        sim = net.topology.sim
        sim.schedule_at(
            sim.now + controller.config.idle_timeout + 1.0, lambda: None
        )
        net.run()
        fabric.leaves[0].sweep_expired(sim.now)
        net.run()
        live_entries = sum(
            len(switch.flow_table)
            for switch in net.switches.values()
            if not switch.failed
        )
        unwound = live_entries == 0 and controller.path_unwinds >= 1
        return {
            "fail_closed": fail_closed,
            "unwound": unwound,
            "path_unwinds": controller.path_unwinds,
        }

    # ------------------------------------------------------------------
    # Phase 3: decided-flows/vsec, 4-leaf fabric vs single switch
    # ------------------------------------------------------------------

    def _run_throughput(self, *, fabric: bool) -> float:
        cfg = self.config
        net = IdentPPNetwork(
            f"fabric-tput-{'fabric' if fabric else 'single'}",
            policy_default_action="block",
            controller_config=cfg.serial_config(),
        )
        if fabric:
            built = net.add_spine_leaf_fabric(spines=cfg.spines, leaves=cfg.leaves)
            _spread_hosts(net, built, cfg.clients)
        else:
            switch = net.add_switch("sw0")
            _place_hosts(net, [switch], switch, cfg.clients)
        net.set_policy({"00-fabric.control": FABRIC_POLICY})
        for index in range(cfg.throughput_flows):
            client = net.host(f"client{index % cfg.clients}")
            client.open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        records = [r for r in net.controller.audit.records() if not r.cached]
        if not records:
            return 0.0
        makespan = max(record.time for record in records)
        return len(records) / makespan if makespan else 0.0


def _print_report(payload: dict[str, object]) -> None:
    width = max(len(key) for key in payload)
    for key, value in payload.items():
        print(f"  {key:<{width}}  {value}")


def main() -> int:
    """``make soak_fabric`` entry point: all three phases, gated."""
    print("running fabric scale bench (path install / fail closed / throughput) ...")
    report = FabricScaleBench().run()
    _print_report(report.as_dict())
    if report.gates_ok:
        print(
            "fabric soak ok: one punt per flow, mid-path failure fails closed, "
            f"throughput within {FABRIC_SLOWDOWN_CEILING:g}x of single-switch"
        )
        return 0
    for violation in report.violations:
        print(f"FAIL: {violation}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
