"""Reusable network builders.

Three topology shapes cover every experiment:

* a **linear** client–switch(es)–server chain (Figure 1 / flow-setup
  latency),
* the canonical **enterprise** network: an access switch for the client
  LAN (192.168.0.0/24), a server switch (192.168.1.0/24), a research
  subnet (192.168.2.0/24), a production subnet (192.168.3.0/24) and an
  edge switch toward the Internet (203.0.113.0/24),
* the **two-branch** network of the collaboration experiment: two
  enterprise sites joined by a single bottleneck link, each with its own
  controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.controller import ControllerConfig, IdentPPController
from repro.core.network import HostSpec, IdentPPNetwork
from repro.netsim.links import DEFAULT_LATENCY


#: Address plan used by the enterprise builders.
LAN_SUBNET = "192.168.0.0/24"
SERVER_SUBNET = "192.168.1.0/24"
RESEARCH_SUBNET = "192.168.2.0/24"
PRODUCTION_SUBNET = "192.168.3.0/24"
INTERNET_SUBNET = "203.0.113.0/24"
BRANCH_A_SUBNET = "10.1.0.0/16"
BRANCH_B_SUBNET = "10.2.0.0/16"


@dataclass
class EnterpriseNetwork:
    """The canonical enterprise network plus handles to its named parts."""

    net: IdentPPNetwork
    clients: list[str] = field(default_factory=list)
    servers: list[str] = field(default_factory=list)
    research_hosts: list[str] = field(default_factory=list)
    production_hosts: list[str] = field(default_factory=list)
    internet_hosts: list[str] = field(default_factory=list)

    @property
    def controller(self) -> IdentPPController:
        """Return the primary controller."""
        return self.net.controller


def build_linear_network(
    switch_count: int = 1,
    *,
    link_latency: float = DEFAULT_LATENCY,
    controller_config: Optional[ControllerConfig] = None,
    client_daemon: bool = True,
    server_daemon: bool = True,
) -> IdentPPNetwork:
    """Build ``client — sw1 — ... — swN — server`` (the Figure 1 shape)."""
    net = IdentPPNetwork("linear", link_latency=link_latency, controller_config=controller_config)
    switches = [net.add_switch(f"sw{i + 1}") for i in range(max(1, switch_count))]
    for left, right in zip(switches, switches[1:]):
        net.connect(left, right)
    net.add_host(
        HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users", "staff")},
                 run_daemon=client_daemon),
        switch=switches[0],
    )
    server = net.add_host(
        HostSpec(name="server", ip="192.168.1.1", users={"www": ("service",)},
                 run_daemon=server_daemon),
        switch=switches[-1],
    )
    server.run_server("httpd", "root", 80)
    return net


def build_enterprise_network(
    *,
    clients: int = 4,
    research_hosts: int = 2,
    controller_config: Optional[ControllerConfig] = None,
    link_latency: float = DEFAULT_LATENCY,
) -> EnterpriseNetwork:
    """Build the canonical enterprise network used by most scenarios."""
    net = IdentPPNetwork("enterprise", link_latency=link_latency, controller_config=controller_config)
    access = net.add_switch("sw-access")
    core = net.add_switch("sw-core")
    server_sw = net.add_switch("sw-servers")
    research_sw = net.add_switch("sw-research")
    edge = net.add_switch("sw-edge")
    net.connect(access, core)
    net.connect(server_sw, core)
    net.connect(research_sw, core)
    net.connect(edge, core)

    result = EnterpriseNetwork(net=net)

    for index in range(clients):
        name = f"client{index + 1}"
        user = f"user{index + 1}"
        net.add_host(
            HostSpec(name=name, ip=f"192.168.0.{10 + index}",
                     users={user: ("users", "staff"), "alice": ("users", "staff")}),
            switch=access,
        )
        result.clients.append(name)

    server = net.add_host(
        HostSpec(name="file-server", ip="192.168.1.1",
                 users={"smtp": ("service",)},
                 host_facts={"os-patch": "MS08-067 MS08-068", "os-name": "windows-2008"}),
        switch=server_sw,
    )
    server.run_server("Server", "system", 445)
    server.run_server("httpd", "root", 80)
    server.run_server("sshd", "root", 22)
    result.servers.append("file-server")

    mail = net.add_host(
        HostSpec(name="mail-server", ip="192.168.1.25", users={"smtp": ("service",)}),
        switch=server_sw,
    )
    mail.run_server("smtp-server", "root", 25)
    result.servers.append("mail-server")

    for index in range(research_hosts):
        name = f"research{index + 1}"
        net.add_host(
            HostSpec(name=name, ip=f"192.168.2.{10 + index}",
                     users={f"researcher{index + 1}": ("research", "users")}),
            switch=research_sw,
        )
        result.research_hosts.append(name)

    production = net.add_host(
        HostSpec(name="production1", ip="192.168.3.10", users={"ops": ("production",)}),
        switch=research_sw,
    )
    production.run_server("httpd", "root", 80)
    result.production_hosts.append("production1")

    internet = net.add_host(
        HostSpec(name="internet-host", ip="203.0.113.50",
                 users={"mallory": ("internet",)}, run_daemon=False),
        switch=edge,
    )
    result.internet_hosts.append("internet-host")
    del internet
    return result


@dataclass
class BranchNetwork:
    """The two-branch collaboration topology."""

    net: IdentPPNetwork
    controller_a: IdentPPController
    controller_b: IdentPPController
    branch_a_hosts: list[str]
    branch_b_hosts: list[str]
    bottleneck_link_name: str


def build_branch_network(
    *,
    hosts_per_branch: int = 3,
    bottleneck_latency: float = 5e-3,
    bottleneck_bandwidth: float = 10e6,
    controller_config: Optional[ControllerConfig] = None,
) -> BranchNetwork:
    """Build two branches of one enterprise joined by a bottleneck WAN link.

    Branch A keeps the network's primary controller; branch B gets its
    own controller, which is the one that augments ident++ responses in
    the collaboration experiment.
    """
    net = IdentPPNetwork("branches", controller_config=controller_config)
    controller_a = net.controller
    controller_b = net.add_controller("branch-b.controller", config=controller_config)

    switch_a = net.add_switch("sw-branch-a", controller=controller_a)
    switch_b = net.add_switch("sw-branch-b", controller=controller_b)
    bottleneck = net.connect(
        switch_a, switch_b, latency=bottleneck_latency, bandwidth=bottleneck_bandwidth
    )

    branch_a_hosts = []
    for index in range(hosts_per_branch):
        name = f"a-host{index + 1}"
        net.add_host(
            HostSpec(name=name, ip=f"10.1.0.{10 + index}", users={"alice": ("users", "staff")}),
            switch=switch_a,
        )
        branch_a_hosts.append(name)

    branch_b_hosts = []
    for index in range(hosts_per_branch):
        name = f"b-host{index + 1}"
        host = net.add_host(
            HostSpec(name=name, ip=f"10.2.0.{10 + index}", users={"bob": ("users", "staff")}),
            switch=switch_b,
        )
        host.run_server("httpd", "root", 80)
        branch_b_hosts.append(name)

    return BranchNetwork(
        net=net,
        controller_a=controller_a,
        controller_b=controller_b,
        branch_a_hosts=branch_a_hosts,
        branch_b_hosts=branch_b_hosts,
        bottleneck_link_name=bottleneck.name,
    )
