"""Reusable cross-scenario invariant checkers.

Every workload in this package asserts some slice of the paper's
correctness story — flows fail closed, failover loses nothing,
quarantined hosts stay contained, caches converge after invalidation,
state stays bounded.  Before this module each workload (and each test
suite) carried its own ad-hoc copy of those assertions, so the checks
could drift apart.  This module is the single home: the experiment
harness (:mod:`repro.workloads.experiment`) evaluates these checkers on
every matrix cell, and the pytest suites import the very same functions,
so scenario knowledge cannot fork.

Checkers are pure data-in / :class:`InvariantResult`-out.  They take
plain values (flow specs, audit records, ``(time, src, dst)`` delivery
triples, size dictionaries) rather than live network objects, so tests
can feed synthetic passing *and* deliberately violated inputs.  The
``network_*`` helpers at the bottom scrape those plain values out of a
live :class:`~repro.core.network.IdentPPNetwork` for callers that have
one.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Iterable, Mapping, Optional

#: Canonical invariant names, as reported in matrix cells and benchmarks.
FAIL_CLOSED = "fail_closed"
ZERO_LOSS = "zero_loss"
CONTAINMENT = "containment"
CACHE_COHERENCE = "cache_coherence"
BOUNDED_STATE = "bounded_state"

ALL_INVARIANTS = (FAIL_CLOSED, ZERO_LOSS, CONTAINMENT, CACHE_COHERENCE, BOUNDED_STATE)


@dataclass
class InvariantResult:
    """The outcome of one invariant check: pass/fail plus the evidence."""

    name: str
    violations: list[str] = dataclass_field(default_factory=list)
    details: dict[str, object] = dataclass_field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.passed

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly shape, used by the benchmark report."""
        return {
            "name": self.name,
            "passed": self.passed,
            "violations": list(self.violations),
            "details": dict(self.details),
        }


# ----------------------------------------------------------------------
# Record classification (shared by fail-closed and zero-loss)
# ----------------------------------------------------------------------

def fresh_decisions(records) -> dict:
    """Group non-cached, non-error decision records by flow.

    A *fresh* decision is one the controller actually evaluated for this
    punt: replays served from the decision cache (``cached``) and
    fail-closed backstops (``rule_origin == "error"``) do not count.
    Returns ``{flow: [records...]}`` in record order.
    """
    grouped: dict = {}
    for record in records:
        if getattr(record, "cached", False):
            continue
        if getattr(record, "rule_origin", "") == "error":
            continue
        grouped.setdefault(record.flow, []).append(record)
    return grouped


def failed_closed_flows(records) -> set:
    """Return the flows that ever received a fail-closed (error) verdict."""
    return {
        record.flow
        for record in records
        if getattr(record, "rule_origin", "") == "error"
    }


def check_fail_closed(
    flows: Iterable,
    records,
    *,
    pending: int = 0,
    buffered: int = 0,
) -> InvariantResult:
    """No flow is ever left open-ended: every punted flow reaches a verdict.

    Each flow in ``flows`` must appear in the audit log — either as a
    fresh decision or as a fail-closed ``error`` drop — and once the run
    has drained, no flow may still sit in a pending table or a switch
    buffer (that would be a flow whose packets are held forever without
    a verdict, the open-ended state the pending deadline exists to kill).
    """
    result = InvariantResult(FAIL_CLOSED)
    records = list(records)
    decided = set(fresh_decisions(records))
    errored = failed_closed_flows(records)
    flows = list(flows)
    unaccounted = [flow for flow in flows if flow not in decided and flow not in errored]
    for flow in unaccounted:
        result.violations.append(f"flow {flow} reached no verdict (not decided, not failed closed)")
    if pending:
        result.violations.append(f"{pending} flows still pending after drain")
    if buffered:
        result.violations.append(f"{buffered} packets still buffered at switches after drain")
    result.details.update(
        flows=len(flows),
        decided=len(decided),
        failed_closed=len(errored),
        unaccounted=len(unaccounted),
        pending=pending,
        buffered=buffered,
    )
    return result


def check_zero_loss(
    flows: Iterable,
    records,
    *,
    pending: int = 0,
    buffered: int = 0,
) -> InvariantResult:
    """Every punted flow is decided exactly once, even across shard kills.

    Strengthens :func:`check_fail_closed`: besides full accounting and a
    drained control plane, no flow may collect *two* fresh decisions.  A
    flow that fails closed on a dying shard and is then freshly decided
    after re-punt adoption is fine (the error verdict is the backstop,
    not a decision); two fresh verdicts mean the failover both adopted
    and re-evaluated the same punt — duplicated work and, worse, two
    installs racing in the fabric.  Only applicable where each 5-tuple
    is punted once within the decision TTL.
    """
    result = check_fail_closed(flows, records, pending=pending, buffered=buffered)
    result.name = ZERO_LOSS
    for flow, decisions in fresh_decisions(records).items():
        if len(decisions) > 1:
            result.violations.append(
                f"flow {flow} decided {len(decisions)} times (expected exactly once)"
            )
    return result


def check_containment(
    deliveries: Iterable[tuple],
    quarantined_since: Mapping,
    *,
    grace: float = 0.0,
) -> InvariantResult:
    """Quarantined hosts pass no datapath traffic.

    ``deliveries`` is an iterable of ``(time, src_ip, dst_ip)`` triples
    (see :func:`network_deliveries`); ``quarantined_since`` maps a host
    address to the virtual time its quarantine took effect.  Any packet
    a quarantined source lands *after* its quarantine time (plus
    ``grace`` for control-plane propagation) is a containment breach.
    Traffic delivered before quarantine is expected — that is what
    triggered the quarantine.
    """
    result = InvariantResult(CONTAINMENT)
    since = {str(ip): when for ip, when in quarantined_since.items()}
    deliveries = list(deliveries)
    breaches = 0
    for when, src_ip, dst_ip in deliveries:
        cutoff = since.get(str(src_ip))
        if cutoff is not None and when > cutoff + grace:
            breaches += 1
            result.violations.append(
                f"quarantined host {src_ip} delivered to {dst_ip} at t={when:.3f}"
                f" (quarantined since t={cutoff:.3f})"
            )
    result.details.update(
        quarantined=len(since),
        deliveries=len(deliveries),
        breaches=breaches,
        grace=grace,
    )
    return result


@dataclass(frozen=True)
class CoherenceProbe:
    """One post-invalidation observation: what a fresh decision should say.

    ``expected`` is the action the *current* identity state demands;
    ``observed`` is the action the control plane actually returned.
    ``requeried`` optionally records whether the probe forced a fresh
    daemon query (``None`` when the scenario does not measure it).
    """

    label: str
    expected: str
    observed: Optional[str]
    requeried: Optional[bool] = None


def check_cache_coherence(probes: Iterable[CoherenceProbe]) -> InvariantResult:
    """Post-invalidation decisions reflect the new identity.

    After an identity change (socket re-tenant, compromise marking,
    publish of new runtime keys) the query cache must not keep serving
    the stale answer: every probe's observed action must equal the
    action the new identity demands, and — where the scenario measures
    it — the probe must actually have re-queried the daemon.
    """
    result = InvariantResult(CACHE_COHERENCE)
    probes = list(probes)
    stale = 0
    for probe in probes:
        if probe.observed != probe.expected:
            stale += 1
            result.violations.append(
                f"probe {probe.label!r}: expected {probe.expected!r} after invalidation,"
                f" observed {probe.observed!r} (stale cached identity)"
            )
        if probe.requeried is False:
            result.violations.append(
                f"probe {probe.label!r}: decision served without re-querying the daemon"
            )
    result.details.update(probes=len(probes), stale=stale)
    return result


def check_bounded_state(
    observed: Mapping[str, float],
    caps: Mapping[str, float],
) -> InvariantResult:
    """Flow/pending/telemetry structures stay within configured caps.

    Every structure named in ``caps`` must have an observation in
    ``observed`` at or below its cap.  A cap key with no observation is
    itself a violation — an unmeasured structure is an unbounded one.
    Keys observed but not capped are reported in details, never
    failures, so callers can log more than they gate on.
    """
    result = InvariantResult(BOUNDED_STATE)
    for name, cap in sorted(caps.items()):
        if name not in observed:
            result.violations.append(f"structure {name!r} has a cap ({cap:g}) but was never measured")
            continue
        value = observed[name]
        if value > cap:
            result.violations.append(
                f"structure {name!r} reached {value:g}, above its cap of {cap:g}"
            )
    result.details.update(
        observed={name: float(value) for name, value in sorted(observed.items())},
        caps={name: float(value) for name, value in sorted(caps.items())},
    )
    return result


# ----------------------------------------------------------------------
# Live-network scrapers (plain values out of an IdentPPNetwork)
# ----------------------------------------------------------------------

def network_flow_state(net) -> dict[str, int]:
    """Measure every flow-state structure of a live network.

    Returns the sizes the bounded-state checker (and the drain clauses
    of fail-closed / zero-loss) care about: pending punts, buffered
    packets, decision-cache entries, ``keep state`` entries, installed
    flow-table entries and standing push subscriptions, summed across
    the control plane.
    """
    controllers = list(net.controllers.values())
    return {
        "pending": sum(len(c._pending) for c in controllers),
        "buffered": sum(s.buffered_count() for s in net.switches.values()),
        "decision_cache": sum(len(c.cache) for c in controllers),
        "state_table": sum(len(c.cache.state_table) for c in controllers),
        "flow_table": sum(len(s.flow_table) for s in net.switches.values()),
        "subscriptions": sum(
            c.query_engine.subscription_count() for c in controllers
        ),
    }


def network_deliveries(net) -> list[tuple[float, str, str]]:
    """Return every datapath delivery as ``(time, src_ip, dst_ip)``.

    Walks each end-host's delivered packets (with their parallel
    timestamp list) — the input shape :func:`check_containment` takes.
    """
    deliveries: list[tuple[float, str, str]] = []
    for host in net.hosts.values():
        for packet, when in zip(host.delivered, host.delivered_times):
            deliveries.append((when, str(packet.ip_src), str(packet.ip_dst)))
    deliveries.sort()
    return deliveries


def network_audit_records(net) -> list:
    """Return the audit log across the whole control plane, in time order."""
    if net.cluster is not None:
        return list(net.cluster.audit_records())
    records = []
    for controller in net.controllers.values():
        records.extend(controller.audit.records())
    records.sort(key=lambda record: record.time)
    return records
