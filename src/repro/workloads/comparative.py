"""Comparative scenarios: collaboration (E7), incremental deployment (E8)
and the §5 security matrix (E9).

Unlike the figure scenarios, these compare ident++ against something —
either against itself without a feature (collaboration off, daemons not
deployed) or against the baseline architectures of §5/§6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.baselines.distributed_firewall import DistributedFirewall
from repro.baselines.ethane import EthanePolicy
from repro.baselines.vanilla_firewall import FirewallRule, VanillaFirewall
from repro.baselines.vlan import VLANSegmentation
from repro.core.network import HostSpec, IdentPPNetwork
from repro.core.policy_engine import PolicyEngine
from repro.identpp.client import QueryClient
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.netsim.addresses import IPv4Network
from repro.security.analysis import AttackProbe, SecurityMatrix, impact_of_compromise
from repro.security.threat_model import (
    COMPONENT_CONTROLLER,
    COMPONENT_END_HOST,
    COMPONENT_SWITCH,
    COMPONENT_USER_APPLICATION,
    CompromiseScenario,
)
from repro.workloads.enterprise import build_branch_network


# ---------------------------------------------------------------------------
# E7 — network collaboration between branches
# ---------------------------------------------------------------------------

BRANCH_A_POLICY = {
    "00-branch-a.control": """\
table <branch-a> { 10.1.0.0/16 }
block all
pass from <branch-a> to any keep state
""",
    "90-collaboration.control": """\
# Drop at the source what the remote branch marked as unwanted.
block all with eq(@dst[remote-accept], no)
""",
}

BRANCH_B_POLICY = {
    "00-branch-b.control": """\
table <branch-b> { 10.2.0.0/16 }
block all
pass from any to <branch-b> port 80 keep state
""",
}


@dataclass
class CollaborationResult:
    """What the collaboration experiment measures."""

    collaborate: bool
    flows_sent: int
    unwanted_flows: int
    bottleneck_bytes: int
    bottleneck_packets: int
    wanted_delivered: int
    unwanted_delivered: int
    remote_packet_ins: int


class CollaborationScenario:
    """Two branches; branch B tells branch A what it will not accept (§4)."""

    UNWANTED_PORT = 9999

    def __init__(
        self,
        *,
        collaborate: bool = True,
        hosts_per_branch: int = 3,
        flows: int = 24,
        unwanted_fraction: float = 0.5,
        packets_per_flow: int = 4,
        payload_size: int = 1200,
    ) -> None:
        self.collaborate = collaborate
        self.flows = flows
        self.unwanted_fraction = unwanted_fraction
        self.packets_per_flow = packets_per_flow
        self.payload_size = payload_size
        self.branches = build_branch_network(hosts_per_branch=hosts_per_branch)
        net = self.branches.net
        net.set_policy(BRANCH_A_POLICY, controller=self.branches.controller_a)
        net.set_policy(BRANCH_B_POLICY, controller=self.branches.controller_b)
        if collaborate:
            branch_b_prefix = IPv4Network("10.2.0.0/16")

            def branch_b_rejects(query) -> bool:
                # Mark only the flows branch B's own policy would drop.
                return query.flow.dst_ip in branch_b_prefix and query.flow.dst_port != 80

            self.branches.controller_b.interception.augment_with(
                {"remote-accept": "no"},
                source="branch-b:collaboration",
                applies_to=branch_b_rejects,
            )
            self.branches.controller_a.add_peer_interceptor(self.branches.controller_b)

    def run(self) -> CollaborationResult:
        """Send the flow mix and measure what crossed the bottleneck."""
        net = self.branches.net
        bottleneck = next(
            link for link in net.topology.links() if link.name == self.branches.bottleneck_link_name
        )
        unwanted_target = int(round(self.flows * self.unwanted_fraction))
        unwanted_sent = 0
        for index in range(self.flows):
            src = self.branches.branch_a_hosts[index % len(self.branches.branch_a_hosts)]
            dst = self.branches.branch_b_hosts[index % len(self.branches.branch_b_hosts)]
            dst_ip = str(net.host(dst).ip)
            unwanted = unwanted_sent < unwanted_target and index % 2 == 0
            if unwanted:
                unwanted_sent += 1
            port = self.UNWANTED_PORT if unwanted else 80
            host = net.host(src)
            packet, socket, _ = host.open_flow(
                "http", "alice", dst_ip, port, payload_size=self.payload_size
            )
            del packet
            for _ in range(self.packets_per_flow - 1):
                host.send_on_socket(socket, payload_size=self.payload_size)
            net.topology.run(until=net.topology.sim.now + 0.5)
        net.topology.run(until=net.topology.sim.now + 1.0)

        wanted_delivered = 0
        unwanted_delivered = 0
        for name in self.branches.branch_b_hosts:
            for delivered in net.host(name).delivered:
                if delivered.tp_dst == 80:
                    wanted_delivered += 1
                else:
                    unwanted_delivered += 1
        return CollaborationResult(
            collaborate=self.collaborate,
            flows_sent=self.flows,
            unwanted_flows=unwanted_sent,
            bottleneck_bytes=int(bottleneck.tx_bytes.value),
            bottleneck_packets=int(bottleneck.tx_packets.value),
            wanted_delivered=wanted_delivered,
            unwanted_delivered=unwanted_delivered,
            remote_packet_ins=int(self.branches.controller_b.packet_ins.value),
        )


# ---------------------------------------------------------------------------
# E8 — incremental benefit
# ---------------------------------------------------------------------------

@dataclass
class NATIdentificationResult:
    """Server-side user identification for flows sharing one source address."""

    flows: int
    identified: int
    distinct_users_reported: int
    distinct_users_actual: int

    @property
    def identified_fraction(self) -> float:
        """Return the fraction of flows whose originating user was identified."""
        return self.identified / self.flows if self.flows else 0.0


class NATIdentificationScenario:
    """Only end-hosts deploy ident++: a server distinguishes users behind one address."""

    SHARED_HOST_IP = "192.168.0.40"
    SERVER_IP = "192.168.1.40"

    def __init__(self, *, flows_per_user: int = 5, with_daemon: bool = True) -> None:
        self.flows_per_user = flows_per_user
        self.with_daemon = with_daemon
        self.net = IdentPPNetwork("nat-identification")
        switch = self.net.add_switch("sw")
        self.shared = self.net.add_host(
            HostSpec(
                name="shared-host",
                ip=self.SHARED_HOST_IP,
                users={"alice": ("users",), "bob": ("users",)},
                run_daemon=with_daemon,
            ),
            switch=switch,
        )
        self.server = self.net.add_host(
            HostSpec(name="server", ip=self.SERVER_IP, users={}),
            switch=switch,
        )
        self.server.run_server("httpd", "root", 80)
        # The network itself is permissive: this sub-experiment is about
        # what the *server* can learn, not about enforcement.
        self.net.set_policy({"00-open.control": "pass all\n"})

    def run(self) -> NATIdentificationResult:
        """Open flows as alice and bob, then identify each flow from the server side."""
        users = ["alice", "bob"]
        flows: list[FlowSpec] = []
        expected_users: list[str] = []
        for user in users:
            for _ in range(self.flows_per_user):
                packet, _, _ = self.shared.open_flow("http", user, self.SERVER_IP, 80)
                flows.append(FlowSpec.from_packet(packet))
                expected_users.append(user)
        self.net.topology.run()

        client = QueryClient(self.net.topology)
        identified = 0
        reported_users: set[str] = set()
        for flow, expected in zip(flows, expected_users):
            outcome = client.query(flow, "src", from_node=self.server)
            reported = outcome.document.latest("userID")
            if reported is not None:
                reported_users.add(reported)
                if reported == expected:
                    identified += 1
        return NATIdentificationResult(
            flows=len(flows),
            identified=identified,
            distinct_users_reported=len(reported_users),
            distinct_users_actual=len(set(expected_users)),
        )


@dataclass
class PartialDeploymentResult:
    """One point of the deployment sweep."""

    deployment_fraction: float
    controller_answers_for_legacy: bool
    flows: int
    allowed: int

    @property
    def allowed_fraction(self) -> float:
        """Return the fraction of legitimate flows that were allowed."""
        return self.allowed / self.flows if self.flows else 0.0


PARTIAL_DEPLOYMENT_POLICY = {
    "00-staff.control": """\
block all
pass from any to any with member(@src[groupID], staff) keep state
""",
}


class PartialDeploymentScenario:
    """Only some hosts run daemons; optionally the controller answers for the rest (§4)."""

    SERVER_IP = "192.168.1.50"

    def __init__(
        self,
        *,
        clients: int = 8,
        deployment_fraction: float = 0.5,
        controller_answers_for_legacy: bool = False,
    ) -> None:
        self.deployment_fraction = deployment_fraction
        self.controller_answers_for_legacy = controller_answers_for_legacy
        self.net = IdentPPNetwork("partial-deployment")
        switch = self.net.add_switch("sw")
        self.client_names: list[str] = []
        daemon_count = int(round(clients * deployment_fraction))
        for index in range(clients):
            name = f"client{index + 1}"
            runs_daemon = index < daemon_count
            ip = f"192.168.0.{60 + index}"
            self.net.add_host(
                HostSpec(name=name, ip=ip, users={"alice": ("users", "staff")},
                         run_daemon=runs_daemon),
                switch=switch,
            )
            self.client_names.append(name)
            if not runs_daemon and controller_answers_for_legacy:
                # The administrator vouches for legacy hosts: the controller
                # answers queries about them with a registered identity.
                self.net.controller.interception.answer_for_host(
                    ip, {"userID": "registered-host", "groupID": "staff"},
                )
        server = self.net.add_host(
            HostSpec(name="server", ip=self.SERVER_IP, users={}), switch=switch
        )
        server.run_server("httpd", "root", 80)
        self.net.set_policy(PARTIAL_DEPLOYMENT_POLICY)
        if controller_answers_for_legacy:
            # The controller consults its own interception policy for its own
            # queries — the degenerate (single-domain) case of §3.4.
            self.net.controller.add_peer_interceptor(self.net.controller.interception)

    def run(self) -> PartialDeploymentResult:
        """Send one legitimate flow per client and count how many get through."""
        allowed = 0
        for name in self.client_names:
            result = self.net.send_flow(name, "http", "alice", self.SERVER_IP, 80)
            if result.delivered:
                allowed += 1
        return PartialDeploymentResult(
            deployment_fraction=self.deployment_fraction,
            controller_answers_for_legacy=self.controller_answers_for_legacy,
            flows=len(self.client_names),
            allowed=allowed,
        )


def deployment_sweep(
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    *,
    clients: int = 8,
) -> list[PartialDeploymentResult]:
    """Run the E8(b) sweep with and without controller answering."""
    results = []
    for answers in (False, True):
        for fraction in fractions:
            scenario = PartialDeploymentScenario(
                clients=clients,
                deployment_fraction=fraction,
                controller_answers_for_legacy=answers,
            )
            results.append(scenario.run())
    return results


# ---------------------------------------------------------------------------
# E9 — the §5 security matrix
# ---------------------------------------------------------------------------

#: The architectures compared in the matrix.
ARCH_IDENTPP = "identpp"
ARCH_VANILLA = "vanilla-firewall"
ARCH_DISTRIBUTED = "distributed-firewall"
ARCH_ETHANE = "ethane"
ARCH_VLAN = "vlan"
ALL_ARCHITECTURES = (ARCH_IDENTPP, ARCH_VANILLA, ARCH_DISTRIBUTED, ARCH_ETHANE, ARCH_VLAN)


@dataclass
class ModelHost:
    """A host in the policy-level enterprise model used by the matrix."""

    name: str
    ip: str
    user: str
    groups: tuple[str, ...]
    apps: tuple[str, ...]
    services: dict[int, tuple[str, str]] = field(default_factory=dict)  # port -> (app, user)
    facts: dict[str, str] = field(default_factory=dict)


IDENTPP_MATRIX_POLICY = {
    "00-tables.control": """\
table <lan> { 192.168.0.0/24 }
table <servers> { 192.168.1.0/24 }
table <research-machines> { 192.168.2.0/24 }
approved = "{ http ssh }"
block all
""",
    "10-staff.control": """\
# staff may use approved applications toward the servers and the Internet
pass from <lan> to <servers> \\
    with member(@src[groupID], staff) with member(@src[name], $approved) keep state
pass from <lan> to !<lan> \\
    with member(@src[groupID], staff) with member(@src[name], $approved) keep state
""",
    "20-windows-service.control": """\
# only system users reach the Server service, and only on patched hosts
block from any to <servers> port 445
pass from <lan> to <servers> port 445 \\
    with eq(@src[userID], system) with includes(@dst[os-patch], MS08-067) keep state
""",
    "30-research.control": """\
# research data is only for the research group
block from any to <research-machines> port 7777
pass from <lan> to <research-machines> port 7777 \\
    with member(@src[groupID], research) keep state
""",
}


class SecurityComparisonScenario:
    """The §5 compromise-impact comparison, run at the policy level.

    Probes originate from the attacker's foothold host ``c1``.  "Before"
    deciders model the attacker using its own (truthful) identity from
    that host; "after" deciders model the capabilities each §5 compromise
    grants under each architecture.
    """

    C1_IP = "192.168.0.10"
    C2_IP = "192.168.0.11"
    ADMIN_IP = "192.168.0.5"
    RESEARCH_CLIENT_IP = "192.168.0.12"
    SERVER_IP = "192.168.1.1"
    MAIL_IP = "192.168.1.25"
    RESEARCH_IP = "192.168.2.10"
    EXTERNAL_IP = "203.0.113.50"

    def __init__(self) -> None:
        self.hosts = self._build_hosts()
        self.engine = PolicyEngine(name="matrix-identpp")
        self.engine.add_control_files(IDENTPP_MATRIX_POLICY)
        self.vanilla = self._build_vanilla()
        self.distributed = self._build_distributed()
        self.ethane = self._build_ethane()
        self.vlan = self._build_vlan()
        self.probes = self._build_probes()

    # -- enterprise model -------------------------------------------------

    def _build_hosts(self) -> dict[str, ModelHost]:
        hosts = [
            ModelHost("c1", self.C1_IP, "alice", ("users", "staff"), ("http", "ssh", "skype")),
            ModelHost("c2", self.C2_IP, "bob", ("users", "staff"), ("http", "ssh"),
                      services={22: ("sshd", "root")}),
            ModelHost("admin", self.ADMIN_IP, "system", ("system",), ("Server", "http")),
            ModelHost("research-client", self.RESEARCH_CLIENT_IP, "carol",
                      ("users", "research"), ("http", "research-app")),
            ModelHost("server", self.SERVER_IP, "system", ("system",), ("Server", "httpd", "sshd"),
                      services={445: ("Server", "system"), 80: ("httpd", "root"), 22: ("sshd", "root")},
                      facts={"os-patch": "MS08-067 MS08-068"}),
            ModelHost("mail", self.MAIL_IP, "smtp", ("service",), ("smtp-server",),
                      services={25: ("smtp-server", "smtp")}),
            ModelHost("research-server", self.RESEARCH_IP, "carol", ("research",),
                      ("research-app",), services={7777: ("research-app", "carol")}),
            ModelHost("external", self.EXTERNAL_IP, "mallory", ("internet",), ("httpd",),
                      services={443: ("httpd", "root"), 80: ("httpd", "root")}),
        ]
        return {host.name: host for host in hosts}

    def host_by_ip(self, ip: str) -> Optional[ModelHost]:
        """Return the model host owning ``ip``."""
        for host in self.hosts.values():
            if host.ip == str(ip):
                return host
        return None

    # -- baseline policies -------------------------------------------------

    def _base_port_rules(self) -> list[FirewallRule]:
        return [
            FirewallRule("pass", src="192.168.0.0/24", dst="192.168.1.0/24", proto="tcp",
                         dst_port=80, keep_state=True),
            FirewallRule("pass", src="192.168.0.0/24", dst="192.168.1.0/24", proto="tcp",
                         dst_port=22, keep_state=True),
            FirewallRule("pass", src="192.168.0.0/24", dst="192.168.1.0/24", proto="tcp",
                         dst_port=25, keep_state=True),
            FirewallRule("pass", src=f"{self.ADMIN_IP}/32", dst="192.168.1.0/24", proto="tcp",
                         dst_port=445, keep_state=True),
            FirewallRule("pass", src=f"{self.RESEARCH_CLIENT_IP}/32", dst="192.168.2.0/24",
                         proto="tcp", dst_port=7777, keep_state=True),
            FirewallRule("pass", src="192.168.0.0/24", dst="203.0.113.0/24", proto="tcp",
                         keep_state=True),
            FirewallRule("block"),
        ]

    def _build_vanilla(self) -> VanillaFirewall:
        return VanillaFirewall(self._base_port_rules(), name="vanilla")

    def _build_distributed(self) -> DistributedFirewall:
        return DistributedFirewall(self._base_port_rules(), name="distributed")

    def _build_ethane(self) -> EthanePolicy:
        policy = EthanePolicy(name="ethane")
        for host in self.hosts.values():
            policy.register_host(host.ip, host.user, groups=host.groups)
        policy.allow(src_group="staff", dst="192.168.1.0/24", proto="tcp", dst_port=80)
        policy.allow(src_group="staff", dst="192.168.1.0/24", proto="tcp", dst_port=22)
        policy.allow(src_group="staff", dst="192.168.1.0/24", proto="tcp", dst_port=25)
        policy.allow(src_user="system", dst="192.168.1.0/24", proto="tcp", dst_port=445)
        policy.allow(src_group="research", dst="192.168.2.0/24", proto="tcp", dst_port=7777)
        policy.allow(src_group="staff", dst="203.0.113.0/24", proto="tcp")
        return policy

    def _build_vlan(self) -> VLANSegmentation:
        vlan = VLANSegmentation(name="vlan")
        vlan.assign("lan", ["192.168.0.0/24"])
        vlan.assign("servers", ["192.168.1.0/24"])
        vlan.assign("research", ["192.168.2.0/24"])
        vlan.assign("internet", ["203.0.113.0/24"])
        vlan.allow_between("lan", "servers")
        vlan.allow_between("lan", "internet")
        return vlan

    # -- probes -------------------------------------------------------------

    def _build_probes(self) -> list[AttackProbe]:
        def probe(description, dst_ip, dst_port, claims, spoof=True):
            return AttackProbe.build(
                FlowSpec.tcp(self.C1_IP, dst_ip, 40001, dst_port),
                claims,
                description=description,
                requires_spoofing=spoof,
            )

        return [
            probe("reach the Windows Server service as 'system'", self.SERVER_IP, 445,
                  {"userID": "system", "groupID": "system", "name": "Server"}),
            probe("reach the web server claiming an approved app", self.SERVER_IP, 80,
                  {"userID": "alice", "groupID": "users staff", "name": "http"}, spoof=False),
            probe("reach the mail server claiming an approved app", self.MAIL_IP, 25,
                  {"userID": "alice", "groupID": "users staff", "name": "http"}),
            probe("reach the research data port claiming the research group", self.RESEARCH_IP, 7777,
                  {"userID": "alice", "groupID": "research users", "name": "research-app"}),
            probe("lateral movement to another workstation's sshd", self.C2_IP, 22,
                  {"userID": "alice", "groupID": "users staff", "name": "ssh"}),
            probe("exfiltrate to an Internet host claiming the browser", self.EXTERNAL_IP, 443,
                  {"userID": "alice", "groupID": "users staff", "name": "http"}),
        ]

    # -- ident++ deciders ---------------------------------------------------

    def _doc_from_claims(self, claims: dict[str, str]) -> ResponseDocument:
        document = ResponseDocument()
        document.add_section(dict(claims), source="attacker")
        return document

    def _honest_src_doc(self, host: ModelHost, app_name: str) -> ResponseDocument:
        document = ResponseDocument()
        document.add_section(
            {
                "userID": host.user,
                "groupID": " ".join(host.groups),
                "name": app_name,
                "app-name": app_name,
            },
            source=f"{host.name}:daemon",
        )
        return document

    def _honest_dst_doc(self, flow: FlowSpec) -> ResponseDocument:
        host = self.host_by_ip(str(flow.dst_ip))
        document = ResponseDocument()
        if host is None:
            return document
        service = host.services.get(flow.dst_port)
        pairs = {"groupID": " ".join(host.groups)}
        if service is not None:
            app, user = service
            pairs.update({"name": app, "app-name": app, "userID": user})
        pairs.update(host.facts)
        document.add_section(pairs, source=f"{host.name}:daemon")
        return document

    def _identpp_allows(self, flow: FlowSpec, src_doc: ResponseDocument) -> bool:
        return self.engine.decide(flow, src_doc, self._honest_dst_doc(flow)).is_pass

    def identpp_decider_truthful(self, probe: AttackProbe) -> bool:
        """The attacker on c1 uses its own tool under its own account."""
        c1 = self.hosts["c1"]
        return self._identpp_allows(probe.flow, self._honest_src_doc(c1, "evil-tool"))

    def identpp_decider_app_compromise(self, probe: AttackProbe) -> bool:
        """Alice's application is compromised: any of *her* apps can be claimed (§5.4)."""
        c1 = self.hosts["c1"]
        for app in c1.apps:
            if self._identpp_allows(probe.flow, self._honest_src_doc(c1, app)):
                return True
        return False

    def identpp_decider_host_compromise(self, probe: AttackProbe) -> bool:
        """The whole host (and daemon) is compromised: arbitrary claims (§5.3)."""
        return self._identpp_allows(probe.flow, self._doc_from_claims(probe.claims()))

    # -- generic deciders ---------------------------------------------------

    def _baseline_decider(self, policy) -> Callable[[AttackProbe], bool]:
        return lambda probe: policy.decide(probe.flow) == "pass"

    @staticmethod
    def _allow_everything(probe: AttackProbe) -> bool:
        return True

    # -- the matrix ---------------------------------------------------------

    def compromise_scenarios(self) -> list[CompromiseScenario]:
        """Return the four §5 compromises, in increasing difficulty order."""
        return [
            CompromiseScenario(COMPONENT_USER_APPLICATION, "c1:skype(alice)"),
            CompromiseScenario(COMPONENT_END_HOST, "c1", superuser=True),
            CompromiseScenario(COMPONENT_SWITCH, "sw-access"),
            CompromiseScenario(COMPONENT_CONTROLLER, "controller"),
        ]

    def _after_decider(self, architecture: str, scenario: CompromiseScenario) -> Callable[[AttackProbe], bool]:
        before = self._before_decider(architecture)
        if scenario.component == COMPONENT_CONTROLLER:
            # §5.1: every architecture's central policy point, once owned,
            # stops protecting anything.
            return self._allow_everything
        if scenario.component == COMPONENT_SWITCH:
            # §5.2: in-network enforcement evaporates for traffic through the
            # compromised device; distributed firewalls enforce at the hosts
            # and are unaffected.
            if architecture == ARCH_DISTRIBUTED:
                return before
            return self._allow_everything
        if scenario.component == COMPONENT_END_HOST:
            if architecture == ARCH_IDENTPP:
                return self.identpp_decider_host_compromise
            # Architectures that never believed the host gain nothing new
            # from its lies; their (coarser) decisions are unchanged.
            return before
        if scenario.component == COMPONENT_USER_APPLICATION:
            if architecture == ARCH_IDENTPP:
                return self.identpp_decider_app_compromise
            return before
        raise ValueError(f"unknown component: {scenario.component}")

    def _before_decider(self, architecture: str) -> Callable[[AttackProbe], bool]:
        if architecture == ARCH_IDENTPP:
            return self.identpp_decider_truthful
        if architecture == ARCH_VANILLA:
            return self._baseline_decider(self.vanilla)
        if architecture == ARCH_DISTRIBUTED:
            return self._baseline_decider(self.distributed)
        if architecture == ARCH_ETHANE:
            return self._baseline_decider(self.ethane)
        if architecture == ARCH_VLAN:
            return self._baseline_decider(self.vlan)
        raise ValueError(f"unknown architecture: {architecture}")

    def build_matrix(self, architectures: Iterable[str] = ALL_ARCHITECTURES) -> SecurityMatrix:
        """Compute the full matrix."""
        matrix = SecurityMatrix()
        for architecture in architectures:
            before = self._before_decider(architecture)
            for scenario in self.compromise_scenarios():
                after = self._after_decider(architecture, scenario)
                matrix.add(
                    impact_of_compromise(architecture, scenario, before, after, self.probes)
                )
        return matrix


__all__ = [
    "CollaborationScenario",
    "CollaborationResult",
    "NATIdentificationScenario",
    "NATIdentificationResult",
    "PartialDeploymentScenario",
    "PartialDeploymentResult",
    "deployment_sweep",
    "SecurityComparisonScenario",
    "ModelHost",
    "ALL_ARCHITECTURES",
    "ARCH_IDENTPP",
    "ARCH_VANILLA",
    "ARCH_DISTRIBUTED",
    "ARCH_ETHANE",
    "ARCH_VLAN",
    "IDENTPP_MATRIX_POLICY",
]
