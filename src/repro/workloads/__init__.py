"""Workloads and scenario builders.

* :mod:`repro.workloads.paper_configs` — the controller ``.control``
  files and daemon ``@app`` configuration files of Figures 2–8,
  reproduced verbatim (with real signatures substituted for the paper's
  ``21oir...w3eda`` placeholders).
* :mod:`repro.workloads.generators` — deterministic flow/traffic
  generators (uniform and Zipf-popularity flow mixes) used by the
  cache and throughput benchmarks.
* :mod:`repro.workloads.enterprise` — builders for the canonical
  enterprise network, the two-branch (collaboration) network and the
  partial-deployment network.
* :mod:`repro.workloads.scenarios` — one scenario class per experiment
  (E1–E9), each exposing ``run()``/``results()`` used by the examples,
  the integration tests and the benchmark harness.
* :mod:`repro.workloads.churn` — the churn/soak workload that drives
  ~100k short-lived flows through the decision components and checks
  flow-state stays bounded and policy errors fail closed.
* :mod:`repro.workloads.cluster` — the sharded control plane workloads:
  1-vs-4-shard decision throughput and the kill-one-replica failover
  churn soak (zero flows lost open-ended).

The two soak modules (``churn``, ``cluster``) are deliberately *not*
imported here: both run standalone via ``python -m``, and an eager
package import would make the interpreter execute them twice (the
``found in sys.modules after import of package`` RuntimeWarning).
Import them by module path.
"""

from repro.workloads.generators import FlowGenerator, FlowTemplate, zipf_weights
from repro.workloads.enterprise import (
    build_branch_network,
    build_enterprise_network,
    build_linear_network,
)
from repro.workloads import paper_configs, scenarios

__all__ = [
    "FlowGenerator",
    "FlowTemplate",
    "zipf_weights",
    "build_branch_network",
    "build_enterprise_network",
    "build_linear_network",
    "paper_configs",
    "scenarios",
]
