"""Workloads and scenario builders.

* :mod:`repro.workloads.paper_configs` — the controller ``.control``
  files and daemon ``@app`` configuration files of Figures 2–8,
  reproduced verbatim (with real signatures substituted for the paper's
  ``21oir...w3eda`` placeholders).
* :mod:`repro.workloads.generators` — deterministic flow/traffic
  generators (uniform and Zipf-popularity flow mixes) used by the
  cache and throughput benchmarks.
* :mod:`repro.workloads.enterprise` — builders for the canonical
  enterprise network, the two-branch (collaboration) network and the
  partial-deployment network.
* :mod:`repro.workloads.scenarios` — one scenario class per experiment
  (E1–E9), each exposing ``run()``/``results()`` used by the examples,
  the integration tests and the benchmark harness.
* :mod:`repro.workloads.churn` — the churn/soak workload that drives
  ~100k short-lived flows through the decision components and checks
  flow-state stays bounded and policy errors fail closed.
"""

from repro.workloads.churn import ChurnConfig, ChurnReport, ChurnSoak, error_probe
from repro.workloads.generators import FlowGenerator, FlowTemplate, zipf_weights
from repro.workloads.enterprise import (
    build_branch_network,
    build_enterprise_network,
    build_linear_network,
)
from repro.workloads import paper_configs, scenarios

__all__ = [
    "ChurnConfig",
    "ChurnReport",
    "ChurnSoak",
    "error_probe",
    "FlowGenerator",
    "FlowTemplate",
    "zipf_weights",
    "build_branch_network",
    "build_enterprise_network",
    "build_linear_network",
    "paper_configs",
    "scenarios",
]
