"""Determinism regression: the double-run event-trace hash gate.

The simulator's contract is bit-for-bit reproducibility: same scenario,
same seed, same event trace.  Every perf number in
``BENCH_results.json`` rests on that contract — if two runs of the same
workload can diverge, a "speedup" may just be a lucky interleaving.
This module makes the contract a *gate*: the queryload and
decision-core bench scenarios each run **twice** with the same seed
under ``Simulator(sanitize=True)``, and the runs must produce identical
event-trace hashes (see
:class:`repro.netsim.sanitizer.EventTraceHasher`) and identical event
counts.  Any wall-clock read, module-global RNG draw or
iteration-order leak breaks the hash equality and fails ``make bench``.

Run standalone::

    python -m repro.workloads.determinism
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPNetwork
from repro.workloads.decision_core import DECISION_POLICY
from repro.workloads.generators import FlowGenerator, FlowTemplate
from repro.workloads.queryload import QUERYLOAD_POLICY

#: The one seed both double-runs use; recorded next to the trace hashes
#: in ``BENCH_results.json`` so the entry is reproducible by itself.
DETERMINISM_SEED = 2009


@dataclass(frozen=True)
class ScenarioTrace:
    """What one sanitized run of a scenario produced."""

    trace_hash: str
    events: int
    decided: int
    max_same_instant: int

    def as_dict(self) -> dict[str, object]:
        return {
            "trace_hash": self.trace_hash,
            "events": self.events,
            "decided": self.decided,
            "max_same_instant": self.max_same_instant,
        }


@dataclass(frozen=True)
class DeterminismReport:
    """Two runs of one scenario, and whether they were identical."""

    scenario: str
    seed: int
    first: ScenarioTrace
    second: ScenarioTrace

    @property
    def identical(self) -> bool:
        """Gate: both runs produced the same trace hash and event count."""
        return (
            self.first.trace_hash == self.second.trace_hash
            and self.first.events == self.second.events
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "first": self.first.as_dict(),
            "second": self.second.as_dict(),
            "identical": self.identical,
        }


def _templates(clients: int, *, dst_host: str, dst_ip: str, app: str) -> list[FlowTemplate]:
    return [
        FlowTemplate(
            src_host=f"client{index}",
            dst_host=dst_host,
            src_ip=f"192.168.0.{10 + index}",
            dst_ip=dst_ip,
            dst_port=80,
            app_name=app,
            user_name="alice",
        )
        for index in range(clients)
    ]


def _drive(
    net: IdentPPNetwork,
    templates: list[FlowTemplate],
    *,
    seed: int,
    flows: int,
) -> ScenarioTrace:
    """Inject a seeded flow schedule into ``net`` and run it sanitized.

    Arrival times are jittered from the same seeded RNG that picks the
    source client, so repeated same-instant collisions (the case the
    sanitizer's tie tracking watches) occur naturally alongside spread
    arrivals.
    """
    sim = net.topology.sim
    sim.enable_sanitizer()
    rng = random.Random(seed)
    generator = FlowGenerator(templates, seed=seed, zipf_skew=1.1)

    def inject(template: FlowTemplate) -> None:
        net.host(template.src_host).open_flow(
            template.app_name, template.user_name, template.dst_ip, template.dst_port
        )

    at = 0.0
    for template, _ in generator.draw_batch(flows):
        # Quantised arrivals: distinct instants most of the time, exact
        # same-instant collisions whenever two draws land on one slot.
        at += rng.randrange(0, 4) * 0.0005
        sim.schedule(at, inject, template)
    net.run()
    sanitizer = sim.sanitizer
    assert sanitizer is not None
    decided = len([r for r in net.controller.audit.records() if not r.cached])
    return ScenarioTrace(
        trace_hash=sanitizer.trace_hash,
        events=sim.events_processed,
        decided=decided,
        max_same_instant=sanitizer.max_same_instant,
    )


def decision_core_scenario(seed: int = DETERMINISM_SEED, *, flows: int = 80) -> ScenarioTrace:
    """The decision-core bench topology: async core, query/eval overlap."""
    clients = 4
    net = IdentPPNetwork(
        "determinism-decision-core",
        link_latency=50e-6,
        controller_config=ControllerConfig(
            decision_core="async",
            serialize_decisions=True,
            nonblocking_inbox=True,
            policy_eval_delay=200e-6,
            pending_deadline=120.0,
        ),
        policy_default_action="block",
    )
    edge = net.add_switch("sw-edge")
    core = net.add_switch("sw-core")
    net.connect(edge, core)
    for index in range(clients):
        net.add_host(
            HostSpec(
                name=f"client{index}",
                ip=f"192.168.0.{10 + index}",
                users={"alice": ("users", "staff")},
            ),
            switch=edge,
        )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=core)
    server.run_server("httpd", "root", 80)
    net.set_policy({"00-decision.control": DECISION_POLICY})
    for daemon in net.daemons.values():
        daemon.processing_delay = 500e-6
    templates = _templates(clients, dst_host="server", dst_ip="192.168.1.1", app="http")
    return _drive(net, templates, seed=seed, flows=flows)


def queryload_scenario(seed: int = DETERMINISM_SEED, *, flows: int = 80) -> ScenarioTrace:
    """The queryload bench topology: hot server behind the query cache."""
    clients = 4
    net = IdentPPNetwork(
        "determinism-queryload",
        link_latency=50e-6,
        controller_config=ControllerConfig(query_cache_ttl=30.0),
        policy_default_action="block",
    )
    edge = net.add_switch("sw-edge")
    core = net.add_switch("sw-core")
    net.connect(edge, core)
    for index in range(clients):
        net.add_host(
            HostSpec(
                name=f"client{index}",
                ip=f"192.168.0.{10 + index}",
                users={"alice": ("users", "staff")},
            ),
            switch=edge,
        )
    server = net.add_host(HostSpec(name="hot-server", ip="192.168.1.1"), switch=core)
    server.run_server("httpd", "root", 80)
    net.set_policy({"00-queryload.control": QUERYLOAD_POLICY})
    for daemon in net.daemons.values():
        daemon.processing_delay = 500e-6
    templates = _templates(clients, dst_host="hot-server", dst_ip="192.168.1.1", app="http")
    return _drive(net, templates, seed=seed, flows=flows)


#: The scenarios the gate double-runs; names key the BENCH entry.
SCENARIOS: dict[str, Callable[[int], ScenarioTrace]] = {
    "decision_core": decision_core_scenario,
    "queryload": queryload_scenario,
}


class DeterminismGate:
    """Double-run every scenario and compare event-trace hashes."""

    def __init__(self, seed: int = DETERMINISM_SEED) -> None:
        self.seed = seed

    def run(self) -> dict[str, DeterminismReport]:
        reports: dict[str, DeterminismReport] = {}
        for name, scenario in SCENARIOS.items():
            reports[name] = DeterminismReport(
                scenario=name,
                seed=self.seed,
                first=scenario(self.seed),
                second=scenario(self.seed),
            )
        return reports

    def as_dict(self) -> dict[str, object]:
        """Run the gate and return the JSON summary for ``BENCH_results.json``."""
        reports = self.run()
        payload: dict[str, object] = {
            name: report.as_dict() for name, report in reports.items()
        }
        payload["seed"] = self.seed
        payload["all_identical"] = all(report.identical for report in reports.values())
        return payload


def main() -> int:
    """Standalone entry point: run the gate, print, exit non-zero on divergence."""
    gate = DeterminismGate()
    ok = True
    for name, report in gate.run().items():
        status = "identical" if report.identical else "DIVERGED"
        print(
            f"  {name}: {status}  seed={report.seed}  "
            f"events={report.first.events}/{report.second.events}  "
            f"hash={report.first.trace_hash[:16]}../{report.second.trace_hash[:16]}.."
        )
        ok = ok and report.identical
    if not ok:
        print("FAIL: double-run event traces diverged — the simulation is not deterministic")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
