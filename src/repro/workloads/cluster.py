"""Cluster workloads: decision-loop scale-out and failover churn.

The paper's flow-setup experiment measures one controller's decision
loop (§3.4, Figure 1); these workloads measure what sharding that loop
buys and what a shard crash costs.  Two drivers for the sharded
control plane, both runnable standalone
(``make soak_cluster``) and recorded in ``BENCH_results.json``:

* :class:`ClusterScaleBench` — the scalability claim.  Each controller
  is modelled as a **serial decision loop**
  (``ControllerConfig.serialize_decisions``): one evaluation occupies it
  for ``policy_eval_delay``, so a burst of punts queues behind it.  The
  bench injects the same burst of unique flows into a 1-shard and a
  4-shard cluster and compares aggregate decided-flows per *simulated*
  second.  With a balanced ring the 4-shard makespan approaches a
  quarter of the 1-shard one, so the speedup doubles as a consistent-
  hash balance gate: a skewed ring makes the slowest shard the
  bottleneck and fails the ≥ 3x acceptance floor.

* :class:`ClusterFailoverChurn` — the resilience claim.  Bursty churn
  traffic runs against a 4-shard cluster; one replica is killed mid-
  run with punts in flight.  The soak asserts **zero flows are lost
  open-ended**: every flow is either decided (by its owner or, after
  re-punt, by the successor) or failed closed by the pending-deadline
  backstop; every pending table and switch buffer drains to empty; and
  a delegation revocation issued after the failover is observed on
  every shard (the coordinator's cluster-wide propagation).

Run standalone::

    python -m repro.workloads.cluster
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPClusterNetwork
from repro.identpp.flowspec import FlowSpec
from repro.netsim.statistics import RateCounter
from repro.workloads.invariants import check_zero_loss

#: The cluster workloads' policy: allow web traffic statefully.
CLUSTER_POLICY = (
    "block all\n"
    "pass from any to any port 80 keep state\n"
)

#: Acceptance floor for the 4-shard aggregate throughput speedup — the
#: single source both ``make soak_cluster`` and ``make bench`` gate on.
CLUSTER_SPEEDUP_FLOOR = 3.0


def _build_cluster_net(
    name: str,
    *,
    shards: int,
    clients: int,
    config: ControllerConfig,
    vnodes: int = 128,
    heartbeat_interval: float = 0.05,
    miss_threshold: int = 2,
) -> IdentPPClusterNetwork:
    """Stand up the canonical bench fabric: clients — sw-edge — sw-core — server."""
    net = IdentPPClusterNetwork(
        name,
        shards=shards,
        policy_default_action="block",
        controller_config=config,
        vnodes=vnodes,
        heartbeat_interval=heartbeat_interval,
        miss_threshold=miss_threshold,
    )
    edge = net.add_switch("sw-edge")
    core = net.add_switch("sw-core")
    net.connect(edge, core)
    for index in range(clients):
        net.add_host(
            HostSpec(
                name=f"client{index}",
                ip=f"192.168.0.{10 + index}",
                users={"alice": ("users", "staff")},
            ),
            switch=edge,
        )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=core)
    server.run_server("httpd", "root", 80)
    net.set_policy({"00-cluster.control": CLUSTER_POLICY})
    return net


# ----------------------------------------------------------------------
# Scale bench
# ----------------------------------------------------------------------


@dataclass
class ClusterScaleConfig:
    """Tunables of the 1-vs-4 shard scale bench."""

    flows: int = 1_000
    clients: int = 8
    shard_counts: tuple[int, ...] = (1, 4)
    #: Serial decision-loop occupancy per evaluation.  Dominates the
    #: (parallel) ident++ query latency so the makespan measures the
    #: decision loop, the resource sharding multiplies.
    policy_eval_delay: float = 500e-6
    vnodes: int = 128

    def controller_config(self) -> ControllerConfig:
        """Return the per-replica config (serialized decision loop)."""
        return ControllerConfig(
            serialize_decisions=True,
            policy_eval_delay=self.policy_eval_delay,
            # The 1-shard run queues flows * eval_delay seconds of work;
            # the deadline must not fire while flows wait their turn.
            pending_deadline=60.0,
        )


@dataclass
class ClusterScaleReport:
    """Aggregate decided-flows/s per shard count, and the speedup."""

    flows: int
    throughput_by_shards: dict[int, float]
    makespan_by_shards: dict[int, float]
    decided_by_shards: dict[int, int]
    shard_loads: dict[int, dict[str, int]]
    wall_seconds: float

    @property
    def speedup(self) -> float:
        """Return max-shard throughput over 1-shard throughput."""
        counts = sorted(self.throughput_by_shards)
        base = self.throughput_by_shards[counts[0]]
        top = self.throughput_by_shards[counts[-1]]
        return top / base if base else 0.0

    def as_dict(self) -> dict[str, object]:
        """Return a JSON-serialisable summary for the benchmark suite."""
        return {
            "flows": self.flows,
            "decided_flows_per_vsec": {
                str(count): round(value, 1)
                for count, value in sorted(self.throughput_by_shards.items())
            },
            "makespan_vsec": {
                str(count): round(value, 6)
                for count, value in sorted(self.makespan_by_shards.items())
            },
            "decided": {
                str(count): value
                for count, value in sorted(self.decided_by_shards.items())
            },
            "largest_shard_share": {
                str(count): round(max(loads.values()) / max(1, sum(loads.values())), 3)
                for count, loads in sorted(self.shard_loads.items())
            },
            "speedup": round(self.speedup, 2),
            "wall_seconds": round(self.wall_seconds, 3),
        }


class ClusterScaleBench:
    """Compare aggregate decision throughput across shard counts."""

    def __init__(self, config: Optional[ClusterScaleConfig] = None) -> None:
        self.config = config if config is not None else ClusterScaleConfig()

    def run(self) -> ClusterScaleReport:
        """Run every shard count over the identical flow burst."""
        cfg = self.config
        throughput: dict[int, float] = {}
        makespan: dict[int, float] = {}
        decided: dict[int, int] = {}
        loads: dict[int, dict[str, int]] = {}
        wall_start = time.perf_counter()
        for shards in cfg.shard_counts:
            net = _build_cluster_net(
                f"cluster-scale-{shards}",
                shards=shards,
                clients=cfg.clients,
                config=cfg.controller_config(),
                vnodes=cfg.vnodes,
            )
            self._inject_burst(net, cfg.flows, cfg.clients)
            net.run()
            rate = RateCounter(f"cluster-scale-{shards}.decisions")
            last_decision = 0.0
            per_shard: dict[str, int] = {}
            for name, controller in net.cluster.replicas.items():
                records = [r for r in controller.audit.records() if not r.cached]
                per_shard[name] = len(records)
                for record in records:
                    rate.record(record.time)
                if records:
                    last_decision = max(last_decision, records[-1].time)
            makespan[shards] = last_decision
            decided[shards] = int(rate.total)
            loads[shards] = per_shard
            throughput[shards] = rate.mean_rate(last_decision)
        return ClusterScaleReport(
            flows=cfg.flows,
            throughput_by_shards=throughput,
            makespan_by_shards=makespan,
            decided_by_shards=decided,
            shard_loads=loads,
            wall_seconds=time.perf_counter() - wall_start,
        )

    @staticmethod
    def _inject_burst(net: IdentPPClusterNetwork, flows: int, clients: int) -> None:
        """Open ``flows`` unique flows at t=0 (a flash crowd of new sessions)."""
        for index in range(flows):
            client = net.host(f"client{index % clients}")
            client.open_flow("http", "alice", "192.168.1.1", 80)


# ----------------------------------------------------------------------
# Failover churn soak
# ----------------------------------------------------------------------


@dataclass
class ClusterFailoverConfig:
    """Tunables of the kill-one-replica churn soak."""

    shards: int = 4
    clients: int = 8
    #: Bursts model flash crowds: each burst queues work at every shard,
    #: so the kill lands with punts genuinely in flight.
    bursts: int = 20
    burst_size: int = 20
    burst_interval: float = 0.1
    kill_after_burst: int = 10
    policy_eval_delay: float = 2e-3
    heartbeat_interval: float = 0.05
    miss_threshold: int = 2
    settle: float = 2.0

    @property
    def flows(self) -> int:
        """Total unique flows injected."""
        return self.bursts * self.burst_size

    def controller_config(self) -> ControllerConfig:
        """Return the per-replica config (serialized, tight deadline)."""
        return ControllerConfig(
            serialize_decisions=True,
            policy_eval_delay=self.policy_eval_delay,
            pending_deadline=1.0,
        )


@dataclass
class ClusterFailoverReport:
    """What the failover soak observed."""

    flows: int
    decided: int
    failed_closed: int
    flows_accounted: int
    repunted_flows: int
    repunted_messages: int
    failovers: int
    pending_after: int
    buffered_after: int
    killed_shard: str
    adopted_punts: int
    revocation_applied_to: tuple[str, ...] = ()
    revocation_origin: str = ""
    revocation_active_after: int = 0
    epochs_converged: bool = False
    resyncs: int = 0
    wall_seconds: float = 0.0
    # Accounting/drain violations come from the shared zero-loss checker
    # (repro.workloads.invariants) — the same one the experiment matrix
    # evaluates — so the soak and the matrix cannot drift apart.
    accounting_violations: tuple[str, ...] = ()
    # Computed from the fields above, never passed in.
    violations: list[str] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.violations = self._compute_violations()

    def _compute_violations(self) -> list[str]:
        violations = list(self.accounting_violations)
        if self.failovers < 1:
            violations.append("the kill was never detected (no failover ran)")
        if self.revocation_active_after:
            violations.append(
                f"revocation left {self.revocation_active_after} shards with the grant active"
            )
        if not self.epochs_converged:
            violations.append("replica policy/delegation epochs diverged")
        return violations

    @property
    def zero_loss(self) -> bool:
        """True when no flow was lost open-ended (acceptance gate)."""
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        """Return a JSON-serialisable summary for the benchmark suite."""
        return {
            "flows": self.flows,
            "decided": self.decided,
            "failed_closed": self.failed_closed,
            "flows_accounted": self.flows_accounted,
            "repunted_flows": self.repunted_flows,
            "repunted_messages": self.repunted_messages,
            "failovers": self.failovers,
            "pending_after": self.pending_after,
            "buffered_after": self.buffered_after,
            "killed_shard": self.killed_shard,
            "adopted_punts": self.adopted_punts,
            "revocation_applied_to": list(self.revocation_applied_to),
            "revocation_origin": self.revocation_origin,
            "epochs_converged": self.epochs_converged,
            "resyncs": self.resyncs,
            "zero_loss": self.zero_loss,
            "violations": list(self.violations),
            "wall_seconds": round(self.wall_seconds, 3),
        }


class ClusterFailoverChurn:
    """Kill a replica mid-churn and prove nothing is lost open-ended."""

    def __init__(self, config: Optional[ClusterFailoverConfig] = None) -> None:
        self.config = config if config is not None else ClusterFailoverConfig()

    def run(self) -> ClusterFailoverReport:
        """Run the soak and return the loss-accounting report."""
        cfg = self.config
        wall_start = time.perf_counter()
        net = _build_cluster_net(
            "cluster-failover",
            shards=cfg.shards,
            clients=cfg.clients,
            config=cfg.controller_config(),
            heartbeat_interval=cfg.heartbeat_interval,
            miss_threshold=cfg.miss_threshold,
        )
        cluster = net.cluster
        cluster.grant_delegation("secur", "beefcafe" * 8)

        flows: list[FlowSpec] = []

        def burst(index: int) -> None:
            for offset in range(cfg.burst_size):
                client = net.host(
                    f"client{(index * cfg.burst_size + offset) % cfg.clients}"
                )
                packet, _, _ = client.open_flow("http", "alice", "192.168.1.1", 80)
                flows.append(FlowSpec.from_packet(packet))

        sim = net.topology.sim
        for index in range(cfg.bursts):
            sim.schedule_at(index * cfg.burst_interval, burst, index)
        killed = cluster.shard_map.shards()[0]
        # Kill a hair after a burst lands so the victim holds pending
        # punts and has more in flight on its channels.
        kill_time = cfg.kill_after_burst * cfg.burst_interval + 1e-3
        sim.schedule_at(kill_time, cluster.kill, killed)

        net.start_monitoring()
        net.run(cfg.bursts * cfg.burst_interval + cfg.settle)
        net.stop_monitoring()
        net.run()  # drain every remaining decision/deadline event

        # --- loss accounting (shared zero-loss invariant checker) ------------
        records = cluster.audit_records()
        pending_after = cluster.pending_total()
        buffered_after = sum(s.buffered_count() for s in net.switches.values())
        accounting = check_zero_loss(
            flows, records, pending=pending_after, buffered=buffered_after
        )

        # --- cluster-wide revocation after the failover ----------------------
        # Issued while one replica is still a corpse: every live shard
        # applies it now, and restoring the corpse resyncs it too — no
        # revived shard may keep enforcing the revoked grant.
        successor = cluster.shard_map.live_shards()[0]
        revocation = cluster.revoke_delegation("secur", origin_shard=successor)
        cluster.restore(killed)
        net.run()
        active_after = sum(
            1 for c in cluster.replicas.values() if c.delegations.is_active("secur")
        )

        report = ClusterFailoverReport(
            flows=len(flows),
            decided=accounting.details["decided"],
            failed_closed=accounting.details["failed_closed"],
            flows_accounted=len(flows) - accounting.details["unaccounted"],
            repunted_flows=cluster.repunted_flows,
            repunted_messages=cluster.repunted_messages,
            failovers=cluster.failovers,
            pending_after=pending_after,
            buffered_after=buffered_after,
            killed_shard=killed,
            # Punts the survivors adopted through the failover handoff.
            adopted_punts=sum(c.repunts_adopted for c in cluster.replicas.values()),
            revocation_applied_to=revocation.applied_to,
            revocation_origin=revocation.origin_shard,
            revocation_active_after=active_after,
            epochs_converged=cluster.coordinator.verify_converged(),
            resyncs=cluster.coordinator.resyncs,
            wall_seconds=time.perf_counter() - wall_start,
            accounting_violations=tuple(accounting.violations),
        )
        return report


def _print_report(payload: dict[str, object]) -> None:
    width = max(len(key) for key in payload)
    for key, value in payload.items():
        print(f"  {key:<{width}}  {value}")


def main() -> int:
    """``make soak_cluster`` entry point: scale bench + failover soak, gated."""
    print("running cluster scale bench (1 vs 4 shards, serialized decision loop) ...")
    scale = ClusterScaleBench().run()
    _print_report(scale.as_dict())

    print("running cluster failover churn (kill one replica mid-run) ...")
    failover = ClusterFailoverChurn().run()
    _print_report(failover.as_dict())

    ok = True
    if scale.speedup < CLUSTER_SPEEDUP_FLOOR:
        ok = False
        print(
            f"FAIL: 4-shard speedup {scale.speedup:.2f}x below the "
            f"{CLUSTER_SPEEDUP_FLOOR:g}x acceptance floor"
        )
    if not failover.zero_loss:
        ok = False
        for violation in failover.violations:
            print(f"FAIL: {violation}")
    if ok:
        print("cluster soak ok: sharding scales the decision loop, failover loses nothing")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
