"""Executable scenarios for the paper's figures (experiments E1–E6).

Each scenario class builds an ident++-protected network loaded with the
corresponding figure's configuration (from
:mod:`repro.workloads.paper_configs`), drives a matrix of flows through
the full datapath (switch punt → ident++ queries → PF+=2 decision →
flow entries → delivery) and reports one :class:`CaseResult` per flow
with the verdict the paper's prose leads us to expect.

The examples, integration tests and benchmark harness all consume these
classes, so the "what should happen" knowledge lives in exactly one
place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.controller import ControllerConfig
from repro.core.network import FlowResult, HostSpec, IdentPPNetwork
from repro.crypto.signatures import Signer
from repro.hosts.applications import Application, standard_applications
from repro.netsim.links import DEFAULT_LATENCY
from repro.workloads import paper_configs
from repro.workloads.enterprise import build_linear_network


@dataclass
class CaseResult:
    """One flow of a scenario matrix: what we expected and what happened."""

    label: str
    expected_action: str
    actual_action: Optional[str]
    delivered: bool
    rule: str = ""

    @property
    def correct(self) -> bool:
        """Return ``True`` when the observed verdict matches the paper's intent.

        Delivery must also agree with the verdict: a passed flow reaches
        its destination, a blocked one does not.
        """
        if self.actual_action != self.expected_action:
            return False
        return self.delivered == (self.expected_action == "pass")


@dataclass
class FlowCase:
    """One flow to drive through a scenario network."""

    label: str
    src_host: str
    app: str
    user: str
    dst_ip: str
    dst_port: int
    expected: str
    proto: str = "tcp"


class FigureScenario:
    """Shared machinery: build a network, run a case matrix, collect results."""

    def __init__(self) -> None:
        self.net: IdentPPNetwork = self.build_network()
        self.cases: list[FlowCase] = self.build_cases()
        self.results: list[CaseResult] = []

    # Subclasses override these two.
    def build_network(self) -> IdentPPNetwork:
        raise NotImplementedError

    def build_cases(self) -> list[FlowCase]:
        raise NotImplementedError

    def run(self) -> list[CaseResult]:
        """Drive every case through the datapath and collect the results."""
        self.results = []
        for case in self.cases:
            outcome: FlowResult = self.net.send_flow(
                case.src_host, case.app, case.user, case.dst_ip, case.dst_port, proto=case.proto
            )
            self.results.append(
                CaseResult(
                    label=case.label,
                    expected_action=case.expected,
                    actual_action=outcome.decision_action,
                    delivered=outcome.delivered,
                    rule=outcome.decision_rule,
                )
            )
        return self.results

    def all_correct(self) -> bool:
        """Return ``True`` when every case matched the paper's expectation."""
        if not self.results:
            self.run()
        return all(result.correct for result in self.results)

    def mismatches(self) -> list[CaseResult]:
        """Return the cases whose outcome differs from the expectation."""
        if not self.results:
            self.run()
        return [result for result in self.results if not result.correct]


# ---------------------------------------------------------------------------
# E1 — Figure 1: the flow-setup walkthrough
# ---------------------------------------------------------------------------

@dataclass
class FlowSetupMeasurement:
    """The latency breakdown of one reactive flow setup (Figure 1)."""

    switch_count: int
    link_latency: float
    control_channel_latency: float
    query_latency: float
    policy_delay: float
    controller_decision_latency: float
    end_to_end_delivery: float
    delivered: bool


class FlowSetupScenario:
    """Measures the Figure 1 sequence on a linear topology."""

    def __init__(
        self,
        *,
        switch_count: int = 2,
        link_latency: float = DEFAULT_LATENCY,
        policy_files: Optional[dict[str, str]] = None,
    ) -> None:
        self.switch_count = switch_count
        self.link_latency = link_latency
        self.policy_files = policy_files or {
            "00-default.control": "block all\npass from any to any with eq(@src[name], http) keep state\n",
        }

    def run(self) -> FlowSetupMeasurement:
        """Send one flow and report where the setup time went."""
        net = build_linear_network(self.switch_count, link_latency=self.link_latency)
        net.set_policy(self.policy_files)
        server = net.host("server")
        result = net.send_flow("client", "http", "alice", str(server.ip), 80)
        controller = net.controller
        config: ControllerConfig = controller.config
        delivery_time = server.delivered_times[0] if server.delivered_times else float("nan")
        channel_latency = next(iter(controller.channels.values())).latency if controller.channels else 0.0
        return FlowSetupMeasurement(
            switch_count=self.switch_count,
            link_latency=self.link_latency,
            control_channel_latency=channel_latency,
            query_latency=controller.query_latency.mean,
            policy_delay=config.policy_eval_delay,
            controller_decision_latency=controller.flow_setup_latency.mean,
            end_to_end_delivery=delivery_time,
            delivered=result.delivered,
        )

    def sweep_link_latency(self, latencies: list[float]) -> list[FlowSetupMeasurement]:
        """Repeat the measurement for several link latencies (the E1 series)."""
        measurements = []
        for latency in latencies:
            scenario = FlowSetupScenario(
                switch_count=self.switch_count,
                link_latency=latency,
                policy_files=self.policy_files,
            )
            measurements.append(scenario.run())
        return measurements


# ---------------------------------------------------------------------------
# E2 + E3 — Figures 2 and 3: the Skype policy
# ---------------------------------------------------------------------------

class SkypeScenario(FigureScenario):
    """Figure 2's three ``.control`` files plus Figure 3's daemon configuration."""

    LAN_A = "192.168.0.10"
    LAN_B = "192.168.0.11"
    SERVER = "192.168.1.1"
    EXTERNAL = "203.0.113.80"
    SKYPE_UPDATE = "123.123.123.5"
    SKYPE_PORT = 5060

    def build_network(self) -> IdentPPNetwork:
        net = IdentPPNetwork("skype-scenario")
        lan_switch = net.add_switch("sw-lan")
        core = net.add_switch("sw-core")
        edge = net.add_switch("sw-edge")
        net.connect(lan_switch, core)
        net.connect(core, edge)

        self.signer = Signer("skype-vendor", seed=3)
        skype_app = next(a for a in standard_applications() if a.name == "skype")
        skype_config = paper_configs.figure3_skype_daemon_config(skype_app, self.signer)

        net.add_host(
            HostSpec(name="lan-a", ip=self.LAN_A, users={"alice": ("users", "staff")},
                     daemon_system_configs=[skype_config]),
            switch=lan_switch,
        )
        lan_b = net.add_host(
            HostSpec(name="lan-b", ip=self.LAN_B, users={"bob": ("users", "staff")},
                     daemon_system_configs=[skype_config]),
            switch=lan_switch,
        )
        lan_b.run_server("skype", "bob", self.SKYPE_PORT)
        lan_b.run_server("sshd", "root", 22)

        server = net.add_host(
            HostSpec(name="server", ip=self.SERVER, users={"smtp": ("service",)}),
            switch=core,
        )
        server.run_server("httpd", "root", 80)
        server.run_server("smtp-server", "root", 25)

        external = net.add_host(
            HostSpec(name="external", ip=self.EXTERNAL, users={"mallory": ("internet",)}),
            switch=edge,
        )
        external.run_server("httpd", "root", 80)

        update = net.add_host(
            HostSpec(name="skype-update", ip=self.SKYPE_UPDATE, users={"www": ("service",)}),
            switch=edge,
        )
        update.run_server("httpd", "root", 80)

        net.set_policy(paper_configs.figure2_control_files())
        return net

    def build_cases(self) -> list[FlowCase]:
        return [
            FlowCase("approved app (http) inside the LAN", "lan-a", "http", "alice",
                     self.SERVER, 80, "pass"),
            FlowCase("approved app (ssh) inside the LAN", "lan-a", "ssh", "alice",
                     self.LAN_B, 22, "pass"),
            FlowCase("skype to skype (current version)", "lan-a", "skype", "alice",
                     self.LAN_B, self.SKYPE_PORT, "pass"),
            FlowCase("skype older than version 200", "lan-a", "skype-old", "alice",
                     self.LAN_B, self.SKYPE_PORT, "block"),
            FlowCase("skype to the protected server", "lan-a", "skype", "alice",
                     self.SERVER, 25, "block"),
            FlowCase("unapproved app (telnet) inside the LAN", "lan-a", "telnet", "alice",
                     self.LAN_B, 23, "block"),
            FlowCase("outbound connection to the Internet", "lan-a", "http", "alice",
                     self.EXTERNAL, 80, "pass"),
            FlowCase("inbound connection from the Internet", "external", "http", "mallory",
                     self.LAN_A, 80, "block"),
            FlowCase("skype update check (port 80 to update servers)", "lan-a", "skype", "alice",
                     self.SKYPE_UPDATE, 80, "pass"),
        ]


# ---------------------------------------------------------------------------
# E4 — Figures 4 and 5: delegation to users (the research application)
# ---------------------------------------------------------------------------

class ResearchDelegationScenario(FigureScenario):
    """A researcher delegates per-application rules, signed with her own key."""

    RESEARCH_A = "192.168.2.10"
    RESEARCH_B = "192.168.2.11"
    RESEARCH_TAMPERED = "192.168.2.12"
    PRODUCTION = "192.168.3.10"
    LAN_CLIENT = "192.168.0.10"
    APP_PORT = 7777

    def build_network(self) -> IdentPPNetwork:
        net = IdentPPNetwork("research-delegation")
        research_sw = net.add_switch("sw-research")
        core = net.add_switch("sw-core")
        net.connect(research_sw, core)

        self.researcher_signer = Signer("research", seed=11)
        research_app = next(a for a in standard_applications() if a.name == "research-app")
        good_config = paper_configs.figure4_research_daemon_config(research_app, self.researcher_signer)
        # The tampered variant loosens the requirements after signing (the
        # default deny disappears), so the text the daemon reports no longer
        # matches the researcher's signature.
        tampered_config = good_config.replace("block all pass all", "pass all", 1)

        host_a = net.add_host(
            HostSpec(name="research-a", ip=self.RESEARCH_A,
                     users={"carol": ("research", "users")},
                     daemon_user_configs=[good_config]),
            switch=research_sw,
        )
        del host_a
        host_b = net.add_host(
            HostSpec(name="research-b", ip=self.RESEARCH_B,
                     users={"dave": ("research", "users")},
                     daemon_user_configs=[good_config]),
            switch=research_sw,
        )
        host_b.run_server("research-app", "dave", self.APP_PORT)

        tampered = net.add_host(
            HostSpec(name="research-tampered", ip=self.RESEARCH_TAMPERED,
                     users={"erin": ("research", "users")},
                     daemon_user_configs=[tampered_config]),
            switch=research_sw,
        )
        tampered.run_server("research-app", "erin", self.APP_PORT)

        production = net.add_host(
            HostSpec(name="production", ip=self.PRODUCTION,
                     users={"ops": ("research", "production")},
                     daemon_user_configs=[good_config]),
            switch=core,
        )
        production.run_server("research-app", "ops", self.APP_PORT)

        net.add_host(
            HostSpec(name="lan-client", ip=self.LAN_CLIENT, users={"alice": ("users", "staff")},
                     daemon_user_configs=[good_config]),
            switch=core,
        )

        files = paper_configs.figure5_research_control(
            self.researcher_signer.public_key_hex
        )
        net.set_policy(files)
        return net

    def build_cases(self) -> list[FlowCase]:
        return [
            FlowCase("research app between researcher machines", "research-a", "research-app",
                     "carol", self.RESEARCH_B, self.APP_PORT, "pass"),
            FlowCase("research app toward a production machine", "research-a", "research-app",
                     "carol", self.PRODUCTION, self.APP_PORT, "block"),
            FlowCase("different application toward the research server", "research-a", "telnet",
                     "carol", self.RESEARCH_B, self.APP_PORT, "block"),
            FlowCase("tampered requirements on the destination", "research-a", "research-app",
                     "carol", self.RESEARCH_TAMPERED, self.APP_PORT, "block"),
            FlowCase("non-research machine reaching the research server", "lan-client",
                     "research-app", "alice", self.RESEARCH_B, self.APP_PORT, "block"),
        ]


# ---------------------------------------------------------------------------
# E5 — Figures 6 and 7: trust delegation to a third party ("Secur")
# ---------------------------------------------------------------------------

class ThirdPartyTrustScenario(FigureScenario):
    """Applications approved (and signed for) by the Secur security company."""

    CLIENT = "192.168.0.20"
    CLIENT_TAMPERED = "192.168.0.21"
    MAIL_SERVER = "192.168.1.25"
    WEB_SERVER = "192.168.1.80"

    def build_network(self) -> IdentPPNetwork:
        net = IdentPPNetwork("secur-trust")
        access = net.add_switch("sw-access")
        servers = net.add_switch("sw-servers")
        net.connect(access, servers)

        self.secur = Signer("Secur", seed=23)
        thunderbird = next(a for a in standard_applications() if a.name == "thunderbird")
        good_config = paper_configs.figure6_thunderbird_daemon_config(thunderbird, self.secur)
        # The tampered variant widens Secur's rules after signing (drops the
        # mail-server-only restriction), so verify() must reject it.
        tampered_config = good_config.replace(
            "to any with eq(@dst[type], email-server)", "to any", 1
        )

        net.add_host(
            HostSpec(name="client", ip=self.CLIENT, users={"alice": ("users", "staff")},
                     daemon_system_configs=[good_config]),
            switch=access,
        )
        net.add_host(
            HostSpec(name="client-tampered", ip=self.CLIENT_TAMPERED,
                     users={"bob": ("users", "staff")},
                     daemon_system_configs=[tampered_config]),
            switch=access,
        )

        mail = net.add_host(
            HostSpec(name="mail-server", ip=self.MAIL_SERVER, users={"smtp": ("service",)}),
            switch=servers,
        )
        mail.run_server("smtp-server", "root", 25)

        web = net.add_host(
            HostSpec(name="web-server", ip=self.WEB_SERVER, users={"www": ("service",)}),
            switch=servers,
        )
        web.run_server("httpd", "root", 80)

        net.set_policy(paper_configs.figure7_secur_control(self.secur.public_key_hex))
        return net

    def build_cases(self) -> list[FlowCase]:
        return [
            FlowCase("Secur-approved thunderbird to a mail server", "client", "thunderbird",
                     "alice", self.MAIL_SERVER, 25, "pass"),
            FlowCase("Secur-approved thunderbird to a web server", "client", "thunderbird",
                     "alice", self.WEB_SERVER, 80, "block"),
            FlowCase("application without third-party approval", "client", "pine",
                     "alice", self.MAIL_SERVER, 25, "block"),
            FlowCase("tampered Secur rules on the source host", "client-tampered", "thunderbird",
                     "bob", self.MAIL_SERVER, 25, "block"),
        ]


# ---------------------------------------------------------------------------
# E6 — Figure 8: user/application-specific rules (Conficker / MS08-067)
# ---------------------------------------------------------------------------

class ConfickerScenario(FigureScenario):
    """Only ``system`` users reach the Server service, and only on patched hosts."""

    ADMIN_HOST = "192.168.0.5"
    WORKSTATION = "192.168.0.6"
    INFECTED_LAN = "192.168.0.66"
    PATCHED_SERVER = "192.168.1.10"
    UNPATCHED_SERVER = "192.168.1.11"
    INTERNET = "203.0.113.66"
    SMB_PORT = 445

    def build_network(self) -> IdentPPNetwork:
        net = IdentPPNetwork("conficker")
        access = net.add_switch("sw-access")
        servers = net.add_switch("sw-servers")
        edge = net.add_switch("sw-edge")
        net.connect(access, servers)
        net.connect(servers, edge)

        net.add_host(
            HostSpec(name="admin-host", ip=self.ADMIN_HOST, users={"admin": ("system", "users")}),
            switch=access,
        )
        net.add_host(
            HostSpec(name="workstation", ip=self.WORKSTATION, users={"alice": ("users",)}),
            switch=access,
        )
        net.add_host(
            HostSpec(name="infected-lan", ip=self.INFECTED_LAN, users={"victim": ("users",)}),
            switch=access,
        )

        patched = net.add_host(
            HostSpec(name="patched-server", ip=self.PATCHED_SERVER, users={},
                     host_facts={"os-patch": "MS08-067 MS08-068"}),
            switch=servers,
        )
        patched.run_server("Server", "system", self.SMB_PORT)

        unpatched = net.add_host(
            HostSpec(name="unpatched-server", ip=self.UNPATCHED_SERVER, users={},
                     host_facts={"os-patch": "MS08-001"}),
            switch=servers,
        )
        unpatched.run_server("Server", "system", self.SMB_PORT)

        net.add_host(
            HostSpec(name="internet-attacker", ip=self.INTERNET, users={"mallory": ("internet",)},
                     run_daemon=False),
            switch=edge,
        )

        net.set_policy(paper_configs.figure8_control_files())
        return net

    def build_cases(self) -> list[FlowCase]:
        return [
            FlowCase("system user to the patched Server service", "admin-host", "Server",
                     "system", self.PATCHED_SERVER, self.SMB_PORT, "pass"),
            FlowCase("system user to an unpatched Server service", "admin-host", "Server",
                     "system", self.UNPATCHED_SERVER, self.SMB_PORT, "block"),
            FlowCase("ordinary user to the Server service", "workstation", "http",
                     "alice", self.PATCHED_SERVER, self.SMB_PORT, "block"),
            FlowCase("Conficker probe from the Internet", "internet-attacker", "conficker",
                     "mallory", self.PATCHED_SERVER, self.SMB_PORT, "block"),
            FlowCase("Conficker probe from an infected LAN host (ordinary user)", "infected-lan",
                     "conficker", "victim", self.UNPATCHED_SERVER, self.SMB_PORT, "block"),
        ]


__all__ = [
    "CaseResult",
    "FlowCase",
    "FigureScenario",
    "FlowSetupMeasurement",
    "FlowSetupScenario",
    "SkypeScenario",
    "ResearchDelegationScenario",
    "ThirdPartyTrustScenario",
    "ConfickerScenario",
]
