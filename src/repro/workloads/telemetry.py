"""Telemetry workloads: detect-and-quarantine, and the overhead budget.

The paper's promise is a network that *reacts* to endpoint compromise;
until this PR the conficker scenario only contained the worm because
the workload scripted ``mark_compromised``.  These two drivers prove
the telemetry plane closes the loop on its own and costs almost
nothing, both runnable standalone (``make soak_telemetry``) and
recorded in ``BENCH_results.json``:

* :class:`ConfickerTelemetryBench` — the detection claim.  A cluster
  cell serves a steady clean HTTP workload (the baseline the detectors
  learn), then two infected hosts start scanning every other host on
  port 445.  Nothing tells the control plane: the punt-rate spike
  detector fires, the responder attributes the burst through the audit
  log, and the scanners are quarantined cluster-wide.  Gates: every
  infected host quarantined with exactly one alert each, zero clean
  hosts quarantined, detection inside half a second, and the datapath
  actually contained (the scanner's later traffic dies at its ingress
  switch while clean hosts still reach the server).  A control run of
  the identical cell *without* the outbreak must raise zero alerts.

* :class:`TelemetryOverheadBench` — the cost claim.  The cluster scale
  bench's 4-shard cell runs the identical flow burst with and without
  the sampling plane; the wall-clock delta must stay under
  :data:`TELEMETRY_OVERHEAD_CEILING` percent (min-of-N runs to shave
  scheduler noise).

Run standalone::

    python -m repro.workloads.telemetry
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPClusterNetwork
from repro.workloads.cluster import CLUSTER_POLICY, _build_cluster_net

#: Acceptance ceiling for telemetry overhead on the cluster scale cell
#: (percent wall-clock, sampled vs unsampled) — the single source both
#: ``make soak_telemetry`` and ``make bench`` gate on.
TELEMETRY_OVERHEAD_CEILING = 5.0

#: Acceptance ceiling for outbreak detection latency (virtual seconds
#: from first scan packet to the last quarantine alert).
DETECTION_LATENCY_CEILING = 0.5


# ----------------------------------------------------------------------
# Detection bench
# ----------------------------------------------------------------------


@dataclass
class ConfickerTelemetryConfig:
    """Tunables of the telemetry-driven conficker outbreak."""

    shards: int = 2
    clients: int = 8
    infected: int = 2
    #: Clean HTTP flows per second during warmup — the baseline the
    #: EWMA detectors learn before the outbreak.
    warmup_interval: float = 0.05
    warmup_duration: float = 2.0
    #: Scan rounds per infected host and spacing between probes; each
    #: round sprays every other host on port 445.
    scan_rounds: int = 2
    scan_spacing: float = 0.004
    scan_round_gap: float = 0.12
    settle: float = 2.0
    telemetry_interval: float = 0.05
    fanout_threshold: int = 8

    def controller_config(self) -> ControllerConfig:
        """Return the per-replica config (cached queries, serial eval)."""
        return ControllerConfig(
            serialize_decisions=True,
            query_cache_ttl=5.0,
        )


@dataclass
class ConfickerTelemetryReport:
    """What the telemetry plane saw, decided and contained."""

    infected_ips: tuple[str, ...]
    quarantined: tuple[str, ...]
    quarantine_alerts: dict[str, int]
    spike_alerts: int
    outbreak_time: float
    detection_time: float
    clean_run_alerts: int
    clean_run_quarantined: int
    infected_contained: bool
    clean_unaffected: bool
    telemetry_samples: int
    wall_seconds: float = 0.0
    # Computed from the fields above, never passed in.
    violations: list[str] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.violations = self._compute_violations()

    def _compute_violations(self) -> list[str]:
        violations = []
        missed = set(self.infected_ips) - set(self.quarantined)
        if missed:
            violations.append(f"infected hosts never quarantined: {sorted(missed)}")
        false_positives = set(self.quarantined) - set(self.infected_ips)
        if false_positives:
            violations.append(f"clean hosts quarantined: {sorted(false_positives)}")
        wrong_counts = {
            ip: count for ip, count in self.quarantine_alerts.items() if count != 1
        }
        if wrong_counts:
            violations.append(
                f"expected exactly one quarantine alert per host, got {wrong_counts}"
            )
        if self.detection_latency > DETECTION_LATENCY_CEILING:
            violations.append(
                f"detection took {self.detection_latency:.3f}s "
                f"(ceiling {DETECTION_LATENCY_CEILING:g}s)"
            )
        if self.clean_run_alerts or self.clean_run_quarantined:
            violations.append(
                f"control run without outbreak raised {self.clean_run_alerts} "
                f"alerts / {self.clean_run_quarantined} quarantines"
            )
        if not self.infected_contained:
            violations.append("a quarantined scanner still reaches the server")
        if not self.clean_unaffected:
            violations.append("quarantine broke a clean host's traffic")
        return violations

    @property
    def detection_latency(self) -> float:
        """Virtual seconds from outbreak start to the last quarantine."""
        return max(0.0, self.detection_time - self.outbreak_time)

    @property
    def detected(self) -> bool:
        """True when the outbreak was detected and contained cleanly."""
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        """Return a JSON-serialisable summary for the benchmark suite."""
        return {
            "infected": list(self.infected_ips),
            "quarantined": list(self.quarantined),
            "quarantine_alerts": dict(sorted(self.quarantine_alerts.items())),
            "spike_alerts": self.spike_alerts,
            "detection_latency_vsec": round(self.detection_latency, 4),
            "clean_run_alerts": self.clean_run_alerts,
            "infected_contained": self.infected_contained,
            "clean_unaffected": self.clean_unaffected,
            "telemetry_samples": self.telemetry_samples,
            "detected": self.detected,
            "violations": list(self.violations),
            "wall_seconds": round(self.wall_seconds, 3),
        }


class ConfickerTelemetryBench:
    """Detect and quarantine a scanning worm by telemetry alone."""

    def __init__(self, config: Optional[ConfickerTelemetryConfig] = None) -> None:
        self.config = config if config is not None else ConfickerTelemetryConfig()

    def _build_net(self, name: str) -> IdentPPClusterNetwork:
        cfg = self.config
        net = IdentPPClusterNetwork(
            name,
            shards=cfg.shards,
            policy_default_action="block",
            controller_config=cfg.controller_config(),
        )
        edge = net.add_switch("sw-edge")
        core = net.add_switch("sw-core")
        net.connect(edge, core)
        for index in range(cfg.clients):
            net.add_host(
                HostSpec(
                    name=f"client{index}",
                    ip=f"192.168.0.{10 + index}",
                    users={"alice": ("users", "staff")},
                ),
                switch=edge,
            )
        # Infected hosts look exactly like clients until they scan:
        # same daemon, same user database, same applications.  The
        # plane must tell them apart from behaviour, not labels.
        for index in range(cfg.infected):
            net.add_host(
                HostSpec(
                    name=f"infected{index}",
                    ip=f"192.168.0.{200 + index}",
                    users={"alice": ("users", "staff"), "victim": ("users",)},
                ),
                switch=edge,
            )
        server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=core)
        server.run_server("httpd", "root", 80)
        net.set_policy({"00-telemetry.control": CLUSTER_POLICY})
        return net

    def _drive(self, net: IdentPPClusterNetwork, *, outbreak: bool) -> None:
        """Run warmup traffic (and optionally the outbreak) to completion."""
        cfg = self.config
        sim = net.topology.sim
        total_ticks = int(
            (cfg.warmup_duration + cfg.settle) / cfg.warmup_interval
        )
        state = {"ticks": 0}

        def clean_tick() -> bool:
            state["ticks"] += 1
            client = net.host(f"client{state['ticks'] % cfg.clients}")
            client.open_flow("http", "alice", "192.168.1.1", 80)
            return state["ticks"] < total_ticks

        sim.schedule_repeating(cfg.warmup_interval, clean_tick, label="clean-traffic")

        if outbreak:
            all_ips = [f"192.168.0.{10 + i}" for i in range(cfg.clients)]
            all_ips += [f"192.168.0.{200 + i}" for i in range(cfg.infected)]
            all_ips.append("192.168.1.1")

            def start_outbreak() -> None:
                for index in range(cfg.infected):
                    scanner = f"infected{index}"
                    own_ip = f"192.168.0.{200 + index}"
                    targets = [ip for ip in all_ips if ip != own_ip]
                    for round_no in range(cfg.scan_rounds):
                        for pos, target in enumerate(targets):
                            sim.schedule(
                                round_no * cfg.scan_round_gap + pos * cfg.scan_spacing,
                                lambda s=scanner, d=target: net.host(s).open_flow(
                                    "conficker", "victim", d, 445
                                ),
                                label="scan",
                            )

            sim.schedule_at(cfg.warmup_duration, start_outbreak, label="outbreak")

        net.run(cfg.warmup_duration + cfg.settle)
        net.telemetry.stop()
        net.run()  # drain the queue completely

    def run(self) -> ConfickerTelemetryReport:
        """Run outbreak + control runs and return the gated report."""
        cfg = self.config
        wall_start = time.perf_counter()
        infected_ips = tuple(
            f"192.168.0.{200 + index}" for index in range(cfg.infected)
        )

        # --- outbreak run ----------------------------------------------------
        net = self._build_net("telemetry-conficker")
        plane = net.enable_telemetry(
            interval=cfg.telemetry_interval,
            fanout_threshold=cfg.fanout_threshold,
        )
        plane.start()
        self._drive(net, outbreak=True)

        quarantine_alerts: dict[str, int] = {}
        detection_time = 0.0
        for alert in plane.quarantine_alerts():
            quarantine_alerts[alert.source] = quarantine_alerts.get(alert.source, 0) + 1
            detection_time = max(detection_time, alert.time)

        # Containment: the scanner's fresh traffic must die in the
        # datapath while a clean client still reaches the server.
        contained = not net.send_flow(
            "infected0", "http", "alice", "192.168.1.1", 80
        ).delivered
        unaffected = net.send_flow(
            "client0", "http", "alice", "192.168.1.1", 80
        ).delivered

        # --- control run (no outbreak: must stay silent) ---------------------
        control = self._build_net("telemetry-clean")
        control_plane = control.enable_telemetry(
            interval=cfg.telemetry_interval,
            fanout_threshold=cfg.fanout_threshold,
        )
        control_plane.start()
        self._drive(control, outbreak=False)

        return ConfickerTelemetryReport(
            infected_ips=infected_ips,
            quarantined=tuple(sorted(plane.quarantined)),
            quarantine_alerts=quarantine_alerts,
            spike_alerts=len(plane.alerts("spike")),
            outbreak_time=cfg.warmup_duration,
            detection_time=detection_time,
            clean_run_alerts=len(control_plane.alerts()),
            clean_run_quarantined=len(control_plane.quarantined),
            infected_contained=contained,
            clean_unaffected=unaffected,
            telemetry_samples=plane.pipeline.samples,
            wall_seconds=time.perf_counter() - wall_start,
        )


# ----------------------------------------------------------------------
# Overhead bench
# ----------------------------------------------------------------------


@dataclass
class TelemetryOverheadConfig:
    """Tunables of the sampling-cost measurement."""

    shards: int = 4
    clients: int = 8
    flows: int = 800
    policy_eval_delay: float = 500e-6
    #: The production default sampling interval — the overhead gate
    #: measures the shipped configuration, not a stress interval.
    telemetry_interval: float = 0.05
    horizon: float = 1.0
    repeats: int = 3

    def controller_config(self) -> ControllerConfig:
        """Return the per-replica config (the scale bench's shape)."""
        return ControllerConfig(
            serialize_decisions=True,
            policy_eval_delay=self.policy_eval_delay,
            pending_deadline=60.0,
        )


@dataclass
class TelemetryOverheadReport:
    """What sampling cost on the cluster scale cell.

    ``overhead_pct`` — the gated number — is the CPU the plane's sweeps
    consumed as a percentage of the rest of the run, measured *inside*
    one run by timing every ``pipeline.sample`` call.  An A/B delta of
    two separate runs would be the classic definition, but on this cell
    the true sampling cost (~0.2 %) is an order of magnitude below
    run-to-run scheduler and allocator noise (±5 %), so a gate on the
    delta would flap; the in-run measurement is reported alongside the
    informational ``ab_delta_pct`` instead.
    """

    flows: int
    repeats: int
    baseline_seconds: float
    telemetry_seconds: float
    sampling_seconds: float
    samples: int
    decided_baseline: int
    decided_telemetry: int
    wall_seconds: float = 0.0
    # Computed from the fields above, never passed in.
    violations: list[str] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.violations = self._compute_violations()

    def _compute_violations(self) -> list[str]:
        violations = []
        if self.decided_baseline != self.decided_telemetry:
            violations.append(
                "sampling changed the workload: "
                f"{self.decided_baseline} vs {self.decided_telemetry} decisions"
            )
        if self.overhead_pct >= TELEMETRY_OVERHEAD_CEILING:
            violations.append(
                f"telemetry overhead {self.overhead_pct:.2f}% breaches the "
                f"{TELEMETRY_OVERHEAD_CEILING:g}% ceiling"
            )
        return violations

    @property
    def overhead_pct(self) -> float:
        """CPU spent sampling, percent of the non-sampling run cost."""
        useful = self.telemetry_seconds - self.sampling_seconds
        if useful <= 0:
            return 0.0
        return self.sampling_seconds / useful * 100.0

    @property
    def ab_delta_pct(self) -> float:
        """Informational: wall-clock delta of the two runs (noisy)."""
        if not self.baseline_seconds:
            return 0.0
        return (
            (self.telemetry_seconds - self.baseline_seconds)
            / self.baseline_seconds
            * 100.0
        )

    @property
    def within_budget(self) -> bool:
        """True when the overhead gate passes (acceptance gate)."""
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        """Return a JSON-serialisable summary for the benchmark suite."""
        return {
            "flows": self.flows,
            "repeats": self.repeats,
            "baseline_seconds": round(self.baseline_seconds, 4),
            "telemetry_seconds": round(self.telemetry_seconds, 4),
            "sampling_seconds": round(self.sampling_seconds, 4),
            "overhead_pct": round(self.overhead_pct, 2),
            "ab_delta_pct": round(self.ab_delta_pct, 2),
            "samples": self.samples,
            "decided": self.decided_baseline,
            "within_budget": self.within_budget,
            "violations": list(self.violations),
            "wall_seconds": round(self.wall_seconds, 3),
        }


class TelemetryOverheadBench:
    """Measure what the sampling plane costs on the cluster scale cell."""

    def __init__(self, config: Optional[TelemetryOverheadConfig] = None) -> None:
        self.config = config if config is not None else TelemetryOverheadConfig()

    def _run_once(self, *, telemetry: bool) -> tuple[float, float, int, int]:
        """One cell run; returns (wall, sampling wall, decisions, samples)."""
        cfg = self.config
        net = _build_cluster_net(
            "telemetry-overhead",
            shards=cfg.shards,
            clients=cfg.clients,
            config=cfg.controller_config(),
        )
        plane = None
        sampling = [0.0]
        if telemetry:
            # Detection stays on (that is the production configuration);
            # only auto-quarantine is disarmed so an aggressive burst
            # cannot rewrite the workload mid-measurement.
            plane = net.enable_telemetry(
                interval=cfg.telemetry_interval, auto_quarantine=False
            )
            # Time every sweep from out here: the plane itself must stay
            # deterministic (lint R1 bans wall-clock reads in src/repro
            # outside workloads), so the bench wraps pipeline.sample —
            # the sampler tick resolves it per call, so this sees every
            # sweep.
            inner = plane.pipeline.sample

            def timed_sample(now: float) -> None:
                begin = time.perf_counter()
                inner(now)
                sampling[0] += time.perf_counter() - begin

            plane.pipeline.sample = timed_sample  # type: ignore[method-assign]
        start = time.perf_counter()
        if plane is not None:
            plane.start()
        for index in range(cfg.flows):
            client = net.host(f"client{index % cfg.clients}")
            client.open_flow("http", "alice", "192.168.1.1", 80)
        net.run(cfg.horizon)
        if plane is not None:
            plane.stop()
        net.run()  # drain
        elapsed = time.perf_counter() - start
        decided = net.cluster.decided_total()
        samples = plane.pipeline.samples if plane is not None else 0
        return elapsed, sampling[0], decided, samples

    def run(self) -> TelemetryOverheadReport:
        """Run both variants ``repeats`` times, interleaved; keep minima."""
        cfg = self.config
        wall_start = time.perf_counter()
        baseline = telemetry = float("inf")
        sampling = 0.0
        decided_base = decided_tel = samples = 0
        for _ in range(cfg.repeats):
            elapsed, _, decided, _ = self._run_once(telemetry=False)
            if elapsed < baseline:
                baseline, decided_base = elapsed, decided
            elapsed, sampled_s, decided, sampled = self._run_once(telemetry=True)
            if elapsed < telemetry:
                telemetry, sampling = elapsed, sampled_s
                decided_tel, samples = decided, sampled
        return TelemetryOverheadReport(
            flows=cfg.flows,
            repeats=cfg.repeats,
            baseline_seconds=baseline,
            telemetry_seconds=telemetry,
            sampling_seconds=sampling,
            samples=samples,
            decided_baseline=decided_base,
            decided_telemetry=decided_tel,
            wall_seconds=time.perf_counter() - wall_start,
        )


def _print_report(payload: dict[str, object]) -> None:
    width = max(len(key) for key in payload)
    for key, value in payload.items():
        print(f"  {key:<{width}}  {value}")


def main() -> int:
    """``make soak_telemetry`` entry point: detection + overhead, gated."""
    print("running telemetry-driven conficker detection (no scripted compromise) ...")
    detection = ConfickerTelemetryBench().run()
    _print_report(detection.as_dict())

    print("running telemetry overhead bench (sampled vs unsampled cell) ...")
    overhead = TelemetryOverheadBench().run()
    _print_report(overhead.as_dict())

    ok = True
    if not detection.detected:
        ok = False
        for violation in detection.violations:
            print(f"FAIL: {violation}")
    if not overhead.within_budget:
        ok = False
        for violation in overhead.violations:
            print(f"FAIL: {violation}")
    if ok:
        print(
            "telemetry soak ok: outbreak detected and quarantined by telemetry "
            "alone, sampling within the overhead budget"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
