"""Deterministic traffic generators.

The benchmarks need repeatable flow mixes: a population of candidate
flows (who talks to whom, with which application) and a draw sequence
with either uniform or Zipf popularity (flow locality is what makes the
switch flow-table cache effective, experiment E11).  Everything is
seeded so two runs of a benchmark see the same traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.exceptions import WorkloadError
from repro.identpp.flowspec import FlowSpec
from repro.netsim.addresses import IPv4Address


@dataclass(frozen=True)
class FlowTemplate:
    """One candidate flow in the population: who talks to whom, and how."""

    src_host: str
    dst_host: str
    src_ip: IPv4Address
    dst_ip: IPv4Address
    dst_port: int
    app_name: str
    user_name: str
    proto: str = "tcp"

    def flow(self, src_port: int) -> FlowSpec:
        """Materialise the template into a concrete 5-tuple."""
        return FlowSpec(
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            proto=self.proto,
            src_port=src_port,
            dst_port=self.dst_port,
        )


def zipf_weights(count: int, skew: float = 1.0) -> list[float]:
    """Return normalised Zipf(``skew``) weights for ``count`` items."""
    if count <= 0:
        raise WorkloadError("zipf_weights needs a positive count")
    raw = [1.0 / ((rank + 1) ** skew) for rank in range(count)]
    total = sum(raw)
    return [value / total for value in raw]


class FlowGenerator:
    """Draws flows from a template population, uniformly or Zipf-skewed."""

    def __init__(
        self,
        templates: Sequence[FlowTemplate],
        *,
        seed: int = 0,
        zipf_skew: Optional[float] = None,
        ephemeral_base: int = 40000,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not templates:
            raise WorkloadError("FlowGenerator needs at least one template")
        self.templates = list(templates)
        #: The seed behind every draw this generator makes, surfaced so
        #: benchmark reports can record it next to their results (a
        #: BENCH_results.json entry without its seed is unreproducible).
        #: ``None`` when an externally-seeded ``rng`` was injected.
        self.seed: Optional[int] = None if rng is not None else seed
        self._rng = rng if rng is not None else random.Random(seed)
        self._weights = zipf_weights(len(self.templates), zipf_skew) if zipf_skew else None
        self._next_port = ephemeral_base
        self.draws = 0

    def _allocate_port(self, reuse: bool) -> int:
        if reuse:
            # Re-using the source port keeps the 5-tuple identical so the
            # switch flow-table cache can hit (established-flow traffic).
            return self._next_port
        self._next_port += 1
        if self._next_port >= 65000:
            self._next_port = 40000
        return self._next_port

    def draw_template(self) -> FlowTemplate:
        """Pick one template according to the configured popularity."""
        self.draws += 1
        if self._weights is None:
            return self._rng.choice(self.templates)
        return self._rng.choices(self.templates, weights=self._weights, k=1)[0]

    def draw_flow(self, *, new_connection: bool = True) -> tuple[FlowTemplate, FlowSpec]:
        """Draw a template and materialise a flow from it."""
        template = self.draw_template()
        port = self._allocate_port(reuse=not new_connection)
        return template, template.flow(port)

    def draw_batch(
        self, count: int, *, new_connection_probability: float = 1.0
    ) -> list[tuple[FlowTemplate, FlowSpec]]:
        """Draw ``count`` flows at once (feeds the batch decision APIs).

        Same draw semantics as :meth:`sequence`, materialised as a list so
        callers can hand the whole batch to
        :meth:`repro.core.policy_engine.PolicyEngine.decide_batch` /
        :meth:`repro.pf.evaluator.PolicyEvaluator.evaluate_batch`.
        """
        return list(self.sequence(count, new_connection_probability=new_connection_probability))

    def batches(
        self,
        total: int,
        batch_size: int,
        *,
        new_connection_probability: float = 1.0,
    ) -> Iterator[list[tuple[FlowTemplate, FlowSpec]]]:
        """Yield ``total`` draws grouped into lists of up to ``batch_size``."""
        if batch_size <= 0:
            raise WorkloadError("batch_size must be positive")
        remaining = total
        while remaining > 0:
            size = min(batch_size, remaining)
            yield self.draw_batch(size, new_connection_probability=new_connection_probability)
            remaining -= size

    def sequence(self, count: int, *, new_connection_probability: float = 1.0) -> Iterator[tuple[FlowTemplate, FlowSpec]]:
        """Yield ``count`` draws; with probability ``1 - p`` a draw reuses the previous port.

        Low ``new_connection_probability`` produces packet trains inside
        established flows, which is what makes flow-table caching pay off.
        """
        last: dict[FlowTemplate, FlowSpec] = {}
        for _ in range(count):
            template = self.draw_template()
            if template in last and self._rng.random() > new_connection_probability:
                yield template, last[template]
                continue
            flow = template.flow(self._allocate_port(reuse=False))
            last[template] = flow
            yield template, flow
