"""Query-heavy workloads: the endpoint query cache under hot-server load.

§2 step 3 — the controller "requests additional information from both
the source and the destination end-hosts" — dominates flow-setup cost,
and §3.5's "simple userspace ident++ daemon" is a serial process: a
flash crowd of flows toward one popular server queues its queries
behind each other.  The :class:`~repro.identpp.engine.QueryEngine`
exists to take that cost off the punt path; this module proves it and
gates it, runnable standalone (``make soak_queries``) and recorded in
``BENCH_results.json`` as ``query_cache_bench``:

* **Hot-server scale** — the throughput claim.  ``flows_per_server``
  concurrent flows per hot server (the servers' daemons serialized) run
  once with the cache disabled and once enabled.  Uncached, every punt
  re-interrogates the server daemon and the makespan grows by one
  ``processing_delay`` per flow; cached, the first punt's query is
  shared by everyone (in-flight coalescing) and the makespan collapses
  to one round trip.  Gate: ≥ ``QUERY_SPEEDUP_FLOOR``x decided-flows
  per simulated second.

* **Legacy negative cache** — the §4 "Incremental Benefit" claim.  Two
  waves of flows toward a daemon-less host: uncached every flow burns
  the full query timeout; cached the first wave shares one timeout and
  the second wave hits the negative cache.  Gate: exactly one real
  timeout in the cached run.

* **Invalidation correctness** — the staleness claim.  A cached answer
  must die the moment the daemon publishes new runtime keys, the
  host's socket table changes owner, the host is compromised, or the
  TTL lapses — each event must force a re-query (observed on the
  daemon's ``queries_answered`` counter), and a socket-owner change
  must flip the *decision* (the old tenant's answer may not admit the
  new tenant's traffic).

* **Cluster** — each shard runs its own engine; a wave split across a
  2-shard cluster costs the hot daemon one answer per deciding shard,
  not one per flow.

* **Flash crowd (push plane)** — the PR 10 claim.  The same crowd runs
  once per identity plane.  On the pull plane every TTL lapse costs a
  fresh round trip; on the push plane the hot server is promoted to a
  standing subscription, steady-state punts are answered from the
  resident store with **zero** daemon queries, and after an identity
  publish the delta-driven refresh converges faster than the pull
  plane's invalidate-then-requery round trip.

Run standalone::

    python -m repro.workloads.queryload          # every phase
    python -m repro.workloads.queryload push     # flash-crowd gate only
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPClusterNetwork, IdentPPNetwork
from repro.netsim.statistics import RateCounter

#: Web traffic must prove the server really is httpd (a dst-side
#: answer); port 8080 is the legacy carve-out that needs no dst info
#: (§4 — daemon-less hosts can still be served by coarser rules).
QUERYLOAD_POLICY = (
    "block all\n"
    "pass from any to any port 80 with eq(@dst[name], httpd)\n"
    "pass from any to any port 8080\n"
)

#: Acceptance floor for cached-vs-uncached decided-flows/vsec on the
#: hot-server workload — the single source ``make soak_queries`` and
#: ``make bench`` both gate on.
QUERY_SPEEDUP_FLOOR = 5.0


def flash_violations(flash: dict) -> list[str]:
    """Apply the PR 10 flash-crowd gates to one phase result.

    Shared by the full soak report and the push-only entry point
    (``make soak_push``) so the gate cannot fork.
    """
    pull, push = flash["pull"], flash["push"]
    violations = []
    if push["subscriptions"] < 1:
        violations.append(
            "flash crowd never promoted the hot server to a standing subscription"
        )
    if push["steady_queries"] != 0:
        violations.append(
            f"steady-state punts issued {push['steady_queries']} daemon queries "
            "on the push plane (subscribed hosts must issue zero)"
        )
    if push["deltas_applied"] < 1:
        violations.append(
            "the identity publish produced no delta on the push plane"
        )
    if push["duplicate_deltas"]:
        violations.append(
            f"{push['duplicate_deltas']} duplicate deltas applied on the push plane"
        )
    if push["convergence"] >= pull["convergence"]:
        violations.append(
            f"push convergence {push['convergence']:.6f}vs not better than the "
            f"pull TTL path's {pull['convergence']:.6f}vs"
        )
    return violations


@dataclass
class QueryLoadConfig:
    """Tunables of the query-heavy soak."""

    clients: int = 10
    hot_servers: int = 2
    flows_per_server: int = 100
    #: Serial occupancy of a hot server's daemon per answer (§3.5's
    #: userspace daemon is single-threaded).
    daemon_processing: float = 500e-6
    client_link_latency: float = 50e-6
    #: Edge→core and core→server hops: the round trip the cache saves.
    core_link_latency: float = 1e-3
    server_link_latency: float = 1e-3
    cache_ttl: float = 30.0
    legacy_flows_per_wave: int = 20
    legacy_wave_gap: float = 0.2
    #: Short TTL used by the expiry probe.
    ttl_probe: float = 0.25
    cluster_shards: int = 2
    #: Flash-crowd phase: flows per wave, steady waves after the warm
    #: one, the gap between waves (longer than ``ttl_probe`` so the pull
    #: plane pays a TTL lapse per wave), and how long after an identity
    #: publish the convergence probe punts.
    flash_flows: int = 30
    flash_waves: int = 3
    flash_wave_gap: float = 0.5
    convergence_probe_delay: float = 0.05

    def controller_config(
        self, *, cache_ttl: float, identity_plane: str = "pull"
    ) -> ControllerConfig:
        """Return the controller config for one phase run."""
        return ControllerConfig(
            query_cache_ttl=cache_ttl,
            identity_plane=identity_plane,
            push_promote_punts=2,
        )


@dataclass
class QueryLoadReport:
    """What the query soak observed, with the acceptance gates applied."""

    flows_hot: int
    uncached_decided_per_vsec: float
    cached_decided_per_vsec: float
    uncached_makespan: float
    cached_makespan: float
    engine_stats: dict
    hot_daemon_answers_uncached: int
    hot_daemon_answers_cached: int
    legacy_flows: int
    legacy_uncached_timeouts: int
    legacy_cached_timeouts: int
    legacy_negative_hits: int
    legacy_coalesced: int
    cache_hit_before_events: bool
    requery_after_publish: bool
    requery_after_socket_change: bool
    blocked_after_socket_change: bool
    requery_after_compromise: bool
    requery_after_ttl: bool
    cluster_flows: int
    cluster_shards_deciding: int
    cluster_daemon_answers: int
    cluster_per_shard_lookups: dict[str, int]
    flash_flows: int
    pull_steady_queries: int
    push_steady_queries: int
    push_subscriptions: int
    push_resident_hits: int
    push_deltas_applied: int
    push_duplicate_deltas: int
    pull_convergence: float
    push_convergence: float
    wall_seconds: float = 0.0
    # Computed from the fields above, never passed in.
    violations: list[str] = field(init=False, default_factory=list)

    @property
    def speedup(self) -> float:
        """Cached over uncached decided-flows per simulated second."""
        if not self.uncached_decided_per_vsec:
            return 0.0
        return self.cached_decided_per_vsec / self.uncached_decided_per_vsec

    def __post_init__(self) -> None:
        self.violations = self._compute_violations()

    def _compute_violations(self) -> list[str]:
        violations = []
        if self.speedup < QUERY_SPEEDUP_FLOOR:
            violations.append(
                f"hot-server speedup {self.speedup:.2f}x below the "
                f"{QUERY_SPEEDUP_FLOOR:g}x floor"
            )
        if self.legacy_cached_timeouts != 1:
            violations.append(
                f"legacy host cost {self.legacy_cached_timeouts} real timeouts "
                "with the negative cache on (want exactly 1 per TTL)"
            )
        if self.legacy_negative_hits < self.legacy_flows // 2:
            violations.append(
                f"only {self.legacy_negative_hits} negative-cache hits for "
                f"{self.legacy_flows // 2} second-wave legacy flows"
            )
        if not self.cache_hit_before_events:
            violations.append("repeat flow re-queried the daemon despite a warm cache")
        if not self.requery_after_publish:
            violations.append("runtime-key publish did not force a re-query")
        if not self.requery_after_socket_change:
            violations.append("socket-table owner change did not force a re-query")
        if not self.blocked_after_socket_change:
            violations.append(
                "stale cached answer admitted traffic after the socket owner changed"
            )
        if not self.requery_after_compromise:
            violations.append("host compromise did not force a re-query")
        if not self.requery_after_ttl:
            violations.append("TTL expiry did not force a re-query")
        if self.cluster_daemon_answers != self.cluster_shards_deciding:
            violations.append(
                f"cluster run cost the hot daemon {self.cluster_daemon_answers} "
                f"answers for {self.cluster_shards_deciding} deciding shards "
                "(want one per shard engine)"
            )
        violations.extend(flash_violations({
            "pull": {
                "steady_queries": self.pull_steady_queries,
                "convergence": self.pull_convergence,
            },
            "push": {
                "steady_queries": self.push_steady_queries,
                "convergence": self.push_convergence,
                "subscriptions": self.push_subscriptions,
                "deltas_applied": self.push_deltas_applied,
                "duplicate_deltas": self.push_duplicate_deltas,
            },
        }))
        return violations

    @property
    def gates_ok(self) -> bool:
        """True when every acceptance gate held."""
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        """Return a JSON-serialisable summary for the benchmark suite."""
        return {
            "flows_hot": self.flows_hot,
            "uncached_decided_per_vsec": round(self.uncached_decided_per_vsec, 1),
            "cached_decided_per_vsec": round(self.cached_decided_per_vsec, 1),
            "uncached_makespan_vsec": round(self.uncached_makespan, 6),
            "cached_makespan_vsec": round(self.cached_makespan, 6),
            "speedup": round(self.speedup, 2),
            "hot_daemon_answers_uncached": self.hot_daemon_answers_uncached,
            "hot_daemon_answers_cached": self.hot_daemon_answers_cached,
            "engine": {
                key: self.engine_stats.get(key)
                for key in ("lookups", "hits", "misses", "coalesced",
                            "negative_hits", "hit_rate", "coalesce_rate")
            },
            "legacy_flows": self.legacy_flows,
            "legacy_uncached_timeouts": self.legacy_uncached_timeouts,
            "legacy_cached_timeouts": self.legacy_cached_timeouts,
            "legacy_negative_hits": self.legacy_negative_hits,
            "legacy_coalesced": self.legacy_coalesced,
            "invalidation": {
                "cache_hit_before_events": self.cache_hit_before_events,
                "requery_after_publish": self.requery_after_publish,
                "requery_after_socket_change": self.requery_after_socket_change,
                "blocked_after_socket_change": self.blocked_after_socket_change,
                "requery_after_compromise": self.requery_after_compromise,
                "requery_after_ttl": self.requery_after_ttl,
            },
            "cluster": {
                "flows": self.cluster_flows,
                "shards_deciding": self.cluster_shards_deciding,
                "daemon_answers": self.cluster_daemon_answers,
                "per_shard_lookups": dict(self.cluster_per_shard_lookups),
            },
            "push_plane": {
                "flows": self.flash_flows,
                "pull_steady_queries": self.pull_steady_queries,
                "push_steady_queries": self.push_steady_queries,
                "push_subscriptions": self.push_subscriptions,
                "push_resident_hits": self.push_resident_hits,
                "push_deltas_applied": self.push_deltas_applied,
                "push_duplicate_deltas": self.push_duplicate_deltas,
                "pull_convergence_vsec": round(self.pull_convergence, 6),
                "push_convergence_vsec": round(self.push_convergence, 6),
                "zero_query_ok": (
                    self.push_steady_queries == 0 and self.push_subscriptions >= 1
                ),
                "convergence_ok": self.push_convergence < self.pull_convergence,
            },
            "gates_ok": self.gates_ok,
            "violations": list(self.violations),
            "wall_seconds": round(self.wall_seconds, 3),
        }


class QueryLoadBench:
    """Run every query-cache phase and report against the gates."""

    def __init__(self, config: Optional[QueryLoadConfig] = None) -> None:
        self.config = config if config is not None else QueryLoadConfig()

    # ------------------------------------------------------------------
    # Fabric builders
    # ------------------------------------------------------------------

    def _build_net(
        self,
        name: str,
        *,
        cache_ttl: float,
        identity_plane: str = "pull",
        legacy_server: bool = False,
    ) -> IdentPPNetwork:
        """Clients — sw-edge — sw-core — hot servers (+ optional legacy)."""
        cfg = self.config
        net = IdentPPNetwork(
            name,
            policy_default_action="block",
            controller_config=cfg.controller_config(
                cache_ttl=cache_ttl, identity_plane=identity_plane,
            ),
        )
        self._populate(net, legacy_server=legacy_server)
        return net

    def _populate(self, net: IdentPPNetwork, *, legacy_server: bool = False) -> None:
        cfg = self.config
        edge = net.add_switch("sw-edge")
        core = net.add_switch("sw-core")
        net.connect(edge, core, latency=cfg.core_link_latency)
        for index in range(cfg.clients):
            net.add_host(
                HostSpec(
                    name=f"client{index}",
                    ip=f"192.168.0.{10 + index}",
                    users={"alice": ("users", "staff")},
                ),
                switch=edge,
                link_latency=cfg.client_link_latency,
            )
        for index in range(cfg.hot_servers):
            server = net.add_host(
                HostSpec(name=f"server{index}", ip=f"192.168.1.{1 + index}"),
                switch=core,
                link_latency=cfg.server_link_latency,
            )
            server.run_server("httpd", "root", 80)
            # The paper's "simple userspace daemon" answers serially:
            # this is the contended resource the cache takes off the
            # punt path.
            net.daemon(f"server{index}").serialize = True
            net.daemon(f"server{index}").processing_delay = cfg.daemon_processing
        if legacy_server:
            net.add_host(
                HostSpec(name="legacy", ip="192.168.2.1", run_daemon=False),
                switch=core,
                link_latency=cfg.server_link_latency,
            )
        net.set_policy({"00-queryload.control": QUERYLOAD_POLICY})

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _hot_wave(self, net: IdentPPNetwork) -> tuple[RateCounter, float]:
        """Inject the hot-server flash crowd; return (decision rate, makespan)."""
        cfg = self.config
        for index in range(cfg.flows_per_server * cfg.hot_servers):
            client = net.host(f"client{index % cfg.clients}")
            client.open_flow(
                "http", "alice", f"192.168.1.{1 + index % cfg.hot_servers}", 80
            )
        net.run()
        rate = RateCounter(f"{net.name}.decisions")
        makespan = 0.0
        for record in net.controller.audit.records():
            if not record.cached:
                rate.record(record.time)
                makespan = max(makespan, record.time)
        return rate, makespan

    def _run_hot_phase(self) -> dict:
        cfg = self.config
        out: dict = {"flows": cfg.flows_per_server * cfg.hot_servers}
        for label, ttl in (("uncached", 0.0), ("cached", cfg.cache_ttl)):
            net = self._build_net(f"queryload-{label}", cache_ttl=ttl)
            rate, makespan = self._hot_wave(net)
            out[label] = {
                "decided": int(rate.total),
                "makespan": makespan,
                "per_vsec": rate.mean_rate(makespan),
                "daemon_answers": int(
                    sum(net.daemon(f"server{i}").queries_answered.value
                        for i in range(cfg.hot_servers))
                ),
                "engine_stats": net.controller.query_engine.stats(),
            }
        return out

    def _run_legacy_phase(self) -> dict:
        cfg = self.config
        out: dict = {"flows": 2 * cfg.legacy_flows_per_wave}
        for label, ttl in (("uncached", 0.0), ("cached", cfg.cache_ttl)):
            net = self._build_net(f"queryload-legacy-{label}", cache_ttl=ttl,
                                  legacy_server=True)
            sim = net.topology.sim

            def wave() -> None:
                for index in range(cfg.legacy_flows_per_wave):
                    client = net.host(f"client{index % cfg.clients}")
                    client.open_flow("http", "alice", "192.168.2.1", 8080)

            wave()
            sim.schedule_at(cfg.legacy_wave_gap, wave)
            net.run()
            engine = net.controller.query_engine
            out[label] = {
                "timeouts": int(net.controller.query_client.queries_timed_out.value),
                "negative_hits": engine.negative_hits,
                "coalesced": engine.coalesced,
                "decided": sum(
                    1 for r in net.controller.audit.records() if not r.cached
                ),
            }
        return out

    def _run_invalidation_phase(self) -> dict:
        """The correctness gate: every staleness event must force a re-query."""
        cfg = self.config
        net = self._build_net("queryload-invalidate", cache_ttl=cfg.cache_ttl)
        daemon = net.daemon("server0")
        daemon.serialize = False  # latency is irrelevant here
        server = net.host("server0")
        answered = daemon.queries_answered

        httpd_process, httpd_socket = None, None
        for socket in server.sockets.sockets():
            if socket.is_listening and socket.local_port == 80:
                httpd_process, httpd_socket = socket.process, socket
        result: dict = {}

        first = net.send_flow("client0", "http", "alice", "192.168.1.1", 80)
        after_first = int(answered.value)
        second = net.send_flow("client1", "http", "alice", "192.168.1.1", 80)
        result["cache_hit_before_events"] = (
            first.decision_action == "pass"
            and second.decision_action == "pass"
            and int(answered.value) == after_first
        )

        # (a) The application publishes new runtime keys.
        daemon.runtime.publish_for_process(httpd_process, {"patched": "yes"})
        net.send_flow("client2", "http", "alice", "192.168.1.1", 80)
        after_publish = int(answered.value)
        result["requery_after_publish"] = after_publish > after_first

        # (b) The socket's owner changes: httpd is replaced by telnet on
        # the same port.  The stale answer (name=httpd) would wrongly
        # admit the new tenant's traffic.
        server.sockets.close(httpd_socket)
        server.run_server("telnet", "root", 80)
        retenant = net.send_flow("client3", "http", "alice", "192.168.1.1", 80)
        after_socket = int(answered.value)
        result["requery_after_socket_change"] = after_socket > after_publish
        result["blocked_after_socket_change"] = retenant.decision_action == "block"

        # (c) Host compromise (the §5.3 attacker controls the daemon).
        server.mark_compromised()
        daemon.spoof_responses({"name": "httpd"})
        net.send_flow("client4", "http", "alice", "192.168.1.1", 80)
        result["requery_after_compromise"] = int(answered.value) > after_socket

        # (d) TTL expiry on a separate short-TTL network.  Flows are
        # driven with open_flow + run-to-idle (not send_flow, whose
        # settle window would advance the clock past the short TTL).
        ttl_net = self._build_net("queryload-ttl", cache_ttl=cfg.ttl_probe)
        ttl_daemon = ttl_net.daemon("server0")
        ttl_daemon.serialize = False
        ttl_net.host("client0").open_flow("http", "alice", "192.168.1.1", 80)
        ttl_net.run()
        baseline = int(ttl_daemon.queries_answered.value)
        ttl_net.host("client1").open_flow("http", "alice", "192.168.1.1", 80)
        ttl_net.run()
        hit_within_ttl = int(ttl_daemon.queries_answered.value) == baseline
        ttl_net.run(duration=2 * cfg.ttl_probe)
        ttl_net.host("client2").open_flow("http", "alice", "192.168.1.1", 80)
        ttl_net.run()
        result["requery_after_ttl"] = (
            hit_within_ttl and int(ttl_daemon.queries_answered.value) > baseline
        )
        return result

    def _run_cluster_phase(self) -> dict:
        """Each shard runs its own engine: one daemon answer per deciding shard."""
        cfg = self.config
        net = IdentPPClusterNetwork(
            "queryload-cluster",
            shards=cfg.cluster_shards,
            policy_default_action="block",
            controller_config=cfg.controller_config(cache_ttl=cfg.cache_ttl),
        )
        self._populate(net)
        flows = cfg.flows_per_server
        for index in range(flows):
            client = net.host(f"client{index % cfg.clients}")
            client.open_flow("http", "alice", "192.168.1.1", 80)
        net.run()
        daemon = net.daemon("server0")
        per_shard_lookups = {
            name: controller.query_engine.lookups()
            for name, controller in net.cluster.replicas.items()
        }
        shards_deciding = sum(
            1 for controller in net.cluster.replicas.values()
            if any(not r.cached for r in controller.audit.records())
        )
        return {
            "flows": flows,
            "shards_deciding": shards_deciding,
            "daemon_answers": int(daemon.queries_answered.value),
            "per_shard_lookups": per_shard_lookups,
        }

    def _run_flash_phase(self) -> dict:
        """A flash crowd on both identity planes: steady state + convergence.

        The same crowd (one warm wave, then ``flash_waves`` steady waves
        spaced beyond the TTL) runs once per plane.  Afterwards the hot
        daemon publishes new runtime keys and a single probe flow punts
        ``convergence_probe_delay`` later: its decision latency is the
        plane's convergence cost after an identity change.
        """
        cfg = self.config
        out: dict = {"flows": cfg.flash_flows * (1 + cfg.flash_waves)}
        for plane in ("pull", "push"):
            net = self._build_net(
                f"queryload-flash-{plane}",
                cache_ttl=cfg.ttl_probe, identity_plane=plane,
            )
            sim = net.topology.sim
            daemon = net.daemon("server0")
            engine = net.controller.query_engine

            def wave() -> None:
                for index in range(cfg.flash_flows):
                    client = net.host(f"client{index % cfg.clients}")
                    client.open_flow("http", "alice", "192.168.1.1", 80)

            wave()  # warm wave: promotes the hot server on the push plane
            net.run()
            warm_answers = int(daemon.queries_answered.value)
            for _ in range(cfg.flash_waves):
                sim.schedule_at(sim.now + cfg.flash_wave_gap, wave,
                                label="queryload.flash_wave")
                net.run()
            steady_queries = int(daemon.queries_answered.value) - warm_answers

            # Identity change: publish new runtime keys for httpd, then
            # punt one probe flow and time its verdict.
            server = net.host("server0")
            httpd_process = next(
                socket.process for socket in server.sockets.sockets()
                if socket.is_listening and socket.local_port == 80
            )
            t_pub = sim.now + 0.05
            sim.schedule_at(t_pub, daemon.runtime.publish_for_process,
                            httpd_process, {"patched": "yes"},
                            label="queryload.flash_publish")
            probe_at = t_pub + cfg.convergence_probe_delay
            probe_client = net.host("client0")
            sim.schedule_at(probe_at, probe_client.open_flow,
                            "http", "alice", "192.168.1.1", 80,
                            label="queryload.flash_probe")
            net.run()
            probe = next(
                record for record in net.controller.audit.records()
                if record.time >= probe_at and not record.cached
            )
            stats = engine.stats()
            out[plane] = {
                "steady_queries": steady_queries,
                "convergence": probe.time - probe_at,
                "subscriptions": engine.subscription_count(),
                "resident_hits": int(stats.get("resident_hits", 0)),
                "deltas_applied": int(stats.get("deltas_applied", 0)),
                "duplicate_deltas": int(stats.get("duplicate_deltas", 0)),
            }
        return out

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run_flash(self) -> tuple[dict, list[str]]:
        """Run only the flash-crowd phase; return (result, violations)."""
        flash = self._run_flash_phase()
        return flash, flash_violations(flash)

    def run(self) -> QueryLoadReport:
        """Run all five phases and return the gated report."""
        wall_start = time.perf_counter()
        hot = self._run_hot_phase()
        legacy = self._run_legacy_phase()
        invalidation = self._run_invalidation_phase()
        cluster = self._run_cluster_phase()
        flash = self._run_flash_phase()
        return QueryLoadReport(
            flows_hot=hot["flows"],
            uncached_decided_per_vsec=hot["uncached"]["per_vsec"],
            cached_decided_per_vsec=hot["cached"]["per_vsec"],
            uncached_makespan=hot["uncached"]["makespan"],
            cached_makespan=hot["cached"]["makespan"],
            engine_stats=hot["cached"]["engine_stats"],
            hot_daemon_answers_uncached=hot["uncached"]["daemon_answers"],
            hot_daemon_answers_cached=hot["cached"]["daemon_answers"],
            legacy_flows=legacy["flows"],
            legacy_uncached_timeouts=legacy["uncached"]["timeouts"],
            legacy_cached_timeouts=legacy["cached"]["timeouts"],
            legacy_negative_hits=legacy["cached"]["negative_hits"],
            legacy_coalesced=legacy["cached"]["coalesced"],
            cache_hit_before_events=invalidation["cache_hit_before_events"],
            requery_after_publish=invalidation["requery_after_publish"],
            requery_after_socket_change=invalidation["requery_after_socket_change"],
            blocked_after_socket_change=invalidation["blocked_after_socket_change"],
            requery_after_compromise=invalidation["requery_after_compromise"],
            requery_after_ttl=invalidation["requery_after_ttl"],
            cluster_flows=cluster["flows"],
            cluster_shards_deciding=cluster["shards_deciding"],
            cluster_daemon_answers=cluster["daemon_answers"],
            cluster_per_shard_lookups=cluster["per_shard_lookups"],
            flash_flows=flash["flows"],
            pull_steady_queries=flash["pull"]["steady_queries"],
            push_steady_queries=flash["push"]["steady_queries"],
            push_subscriptions=flash["push"]["subscriptions"],
            push_resident_hits=flash["push"]["resident_hits"],
            push_deltas_applied=flash["push"]["deltas_applied"],
            push_duplicate_deltas=flash["push"]["duplicate_deltas"],
            pull_convergence=flash["pull"]["convergence"],
            push_convergence=flash["push"]["convergence"],
            wall_seconds=time.perf_counter() - wall_start,
        )


def _print_report(payload: dict[str, object]) -> None:
    width = max(len(key) for key in payload)
    for key, value in payload.items():
        print(f"  {key:<{width}}  {value}")


def main(argv: Optional[list[str]] = None) -> int:
    """``make soak_queries`` / ``make soak_push`` entry point, gated."""
    import argparse

    parser = argparse.ArgumentParser(description="Run the query-load soak")
    parser.add_argument("phase", nargs="?", choices=("all", "push"), default="all",
                        help="'push' runs only the flash-crowd push-plane gate")
    args = parser.parse_args(argv)
    if args.phase == "push":
        print("running flash-crowd push-plane soak (pull vs push identity plane) ...")
        flash, violations = QueryLoadBench().run_flash()
        _print_report({"flows": flash["flows"],
                       "pull": flash["pull"], "push": flash["push"]})
        if violations:
            for violation in violations:
                print(f"FAIL: {violation}")
            return 1
        print(
            "push soak ok: steady-state punts issue zero daemon queries and "
            "delta-driven convergence beats the TTL path"
        )
        return 0
    print("running query-cache soak (hot server, legacy host, invalidation, "
          "cluster, flash crowd) ...")
    report = QueryLoadBench().run()
    _print_report(report.as_dict())
    if not report.gates_ok:
        for violation in report.violations:
            print(f"FAIL: {violation}")
        return 1
    print(
        "query soak ok: caching/coalescing carries the hot-server load, "
        "invalidation keeps it honest"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
