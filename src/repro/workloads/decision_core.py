"""Decision-core workloads: query overlap bench and async churn soak.

The async decision core (PR 6) claims that daemon latency should set a
flow's *setup latency* but not the controller's *throughput*: queries
for thousands of concurrent punts overlap in flight, and only the
policy-eval stage serializes.  Two drivers measure exactly that claim,
both runnable standalone (``make soak_async``) and recorded in
``BENCH_results.json``:

* :class:`DecisionOverlapBench` — the overlap claim.  The same burst of
  query-heavy unique flows runs against both decision cores
  (``ControllerConfig.decision_core``) at 1x and 10x daemon processing
  delay.  Under the ``serial`` core the loop services one punt end to
  end — queries *and* eval — so decided-flows/vsec collapses almost
  linearly with daemon latency.  Under the ``async`` core the
  round-trips overlap and the makespan is dominated by the serialized
  eval stage, so throughput degrades by far less than 2x.

* :class:`AsyncChurnSoak` — the boundedness claim.  Waves of unique
  flows churn through one async-core controller for over a million
  simulated events, with data-path flow entries aging out underneath
  the lifecycle sweeper.  In-flight decision state (the continuation
  tasks parked between query dispatch and eval) must stay bounded by
  the arrival rate — a leaked continuation or an unretired task shows
  up as monotonic growth and fails the gate.

Run standalone::

    python -m repro.workloads.decision_core
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPNetwork
from repro.netsim.statistics import RateCounter

#: The decision-core workloads' policy: stateless web allow-list.
DECISION_POLICY = (
    "block all\n"
    "pass from any to any port 80\n"
)

#: Acceptance ceiling: async decided-flows/vsec may degrade by at most
#: this factor when daemon processing delay is scaled 10x.
ASYNC_DEGRADATION_CEILING = 2.0

#: Acceptance floor: async over serial decided-flows/vsec at 10x
#: daemon processing delay.
OVERLAP_SPEEDUP_FLOOR = 5.0

#: The churn soak must process at least this many simulated events.
SOAK_EVENT_FLOOR = 1_000_000


def _build_decision_net(
    name: str,
    *,
    clients: int,
    config: ControllerConfig,
    processing_delay: float,
    link_latency: float = 50e-6,
) -> IdentPPNetwork:
    """Stand up the bench fabric: clients — sw-edge — sw-core — server.

    Link latencies are kept small so the query cost is dominated by the
    daemon's ``processing_delay`` — the knob the bench scales.
    """
    net = IdentPPNetwork(
        name,
        link_latency=link_latency,
        controller_config=config,
        policy_default_action="block",
    )
    edge = net.add_switch("sw-edge")
    core = net.add_switch("sw-core")
    net.connect(edge, core)
    for index in range(clients):
        net.add_host(
            HostSpec(
                name=f"client{index}",
                ip=f"192.168.0.{10 + index}",
                users={"alice": ("users", "staff")},
            ),
            switch=edge,
        )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=core)
    server.run_server("httpd", "root", 80)
    net.set_policy({"00-decision.control": DECISION_POLICY})
    for daemon in net.daemons.values():
        daemon.processing_delay = processing_delay
    return net


# ----------------------------------------------------------------------
# Overlap bench
# ----------------------------------------------------------------------


@dataclass
class OverlapConfig:
    """Tunables of the serial-vs-async decision-core comparison."""

    flows: int = 600
    clients: int = 8
    #: Base daemon processing delay and the scale factors to compare.
    base_processing_delay: float = 500e-6
    latency_scales: tuple[float, ...] = (1.0, 10.0)
    #: Serialized policy-eval occupancy — the stage that stays serial
    #: under the async core, so it (not the daemon) sets the ceiling.
    policy_eval_delay: float = 200e-6

    def controller_config(self, core: str) -> ControllerConfig:
        """Return the per-run config for one decision core."""
        return ControllerConfig(
            decision_core=core,
            serialize_decisions=True,
            nonblocking_inbox=True,
            policy_eval_delay=self.policy_eval_delay,
            # The serial core at 10x daemon latency queues flows for
            # several virtual seconds; the deadline must not fire while
            # they wait their turn.
            pending_deadline=120.0,
        )


@dataclass
class OverlapReport:
    """Decided-flows/vsec per (core, latency scale), and the derived gates."""

    flows: int
    throughput: dict[str, dict[str, float]]
    makespan: dict[str, dict[str, float]]
    decided: dict[str, dict[str, int]]
    wall_seconds: float

    def _tput(self, core: str, scale_key: str) -> float:
        return self.throughput.get(core, {}).get(scale_key, 0.0)

    @property
    def scale_keys(self) -> list[str]:
        keys = set()
        for by_scale in self.throughput.values():
            keys.update(by_scale)
        return sorted(keys, key=lambda key: float(key.rstrip("x")))

    @property
    def async_degradation(self) -> float:
        """Async throughput at base scale over async at the top scale."""
        keys = self.scale_keys
        top = self._tput("async", keys[-1])
        base = self._tput("async", keys[0])
        return base / top if top else float("inf")

    @property
    def serial_degradation(self) -> float:
        """Serial throughput at base scale over serial at the top scale."""
        keys = self.scale_keys
        top = self._tput("serial", keys[-1])
        base = self._tput("serial", keys[0])
        return base / top if top else float("inf")

    @property
    def overlap_speedup(self) -> float:
        """Async over serial decided-flows/vsec at the top latency scale."""
        key = self.scale_keys[-1]
        serial = self._tput("serial", key)
        return self._tput("async", key) / serial if serial else 0.0

    def as_dict(self) -> dict[str, object]:
        """Return a JSON-serialisable summary for the benchmark suite."""
        return {
            "flows": self.flows,
            "decided_flows_per_vsec": {
                core: {scale: round(value, 1) for scale, value in by_scale.items()}
                for core, by_scale in sorted(self.throughput.items())
            },
            "makespan_vsec": {
                core: {scale: round(value, 6) for scale, value in by_scale.items()}
                for core, by_scale in sorted(self.makespan.items())
            },
            "decided": {core: dict(by_scale) for core, by_scale in sorted(self.decided.items())},
            "async_degradation": round(self.async_degradation, 3),
            "serial_degradation": round(self.serial_degradation, 3),
            "overlap_speedup": round(self.overlap_speedup, 2),
            "wall_seconds": round(self.wall_seconds, 3),
        }


class DecisionOverlapBench:
    """Compare the decision cores across daemon latency scales."""

    def __init__(self, config: Optional[OverlapConfig] = None) -> None:
        self.config = config if config is not None else OverlapConfig()

    def run(self) -> OverlapReport:
        """Run every (core, latency scale) pair over the identical burst."""
        cfg = self.config
        throughput: dict[str, dict[str, float]] = {}
        makespan: dict[str, dict[str, float]] = {}
        decided: dict[str, dict[str, int]] = {}
        wall_start = time.perf_counter()
        for core in ("serial", "async"):
            for scale in cfg.latency_scales:
                key = f"{scale:g}x"
                net = _build_decision_net(
                    f"decision-overlap-{core}-{key}",
                    clients=cfg.clients,
                    config=cfg.controller_config(core),
                    processing_delay=cfg.base_processing_delay * scale,
                )
                for index in range(cfg.flows):
                    client = net.host(f"client{index % cfg.clients}")
                    client.open_flow("http", "alice", "192.168.1.1", 80)
                net.run()
                rate = RateCounter(f"decision-overlap-{core}-{key}.decisions")
                last = 0.0
                for record in net.controller.audit.records():
                    if not record.cached:
                        rate.record(record.time)
                        last = max(last, record.time)
                throughput.setdefault(core, {})[key] = rate.mean_rate(last)
                makespan.setdefault(core, {})[key] = last
                decided.setdefault(core, {})[key] = int(rate.total)
        return OverlapReport(
            flows=cfg.flows,
            throughput=throughput,
            makespan=makespan,
            decided=decided,
            wall_seconds=time.perf_counter() - wall_start,
        )


# ----------------------------------------------------------------------
# Async churn soak
# ----------------------------------------------------------------------


@dataclass
class AsyncSoakConfig:
    """Tunables of the ≥1M-event async churn soak."""

    waves: int = 700
    wave_size: int = 110
    wave_interval: float = 0.1
    clients: int = 8
    processing_delay: float = 500e-6
    policy_eval_delay: float = 20e-6
    #: Short datapath lifetimes + a running sweeper keep the switch flow
    #: tables bounded under churn (the soak is about *controller* state,
    #: not table capacity).
    flow_idle_timeout: float = 0.05
    flow_hard_timeout: float = 0.05
    lifecycle_interval: float = 0.05

    @property
    def flows(self) -> int:
        """Total unique flows injected."""
        return self.waves * self.wave_size

    def controller_config(self) -> ControllerConfig:
        """Return the async-core config under test."""
        return ControllerConfig(
            decision_core="async",
            serialize_decisions=True,
            nonblocking_inbox=True,
            policy_eval_delay=self.policy_eval_delay,
            idle_timeout=self.flow_idle_timeout,
            hard_timeout=self.flow_hard_timeout,
            lifecycle_interval=self.lifecycle_interval,
        )


@dataclass
class AsyncSoakReport:
    """What the async churn soak observed."""

    flows: int
    events: int
    decided: int
    peak_inflight: int
    peak_serial_depth: int
    final_inflight: int
    final_pending: int
    pending_expired: int
    wave_size: int
    wall_seconds: float
    violations: list[str] = field(default_factory=list)

    def bounded(self) -> bool:
        """Gate: enough events, in-flight state bounded, everything drained."""
        self.violations = []
        if self.events < SOAK_EVENT_FLOOR:
            self.violations.append(
                f"soak processed {self.events} events (< {SOAK_EVENT_FLOOR})"
            )
        # Every wave's punts must clear before more than one further
        # wave lands: in-flight state tracks the arrival rate, it never
        # accumulates run-long.
        ceiling = 2 * self.wave_size
        if self.peak_inflight > ceiling:
            self.violations.append(
                f"peak in-flight decisions {self.peak_inflight} exceeded {ceiling}"
            )
        if self.final_inflight or self.final_pending:
            self.violations.append(
                f"run ended with {self.final_inflight} in-flight / "
                f"{self.final_pending} pending flows"
            )
        if self.decided + self.pending_expired < self.flows:
            self.violations.append(
                f"only {self.decided} of {self.flows} flows were decided"
            )
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        """Return a JSON-serialisable summary for the benchmark suite."""
        return {
            "flows": self.flows,
            "events": self.events,
            "decided": self.decided,
            "peak_inflight": self.peak_inflight,
            "peak_serial_depth": self.peak_serial_depth,
            "final_inflight": self.final_inflight,
            "final_pending": self.final_pending,
            "pending_expired": self.pending_expired,
            "bounded": self.bounded(),
            "wall_seconds": round(self.wall_seconds, 3),
        }


class AsyncChurnSoak:
    """Churn ≥1M events through one async-core controller, watching in-flight state."""

    def __init__(self, config: Optional[AsyncSoakConfig] = None) -> None:
        self.config = config if config is not None else AsyncSoakConfig()
        self._peak_inflight = 0
        self._peak_serial_depth = 0

    def run(self) -> AsyncSoakReport:
        cfg = self.config
        net = _build_decision_net(
            "decision-async-soak",
            clients=cfg.clients,
            config=cfg.controller_config(),
            processing_delay=cfg.processing_delay,
        )
        controller = net.controller
        sim = net.topology.sim
        wall_start = time.perf_counter()

        def inject(wave: int) -> None:
            spawned = []
            for index in range(cfg.wave_size):
                client = net.host(f"client{(wave + index) % cfg.clients}")
                _, socket, process = client.open_flow("http", "alice", "192.168.1.1", 80)
                spawned.append((client, socket, process))
            # Probe at the instant after the wave's punts all arrived —
            # the high-water mark for in-flight pipeline state.
            sim.schedule(2 * cfg.processing_delay, probe)
            # Short-lived flows: the wave's sessions end two waves later,
            # well after their decisions landed.  Without the reap the
            # host socket tables grow run-long and the daemons' lsof-style
            # flow lookup turns quadratic — churn means turnover.
            sim.schedule(2 * cfg.wave_interval, reap, spawned)

        def reap(spawned: list) -> None:
            for client, socket, process in spawned:
                client.sockets.close(socket)
                client.processes.kill(process.pid)

        def probe() -> None:
            self._peak_inflight = max(self._peak_inflight, controller.inflight_count())
            self._peak_serial_depth = max(
                self._peak_serial_depth, controller._serial.depth()
            )

        for wave in range(cfg.waves):
            sim.schedule(wave * cfg.wave_interval, inject, wave)
        net.run()
        summary = controller.summary()
        decided = len([r for r in controller.audit.records() if not r.cached])
        return AsyncSoakReport(
            flows=cfg.flows,
            events=sim.events_processed,
            decided=decided,
            peak_inflight=self._peak_inflight,
            peak_serial_depth=self._peak_serial_depth,
            final_inflight=int(summary["inflight_decisions"]),
            final_pending=int(summary["pending_flows"]),
            pending_expired=int(summary["pending_expired"]),
            wave_size=cfg.wave_size,
            wall_seconds=time.perf_counter() - wall_start,
        )


# ----------------------------------------------------------------------
# Standalone entry point
# ----------------------------------------------------------------------


def main() -> int:
    """``make soak_async`` entry point: run both drivers, report, gate."""
    print("running decision-core overlap bench (serial vs async) ...")
    overlap = DecisionOverlapBench().run()
    payload = overlap.as_dict()
    width = max(len(key) for key in payload)
    for key, value in payload.items():
        print(f"  {key:<{width}}  {value}")

    print("running async churn soak (>=1M events) ...")
    soak = AsyncChurnSoak().run()
    payload = soak.as_dict()
    width = max(len(key) for key in payload)
    for key, value in payload.items():
        print(f"  {key:<{width}}  {value}")

    ok = True
    if overlap.async_degradation >= ASYNC_DEGRADATION_CEILING:
        ok = False
        print(
            f"FAIL: async core degraded {overlap.async_degradation:.2f}x at 10x "
            f"daemon latency (ceiling {ASYNC_DEGRADATION_CEILING}x)"
        )
    if overlap.overlap_speedup < OVERLAP_SPEEDUP_FLOOR:
        ok = False
        print(
            f"FAIL: async over serial speedup {overlap.overlap_speedup:.2f}x "
            f"below the {OVERLAP_SPEEDUP_FLOOR}x floor"
        )
    if not soak.bounded():
        ok = False
        for violation in soak.violations:
            print(f"FAIL: {violation}")
    if ok:
        print("soak ok: query latency overlaps, in-flight state bounded")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
