"""Churn/soak workload: bounded flow-state under heavy flow turnover.

The ROADMAP north-star (millions of users, heavy churn) means the
controller sees short-lived flows arriving far faster than their TTLs
expire.  Every flow deposits state in three caches — the controller
:class:`~repro.core.cache.DecisionCache`, the ``keep state``
:class:`~repro.pf.state.StateTable` and the per-switch
:class:`~repro.openflow.flow_table.FlowTable` — so without a working
lifecycle the state grows linearly with *total* flows instead of with
the *live* working set.

:class:`ChurnSoak` drives ~100k unique short-lived flows through the
real decision components (policy engine, decision cache, state table,
flow tables, lifecycle sweeps) on a virtual clock and reports the peak
and final entry counts against the expected live working set.  The
companion :func:`error_probe` drives a real
:class:`~repro.core.network.IdentPPNetwork` whose policy raises a
:class:`~repro.exceptions.PFError` for one flow and checks the
controller fails closed (audited drop, no pending leak).

Run it standalone (``make soak``)::

    python -m repro.workloads.churn
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.cache import DecisionCache
from repro.core.lifecycle import LifecycleService
from repro.core.policy_engine import PolicyEngine
from repro.identpp.flowspec import FlowSpec
from repro.openflow.actions import OutputAction
from repro.openflow.flow_table import FlowTable, make_entry
from repro.openflow.match import Match
from repro.workloads.invariants import check_bounded_state

#: The soak policy: allow web traffic statefully, deny the rest.
CHURN_POLICY = (
    "block all\n"
    "pass from any to any port 80 keep state\n"
)


@dataclass
class ChurnConfig:
    """Tunables of one soak run.

    The defaults model a working set of ``working_set`` live flows: new
    flows arrive at ``working_set / decision_ttl`` per virtual second, so
    at steady state roughly ``working_set`` decisions are inside their
    TTL at any instant.  Everything beyond that (plus one sweep interval
    of slack) is state the lifecycle failed to reclaim.
    """

    flows: int = 100_000
    working_set: int = 512
    decision_ttl: float = 2.0
    state_timeout: float = 2.0
    idle_timeout: float = 1.0
    sweep_interval: float = 0.5
    switches: int = 2
    batch_size: int = 64
    cache_capacity: Optional[int] = None

    @property
    def arrival_rate(self) -> float:
        """New flows per virtual second."""
        return self.working_set / self.decision_ttl


@dataclass
class ChurnReport:
    """What one soak run observed."""

    flows: int
    virtual_seconds: float
    wall_seconds: float
    flows_per_sec: float
    peak_cache_entries: int
    final_cache_entries: int
    peak_state_entries: int
    final_state_entries: int
    peak_table_entries: int
    final_table_entries: int
    expected_cache_entries: float
    expected_state_entries: float
    expected_table_entries: float
    cache_expirations: int
    state_expirations: int
    table_expirations: int
    sweeps: int
    reclaimed_total: int
    latency_first_mean: float
    latency_last_mean: float
    violations: list[str] = field(default_factory=list)

    @property
    def latency_ratio(self) -> float:
        """Late-run / early-run mean batch-decision latency (1.0 = flat)."""
        if self.latency_first_mean <= 0:
            return 1.0
        return self.latency_last_mean / self.latency_first_mean

    def bounded(self, factor: float = 2.0) -> bool:
        """Return ``True`` when every peak stayed within ``factor`` × expected.

        Delegates to the shared bounded-state invariant checker
        (:func:`repro.workloads.invariants.check_bounded_state`) — the
        same one the experiment matrix runs on every cell — and
        populates :attr:`violations` with its findings, so failures are
        diagnosable from the report alone.
        """
        result = check_bounded_state(
            observed={
                "DecisionCache": self.peak_cache_entries,
                "StateTable": self.peak_state_entries,
                "FlowTable": self.peak_table_entries,
            },
            caps={
                "DecisionCache": factor * self.expected_cache_entries,
                "StateTable": factor * self.expected_state_entries,
                "FlowTable": factor * self.expected_table_entries,
            },
        )
        self.violations = list(result.violations)
        return result.passed

    def as_dict(self) -> dict[str, object]:
        """Return a JSON-serialisable summary (used by the benchmark suite)."""
        return {
            "flows": self.flows,
            "virtual_seconds": round(self.virtual_seconds, 3),
            "wall_seconds": round(self.wall_seconds, 3),
            "flows_per_sec": round(self.flows_per_sec, 1),
            "peak_cache_entries": self.peak_cache_entries,
            "final_cache_entries": self.final_cache_entries,
            "peak_state_entries": self.peak_state_entries,
            "final_state_entries": self.final_state_entries,
            "peak_table_entries": self.peak_table_entries,
            "final_table_entries": self.final_table_entries,
            "expected_cache_entries": self.expected_cache_entries,
            "expected_state_entries": self.expected_state_entries,
            "expected_table_entries": self.expected_table_entries,
            "cache_expirations": self.cache_expirations,
            "state_expirations": self.state_expirations,
            "table_expirations": self.table_expirations,
            "sweeps": self.sweeps,
            "reclaimed_total": self.reclaimed_total,
            "latency_ratio": round(self.latency_ratio, 3),
            "bounded_within_2x": self.bounded(2.0),
            "violations": list(self.violations),
        }


class ChurnSoak:
    """Drive unique short-lived flows through the decision components."""

    def __init__(self, config: Optional[ChurnConfig] = None) -> None:
        self.config = config if config is not None else ChurnConfig()

    @staticmethod
    def _flow(index: int) -> FlowSpec:
        """Materialise a unique, deterministic 5-tuple for draw ``index``."""
        return FlowSpec.tcp(
            f"10.{(index >> 16) % 200}.{(index >> 8) % 256}.{index % 256}",
            f"192.168.1.{1 + index % 8}",
            40_000 + index % 20_000,
            80,
        )

    def run(self) -> ChurnReport:
        """Run the soak and report peak/final entry counts and throughput."""
        cfg = self.config
        engine = PolicyEngine(default_action="block", name="churn.policy")
        engine.add_control_file("00-churn.control", CHURN_POLICY)
        cache = DecisionCache(ttl=cfg.decision_ttl, capacity=cfg.cache_capacity)
        cache.state_table.timeout = cfg.state_timeout
        tables = [FlowTable(name=f"sw{i}.flow-table") for i in range(cfg.switches)]

        lifecycle = LifecycleService(name="churn.lifecycle")
        lifecycle.register("decisions", cache.expire, cache.expirable_count)
        lifecycle.register(
            "states", cache.state_table.expire, cache.state_table.expirable_count
        )
        for i, table in enumerate(tables):
            lifecycle.register(
                f"flow_table:sw{i}",
                lambda now, _t=table: len(_t.expire(now)),
                table.expirable_count,
            )

        dt = 1.0 / cfg.arrival_rate
        next_sweep = cfg.sweep_interval
        peak_cache = peak_state = peak_table = 0
        batch: list[tuple] = []
        arrivals: list[float] = []
        batch_walls: list[float] = []
        cookie_counter = 0
        now = 0.0
        wall_start = time.perf_counter()

        def flush(flush_now: float) -> None:
            nonlocal cookie_counter
            if not batch:
                return
            t0 = time.perf_counter()
            decisions = engine.decide_batch(batch)
            batch_walls.append((time.perf_counter() - t0) / len(batch))
            for (flow, _, _), decision, arrival in zip(batch, decisions, arrivals):
                cookie_counter += 1
                cookie = f"churn:decision-{cookie_counter}"
                cache.store(
                    flow,
                    decision.action,
                    cookie,
                    arrival,
                    keep_state=decision.keep_state,
                    rule_text=decision.rule_text,
                )
                if decision.is_pass:
                    self._install(tables, flow, cookie, arrival)
            batch.clear()
            arrivals.clear()

        for index in range(cfg.flows):
            now = index * dt
            flow = self._flow(index)
            if cache.lookup(flow, now) is None:
                batch.append((flow, None, None))
                arrivals.append(now)
            if len(batch) >= cfg.batch_size:
                flush(now)
            if now >= next_sweep:
                lifecycle.sweep(now)
                next_sweep = now + cfg.sweep_interval
            peak_cache = max(peak_cache, len(cache))
            peak_state = max(peak_state, len(cache.state_table))
            peak_table = max(peak_table, max(len(t) for t in tables))
        flush(now)

        # Drain: sweep past every timeout so steady-state leftovers show up
        # as non-zero finals instead of hiding behind "the run just ended".
        drain = now + max(cfg.decision_ttl, cfg.state_timeout, cfg.idle_timeout)
        lifecycle.sweep(drain + cfg.sweep_interval)
        wall = time.perf_counter() - wall_start

        slice_size = max(1, len(batch_walls) // 10)
        return ChurnReport(
            flows=cfg.flows,
            virtual_seconds=now,
            wall_seconds=wall,
            flows_per_sec=cfg.flows / wall if wall else 0.0,
            peak_cache_entries=peak_cache,
            final_cache_entries=len(cache),
            peak_state_entries=peak_state,
            final_state_entries=len(cache.state_table),
            peak_table_entries=peak_table,
            final_table_entries=max(len(t) for t in tables),
            # Live working set per structure: arrival rate x entry lifetime
            # (+ one sweep interval of reclamation slack).
            expected_cache_entries=cfg.arrival_rate * (cfg.decision_ttl + cfg.sweep_interval),
            expected_state_entries=cfg.arrival_rate * (cfg.state_timeout + cfg.sweep_interval),
            expected_table_entries=2 * cfg.arrival_rate * (cfg.idle_timeout + cfg.sweep_interval),
            cache_expirations=cache.expirations,
            state_expirations=cache.state_table.expirations,
            table_expirations=sum(t.expirations for t in tables),
            sweeps=lifecycle.sweeps,
            reclaimed_total=lifecycle.total_reclaimed(),
            latency_first_mean=sum(batch_walls[:slice_size]) / slice_size if batch_walls else 0.0,
            latency_last_mean=sum(batch_walls[-slice_size:]) / slice_size if batch_walls else 0.0,
        )

    def _install(self, tables: list[FlowTable], flow: FlowSpec, cookie: str, now: float) -> None:
        """Mirror the controller's datapath programming: forward + reverse entries."""
        cfg = self.config
        match = Match.from_five_tuple(
            flow.src_ip, flow.dst_ip, flow.proto, flow.src_port, flow.dst_port
        )
        reverse = flow.reversed()
        reverse_match = Match.from_five_tuple(
            reverse.src_ip, reverse.dst_ip, reverse.proto, reverse.src_port, reverse.dst_port
        )
        for port, table in enumerate(tables):
            table.install(
                make_entry(match, [OutputAction(port + 1)],
                           idle_timeout=cfg.idle_timeout, cookie=cookie),
                now=now,
            )
            table.install(
                make_entry(reverse_match, [OutputAction(port + 2)],
                           idle_timeout=cfg.idle_timeout, cookie=cookie),
                now=now,
            )


def error_probe() -> dict[str, object]:
    """Check the fail-closed pipeline on a real network.

    The policy's port-6666 rule calls an unregistered function, so
    evaluating a flow to that port raises inside the controller's flush.
    A correct controller resolves it as an audited drop with nothing left
    in the pending table or the switch buffers.
    """
    from repro.core.network import HostSpec, IdentPPNetwork

    net = IdentPPNetwork("churn-errors", policy_default_action="block")
    switch = net.add_switch("sw")
    net.add_host(
        HostSpec(name="client", ip="192.168.0.10", users={"alice": ("users", "staff")}),
        switch=switch,
    )
    server = net.add_host(HostSpec(name="server", ip="192.168.1.1"), switch=switch)
    server.run_server("httpd", "root", 80)
    net.set_policy({
        "00-churn-errors.control": (
            "block all\n"
            "pass from any to any port 80 keep state\n"
            "pass from any to any port 6666 with bogus(@src[name])\n"
        ),
    })
    healthy = net.send_flow("client", "http", "alice", "192.168.1.1", 80)
    poisoned = net.send_flow("client", "http", "alice", "192.168.1.1", 6666)
    controller = net.controller
    error_records = [r for r in controller.audit.records() if r.rule_origin == "error"]
    return {
        "healthy_flow_delivered": healthy.delivered,
        "error_flow_delivered": poisoned.delivered,
        "error_flow_audited": len(error_records) == 1,
        "pending_after": len(controller._pending),
        "buffered_after": switch.buffered_count(),
        "policy_errors": controller.policy_errors,
        "failed_closed": (
            not poisoned.delivered
            and len(error_records) == 1
            and not controller._pending
            and switch.buffered_count() == 0
        ),
    }


def main() -> int:
    """``make soak`` entry point: run the soak + error probe, report, gate."""
    print("running churn soak (100k short-lived flows) ...")
    report = ChurnSoak().run()
    payload = report.as_dict()
    width = max(len(key) for key in payload)
    for key, value in payload.items():
        print(f"  {key:<{width}}  {value}")
    probe = error_probe()
    print("fail-closed error probe:")
    width = max(len(key) for key in probe)
    for key, value in probe.items():
        print(f"  {key:<{width}}  {value}")

    ok = True
    if not report.bounded(2.0):
        ok = False
        for violation in report.violations:
            print(f"FAIL: {violation}")
    if not probe["failed_closed"]:
        ok = False
        print("FAIL: PFError flow was not failed closed (see probe above)")
    if report.latency_ratio > 2.5:
        # Wall-clock noise makes this advisory rather than gating.
        print(f"WARN: decision latency drifted {report.latency_ratio:.2f}x over the run")
    if ok:
        print("soak ok: state bounded, policy errors fail closed")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
