"""Experiment harness: a declarative scenario matrix with one runner.

The repo grew six rich one-off workloads (churn, cluster, fabric,
queryload, decision core, telemetry) but no way to *sweep* them.  This
module is ROADMAP item 3: a declarative :class:`ScenarioSpec` — topology
builder × control plane × policy set × failure schedule × traffic mix ×
seed — plus an :class:`Experiment` runner that expands a spec grid into
cells, runs each cell with seeded repeats on the virtual clock, and
emits one aggregated report.

Every cell reports two things:

* **metrics** — per-cell counters/latencies/rates collected in a
  harness-owned :class:`~repro.netsim.statistics.StatsRegistry` and
  exported through ``snapshot(now)``, plus an ident++ vs four-baselines
  comparison (vanilla firewall, distributed firewall, Ethane, VLAN
  segmentation) over the same flow intents;
* **invariants** — the applicable checkers from
  :mod:`repro.workloads.invariants` (fail-closed, zero-loss failover,
  containment, cache coherence, bounded state), evaluated on every
  repeat.  A cell passes only if every applicable invariant passes in
  every repeat — the matrix asserts the paper's correctness story, it
  does not merely record numbers.

``python -m repro.workloads.experiment`` (``make matrix``) runs the
committed :func:`default_matrix` — 30 cells covering roaming users
re-homing across leaves, multi-tenant isolation, partition + heal, a
worm outbreak racing cluster-wide quarantine, 90 % daemon-less legacy
fleets, and the push identity plane (flash-crowd A/B against pull,
shard-kill subscription re-homing, push over a daemon-less fleet) —
and exits nonzero on any invariant failure.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.baselines.ethane import EthanePolicy
from repro.baselines.distributed_firewall import DistributedFirewall
from repro.baselines.vanilla_firewall import FirewallRule, VanillaFirewall
from repro.baselines.vlan import VLANSegmentation
from repro.core.controller import ControllerConfig
from repro.core.network import HostSpec, IdentPPClusterNetwork, IdentPPNetwork
from repro.identpp.flowspec import FlowSpec
from repro.netsim.statistics import StatsRegistry
from repro.workloads import invariants

ARCH_IDENTPP = "identpp"
ARCH_VANILLA = "vanilla"
ARCH_DISTRIBUTED = "distributed"
ARCH_ETHANE = "ethane"
ARCH_VLAN = "vlan"
BASELINE_ARCHITECTURES = (ARCH_VANILLA, ARCH_DISTRIBUTED, ARCH_ETHANE, ARCH_VLAN)

#: Address plan shared by every scenario (baseline builders key off it).
TENANT_A_CLIENTS = "192.168.0.0/24"
TENANT_A_SERVERS = "192.168.1.0/24"
TENANT_B_CLIENTS = "10.2.0.0/24"
TENANT_B_SERVERS = "10.2.1.0/24"


# ======================================================================
# Scenario specification
# ======================================================================

@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of the matrix: every axis that defines a scenario.

    The axes are registry keys (:data:`TOPOLOGIES`, :data:`CONTROLS`,
    :data:`POLICIES`, :data:`TRAFFIC_MIXES`, :data:`FAILURES`); the
    scalars size and seed the run.  Specs are frozen so a grid expansion
    can never mutate its base, and hashable so reports can key on them.
    """

    name: str = ""
    topology: str = "edge_core"
    control: str = "single"
    policy: str = "web_open"
    traffic: str = "web_burst"
    failure: str = "none"
    flows: int = 24
    clients: int = 4
    servers: int = 2
    daemon_fraction: float = 1.0
    query_cache_ttl: float = 0.0
    identity_plane: str = "pull"
    duration: float = 12.0
    seed: int = 2009
    sanitize: bool = False

    def cell_id(self) -> str:
        """The canonical axis string identifying this cell."""
        parts = [self.topology, self.control, self.policy, self.traffic, self.failure]
        if self.daemon_fraction < 1.0:
            parts.append(f"daemons{int(round(self.daemon_fraction * 100))}%")
        if self.identity_plane != "pull":
            parts.append(self.identity_plane)
        return "/".join(parts)

    def validate(self) -> None:
        """Raise ``ValueError`` on an unknown axis value or invalid combo."""
        for axis, registry in (
            ("topology", TOPOLOGIES),
            ("control", CONTROLS),
            ("policy", POLICIES),
            ("traffic", TRAFFIC_MIXES),
            ("failure", FAILURES),
        ):
            value = getattr(self, axis)
            if value not in registry:
                raise ValueError(f"unknown {axis} {value!r} (have {sorted(registry)})")
        if self.failure == "kill_shard" and self.control == "single":
            raise ValueError("kill_shard needs a cluster control plane")
        if self.failure == "partition_heal" and self.topology != "spine_leaf":
            raise ValueError("partition_heal needs the spine_leaf topology")
        if not 0.0 <= self.daemon_fraction <= 1.0:
            raise ValueError(f"daemon_fraction must be in [0, 1] (got {self.daemon_fraction})")
        if self.identity_plane not in ("pull", "push"):
            raise ValueError(f"identity_plane must be 'pull' or 'push' (got {self.identity_plane!r})")
        if self.flows < 1 or self.clients < 1 or self.servers < 1:
            raise ValueError("flows, clients and servers must be positive")
        if (self.failure == "retenant") != (self.traffic == "retenant"):
            raise ValueError("the retenant failure schedule and traffic mix pair up")
        if self.failure == "quarantine_race" and self.traffic != "worm":
            raise ValueError("quarantine_race needs the worm traffic mix")


def expand_grid(
    axes: Mapping[str, Sequence],
    *,
    base: Optional[ScenarioSpec] = None,
) -> list[ScenarioSpec]:
    """Expand an axis grid into one validated spec per combination.

    ``axes`` maps :class:`ScenarioSpec` field names to the values to
    sweep; the cartesian product is taken in sorted-key order so the
    cell order (and therefore each cell's derived seed) is stable.
    Every cell gets ``base.seed + index`` as its seed — repeats within
    a cell re-derive from it — and a name from :meth:`ScenarioSpec.cell_id`
    unless the grid sets one explicitly.
    """
    base = base if base is not None else ScenarioSpec()
    names = sorted(axes)
    specs = []
    for index, combo in enumerate(itertools.product(*(axes[name] for name in names))):
        spec = replace(base, **dict(zip(names, combo)))
        spec = replace(
            spec,
            seed=base.seed + index,
            name=spec.name or spec.cell_id(),
        )
        spec.validate()
        specs.append(spec)
    return specs


# ======================================================================
# Flow intents (planned traffic with ground truth)
# ======================================================================

@dataclass(frozen=True)
class FlowIntent:
    """One planned flow: who opens it, where it goes, and the ground truth.

    ``wanted`` is the *intent* of the administrator's policy — worm
    traffic is unwanted even when a port-based policy happens to pass
    it.  ``expect_verdict`` marks flows the control plane is expected to
    account for (quarantine wildcard drops and partition blackouts stop
    packets before any punt, so those flows legitimately reach no
    verdict).  ``expect_delivery`` marks wanted flows whose delivery is
    expected (a wanted flow during a partition blackout is not).
    """

    at: float
    src_host: str
    src_ip: str
    app: str
    user: str
    dst_ip: str
    dst_port: int
    wanted: bool
    expect_verdict: bool = True
    expect_delivery: Optional[bool] = None

    def should_deliver(self) -> bool:
        if self.expect_delivery is not None:
            return self.expect_delivery
        return self.wanted

    def planned_flow(self, index: int) -> FlowSpec:
        """A deterministic 5-tuple stand-in used for baseline evaluation."""
        return FlowSpec.tcp(self.src_ip, self.dst_ip, 40000 + index, self.dst_port)


@dataclass
class HostPlan:
    """One planned end-host: identity, attachment role, services."""

    name: str
    ip: str
    users: dict[str, tuple[str, ...]]
    role: str = "client"           # client | server | roam_a | roam_b | infected
    run_daemon: bool = True
    server_app: Optional[tuple[str, str, int]] = None   # (app, user, port)


# ======================================================================
# Cell context: everything a live run accumulates
# ======================================================================

@dataclass
class CellContext:
    """Mutable state of one repeat: the network plus everything observed."""

    spec: ScenarioSpec
    net: IdentPPNetwork
    switches: dict[str, list] = field(default_factory=dict)
    plans: dict[str, HostPlan] = field(default_factory=dict)
    intents: list[FlowIntent] = field(default_factory=list)
    injected: list[tuple[FlowIntent, FlowSpec]] = field(default_factory=list)
    peaks: dict[str, int] = field(default_factory=dict)
    quarantined_since: dict[str, float] = field(default_factory=dict)
    coherence_probes: list[invariants.CoherenceProbe] = field(default_factory=list)
    needs_monitoring: bool = False
    retenant_socket: object = None

    def hosts_in_role(self, *roles: str) -> list[HostPlan]:
        return [plan for plan in self.plans.values() if plan.role in roles]


# ======================================================================
# Topologies
# ======================================================================

def _topology_single(ctx: CellContext) -> None:
    sw = ctx.net.add_switch("sw0")
    ctx.switches = {"client": [sw], "server": [sw], "spine": []}


def _topology_edge_core(ctx: CellContext) -> None:
    edge = ctx.net.add_switch("sw-edge")
    core = ctx.net.add_switch("sw-core")
    ctx.net.connect(edge, core)
    ctx.switches = {"client": [edge], "server": [core], "spine": []}


def _topology_spine_leaf(ctx: CellContext) -> None:
    fabric = ctx.net.add_spine_leaf_fabric(spines=2, leaves=3, prefix="sl")
    ctx.switches = {
        "client": fabric.leaves[:-1],
        "server": [fabric.leaves[-1]],
        "spine": fabric.spines,
    }


TOPOLOGIES: dict[str, Callable[[CellContext], None]] = {
    "single": _topology_single,
    "edge_core": _topology_edge_core,
    "spine_leaf": _topology_spine_leaf,
}

#: Control plane → shard count (0 = one unsharded controller).
CONTROLS: dict[str, int] = {"single": 0, "cluster2": 2, "cluster4": 4}


# ======================================================================
# Policy sets (ident++ control files + the matching baseline builders)
# ======================================================================

# Table names must not collide with group names: a bare name inside
# member() resolves as a PF table first, so member(@src[groupID], tenant-a)
# with a <tenant-a> table would test groups against CIDR prefixes.
_TABLE_HEADER = f"""\
table <tenant-a-net> {{ {TENANT_A_CLIENTS}, {TENANT_A_SERVERS} }}
table <tenant-b-net> {{ {TENANT_B_CLIENTS}, {TENANT_B_SERVERS} }}
"""

POLICIES: dict[str, dict[str, str]] = {
    # Port-based: what a conventional firewall can express.
    "web_open": {
        "00-web.control": "block all\npass from any to any port 80 keep state\n",
    },
    # Only the approved browser may speak HTTP (Figure 2's skype-vs-web).
    "app_gated": {
        "00-app.control": (
            "block all\n"
            "pass from any to any port 80 with eq(@src[name], http) keep state\n"
        ),
    },
    # Only staff users may speak HTTP, whoever's machine they borrow.
    "user_gated": {
        "00-user.control": (
            "block all\n"
            "pass from any to any port 80 with member(@src[groupID], staff) keep state\n"
        ),
    },
    # Tenants are isolated by group membership, not just by subnet.
    "tenant_iso": {
        "00-tenants.control": _TABLE_HEADER + (
            "block all\n"
            "pass from <tenant-a-net> to <tenant-a-net> port 80 "
            "with member(@src[groupID], tenant-a) keep state\n"
            "pass from <tenant-b-net> to <tenant-b-net> port 80 "
            "with member(@src[groupID], tenant-b) keep state\n"
        ),
    },
    # The *destination* must be the real web server (coherence cells).
    "dst_app_gated": {
        "00-dst.control": (
            "block all\n"
            "pass from any to any port 80 with eq(@dst[name], httpd) keep state\n"
        ),
    },
}


def build_baselines(policy_name: str, plans: Mapping[str, HostPlan]) -> dict[str, object]:
    """Build the four baseline deciders that best express one policy set.

    Each baseline gets the closest approximation its architecture can
    state: port/subnet rules for the firewalls, per-host user bindings
    for Ethane, subnet segments for VLANs.  The gap between these
    approximations and the ground-truth ``wanted`` labels is exactly
    what the per-cell comparison measures.
    """
    port_rules = _port_rules_for(policy_name)
    ethane = EthanePolicy(name="ethane")
    for plan in plans.values():
        primary = next(iter(plan.users))
        ethane.register_host(plan.ip, primary, groups=plan.users[primary])
    _add_ethane_rules(ethane, policy_name)
    vlan = VLANSegmentation(name="vlan")
    vlan.assign("tenant-a", [TENANT_A_CLIENTS, TENANT_A_SERVERS])
    vlan.assign("tenant-b", [TENANT_B_CLIENTS, TENANT_B_SERVERS])
    if policy_name != "tenant_iso":
        # Outside the isolation cells the VLAN design has one big zone.
        vlan.allow_between("tenant-a", "tenant-b")
    return {
        ARCH_VANILLA: VanillaFirewall(port_rules, name="vanilla"),
        ARCH_DISTRIBUTED: DistributedFirewall(port_rules, name="distributed"),
        ARCH_ETHANE: ethane,
        ARCH_VLAN: vlan,
    }


def _port_rules_for(policy_name: str) -> list[FirewallRule]:
    if policy_name == "tenant_iso":
        return [
            FirewallRule("pass", src=TENANT_A_CLIENTS, dst=TENANT_A_SERVERS,
                         proto="tcp", dst_port=80, keep_state=True),
            FirewallRule("pass", src=TENANT_B_CLIENTS, dst=TENANT_B_SERVERS,
                         proto="tcp", dst_port=80, keep_state=True),
            FirewallRule("block"),
        ]
    # Every other policy narrows port 80; a firewall can only say "port 80".
    return [
        FirewallRule("pass", proto="tcp", dst_port=80, keep_state=True),
        FirewallRule("block"),
    ]


def _add_ethane_rules(ethane: EthanePolicy, policy_name: str) -> None:
    if policy_name == "tenant_iso":
        ethane.allow(src_group="tenant-a", dst=TENANT_A_SERVERS, proto="tcp", dst_port=80)
        ethane.allow(src_group="tenant-b", dst=TENANT_B_SERVERS, proto="tcp", dst_port=80)
    elif policy_name in ("user_gated", "app_gated"):
        # Ethane can bind users (not apps): user_gated is its best case,
        # app_gated its documented blind spot — same rule either way.
        ethane.allow(src_group="staff", proto="tcp", dst_port=80)
    else:
        ethane.allow(proto="tcp", dst_port=80)


# ======================================================================
# Traffic mixes
# ======================================================================

def _client_plans(spec: ScenarioSpec, *, groups=("users", "staff")) -> list[HostPlan]:
    return [
        HostPlan(
            name=f"c{i}", ip=f"192.168.0.{10 + i}",
            users={f"alice{i}": tuple(groups)},
            run_daemon=i < max(1, round(spec.daemon_fraction * spec.clients)),
        )
        for i in range(spec.clients)
    ]


def _server_plans(spec: ScenarioSpec, *, subnet_prefix="192.168.1", name_prefix="srv") -> list[HostPlan]:
    return [
        HostPlan(
            name=f"{name_prefix}{j}", ip=f"{subnet_prefix}.{1 + j}",
            users={"root": ("system",)}, role="server",
            server_app=("httpd", "root", 80),
        )
        for j in range(spec.servers)
    ]


def _jittered_times(spec: ScenarioSpec, rng: random.Random, count: int,
                    start: float = 0.5, end_fraction: float = 0.7) -> list[float]:
    window = spec.duration * end_fraction - start
    return sorted(start + rng.random() * window for _ in range(count))


def _mix_web_burst(spec, rng):
    plans = _client_plans(spec) + _server_plans(spec)
    clients = [p for p in plans if p.role == "client"]
    servers = [p for p in plans if p.role == "server"]
    intents = []
    for at in _jittered_times(spec, rng, spec.flows):
        client, server = rng.choice(clients), rng.choice(servers)
        user = next(iter(client.users))
        if rng.random() < 0.8:
            intents.append(FlowIntent(at, client.name, client.ip, "http", user, server.ip, 80, wanted=True))
        else:
            intents.append(FlowIntent(at, client.name, client.ip, "telnet", user, server.ip, 23, wanted=False))
    return plans, intents


def _mix_app_mix(spec, rng):
    plans = _client_plans(spec) + _server_plans(spec)
    clients = [p for p in plans if p.role == "client"]
    servers = [p for p in plans if p.role == "server"]
    intents = []
    for at in _jittered_times(spec, rng, spec.flows):
        client, server = rng.choice(clients), rng.choice(servers)
        user = next(iter(client.users))
        app = "http" if rng.random() < 0.7 else "skype"
        intents.append(FlowIntent(at, client.name, client.ip, app, user, server.ip, 80, wanted=app == "http"))
    return plans, intents


def _mix_user_mix(spec, rng):
    plans = _client_plans(spec) + _server_plans(spec)
    plans[0].users["eve"] = ("users", "guests")
    clients = [p for p in plans if p.role == "client"]
    servers = [p for p in plans if p.role == "server"]
    intents = []
    for at in _jittered_times(spec, rng, spec.flows):
        server = rng.choice(servers)
        if rng.random() < 0.7:
            client = rng.choice(clients)
            user = f"alice{client.name[1:]}"
            wanted = True
        else:
            client, user, wanted = plans[0], "eve", False
        intents.append(FlowIntent(at, client.name, client.ip, "http", user, server.ip, 80, wanted=wanted))
    return plans, intents


def _mix_roaming(spec, rng):
    """A staff user re-homes across leaves mid-run; policy follows the user."""
    plans = _client_plans(spec) + _server_plans(spec)
    plans.append(HostPlan("roam-a", "192.168.0.30", {"roamer": ("users", "staff")}, role="roam_a"))
    plans.append(HostPlan("roam-b", "192.168.0.31", {"roamer": ("users", "staff")}, role="roam_b"))
    clients = [p for p in plans if p.role == "client"]
    servers = [p for p in plans if p.role == "server"]
    rehome_at = spec.duration * 0.35
    intents = []
    for at in _jittered_times(spec, rng, spec.flows):
        server = rng.choice(servers)
        if rng.random() < 0.5:
            client = rng.choice(clients)
            user = f"alice{client.name[1:]}"
            intents.append(FlowIntent(at, client.name, client.ip, "http", user, server.ip, 80, wanted=True))
        else:
            src = "roam-a" if at < rehome_at else "roam-b"
            src_ip = "192.168.0.30" if src == "roam-a" else "192.168.0.31"
            intents.append(FlowIntent(at, src, src_ip, "http", "roamer", server.ip, 80, wanted=True))
    return plans, intents


def _mix_multi_tenant(spec, rng):
    plans = [
        HostPlan(f"c{i}", f"192.168.0.{10 + i}", {f"alice{i}": ("users", "tenant-a")})
        for i in range(spec.clients)
    ]
    plans += [
        HostPlan(f"b{i}", f"10.2.0.{10 + i}", {f"bob{i}": ("users", "tenant-b")})
        for i in range(spec.clients)
    ]
    # A contractor badge: tenant-b credentials on a tenant-a subnet host.
    plans.append(HostPlan("a-contract", "192.168.0.40", {"mallory": ("users", "tenant-b")}))
    plans += _server_plans(spec)
    plans += _server_plans(spec, subnet_prefix="10.2.1", name_prefix="bsrv")
    a_clients = [p for p in plans if p.name.startswith("c")]
    b_clients = [p for p in plans if p.name.startswith("b") and p.role == "client"]
    a_servers = [p for p in plans if p.name.startswith("srv")]
    b_servers = [p for p in plans if p.name.startswith("bsrv")]
    intents = []
    for at in _jittered_times(spec, rng, spec.flows):
        roll = rng.random()
        if roll < 0.40:
            client, server, wanted = rng.choice(a_clients), rng.choice(a_servers), True
        elif roll < 0.65:
            client, server, wanted = rng.choice(b_clients), rng.choice(b_servers), True
        elif roll < 0.80:
            client, server, wanted = rng.choice(a_clients), rng.choice(b_servers), False
        elif roll < 0.90:
            client, server, wanted = rng.choice(b_clients), rng.choice(a_servers), False
        else:
            contractor = next(p for p in plans if p.name == "a-contract")
            client, server, wanted = contractor, rng.choice(a_servers), False
        user = next(iter(client.users))
        intents.append(FlowIntent(at, client.name, client.ip, "http", user, server.ip, 80, wanted=wanted))
    return plans, intents


def _mix_worm(spec, rng):
    """Clean web traffic with an outbreak racing cluster-wide quarantine."""
    plans = _client_plans(spec) + _server_plans(spec)
    plans += [
        HostPlan(f"w{i}", f"192.168.0.{40 + i}", {f"worm{i}": ("users",)}, role="infected")
        for i in range(2)
    ]
    clients = [p for p in plans if p.role == "client"]
    servers = [p for p in plans if p.role == "server"]
    infected = [p for p in plans if p.role == "infected"]
    targets = clients + servers
    t_q = _quarantine_time(spec)
    intents = []
    for at in _jittered_times(spec, rng, spec.flows, end_fraction=0.75):
        if rng.random() < 0.5:
            client, server = rng.choice(clients), rng.choice(servers)
            user = next(iter(client.users))
            intents.append(FlowIntent(at, client.name, client.ip, "http", user, server.ip, 80, wanted=True))
        else:
            at = max(at, spec.duration * 0.2)  # outbreak starts after warm-up
            worm = rng.choice(infected)
            target = rng.choice(targets)
            intents.append(FlowIntent(
                at, worm.name, worm.ip, "conficker", next(iter(worm.users)), target.ip, 80,
                wanted=False, expect_verdict=at < t_q - 0.05,
            ))
    return plans, intents


def _mix_legacy(spec, rng):
    """A 90 % daemon-less fleet: queries time out, policy still decides."""
    plans = _client_plans(spec) + _server_plans(spec)
    clients = [p for p in plans if p.role == "client"]
    servers = [p for p in plans if p.role == "server"]
    intents = []
    for at in _jittered_times(spec, rng, spec.flows):
        client, server = rng.choice(clients), rng.choice(servers)
        user = next(iter(client.users))
        intents.append(FlowIntent(at, client.name, client.ip, "http", user, server.ip, 80, wanted=True))
    return plans, intents


def _mix_retenant(spec, rng):
    """The web server's port is re-tenanted mid-run; caches must converge."""
    plans = _client_plans(spec) + _server_plans(spec)[:1]
    clients = [p for p in plans if p.role == "client"]
    server = next(p for p in plans if p.role == "server")
    t_r = _retenant_time(spec)
    intents = []
    for at in _jittered_times(spec, rng, spec.flows, end_fraction=0.85):
        if t_r <= at <= t_r + 0.3:
            at = t_r + 0.3 + (at - t_r)  # keep clear of the re-tenant instant
        client = rng.choice(clients)
        user = next(iter(client.users))
        intents.append(FlowIntent(
            at, client.name, client.ip, "http", user, server.ip, 80, wanted=at < t_r,
        ))
    return plans, intents


TRAFFIC_MIXES: dict[str, Callable] = {
    "web_burst": _mix_web_burst,
    "app_mix": _mix_app_mix,
    "user_mix": _mix_user_mix,
    "roaming": _mix_roaming,
    "multi_tenant": _mix_multi_tenant,
    "worm": _mix_worm,
    "legacy_fleet": _mix_legacy,
    "retenant": _mix_retenant,
}


# ======================================================================
# Failure schedules
# ======================================================================

def _quarantine_time(spec: ScenarioSpec) -> float:
    return spec.duration * 0.5


def _retenant_time(spec: ScenarioSpec) -> float:
    return spec.duration * 0.5


def _arm_none(ctx: CellContext) -> None:
    return None


def _arm_kill_shard(ctx: CellContext) -> None:
    cluster = ctx.net.cluster
    victim = cluster.shard_map.shards()[0]
    sim = ctx.net.topology.sim
    ctx.needs_monitoring = True
    sim.schedule_at(ctx.spec.duration * 0.35, cluster.kill, victim,
                    label="experiment.kill_shard")
    sim.schedule_at(ctx.spec.duration * 0.70, cluster.restore, victim,
                    label="experiment.restore_shard")


def _arm_partition_heal(ctx: CellContext) -> None:
    spines = ctx.switches["spine"]
    sim = ctx.net.topology.sim
    for spine in spines:
        sim.schedule_at(ctx.spec.duration * 0.35, spine.fail,
                        label="experiment.partition")
        sim.schedule_at(ctx.spec.duration * 0.60, spine.recover,
                        label="experiment.heal")


def _arm_quarantine_race(ctx: CellContext) -> None:
    t_q = _quarantine_time(ctx.spec)
    sim = ctx.net.topology.sim

    def quarantine() -> None:
        for plan in ctx.hosts_in_role("infected"):
            if ctx.net.cluster is not None:
                ctx.net.cluster.coordinator.quarantine_host(plan.ip)
            else:
                ctx.net.controller.quarantine_host(plan.ip)
            ctx.quarantined_since[plan.ip] = t_q

    sim.schedule_at(t_q, quarantine, label="experiment.quarantine")


def _arm_retenant(ctx: CellContext) -> None:
    t_r = _retenant_time(ctx.spec)
    sim = ctx.net.topology.sim

    def retenant() -> None:
        server = ctx.net.host(next(p.name for p in ctx.hosts_in_role("server")))
        server.sockets.close(ctx.retenant_socket)
        server.run_server("telnet", "root", 80)

    sim.schedule_at(t_r, retenant, label="experiment.retenant")


FAILURES: dict[str, Callable[[CellContext], None]] = {
    "none": _arm_none,
    "kill_shard": _arm_kill_shard,
    "partition_heal": _arm_partition_heal,
    "quarantine_race": _arm_quarantine_race,
    "retenant": _arm_retenant,
}

#: Blackout windows per failure: wanted flows opened inside expect no delivery.
def _blackout_window(spec: ScenarioSpec) -> Optional[tuple[float, float]]:
    if spec.failure == "partition_heal":
        return (spec.duration * 0.35 - 0.5, spec.duration * 0.60 + 0.5)
    return None


# ======================================================================
# Cell execution
# ======================================================================

def _build_network(spec: ScenarioSpec) -> IdentPPNetwork:
    config = ControllerConfig(
        pending_deadline=2.0,
        lifecycle_interval=0.5,
        decision_ttl=3.0,
        idle_timeout=1.0,
        state_timeout=2.0,
        query_cache_ttl=spec.query_cache_ttl,
        identity_plane=spec.identity_plane,
        push_promote_punts=2,
        push_idle_demote=5.0,
    )
    shards = CONTROLS[spec.control]
    if shards:
        return IdentPPClusterNetwork(
            f"matrix-{spec.control}", shards=shards, controller_config=config,
            policy_default_action="block",
            heartbeat_interval=0.05, miss_threshold=2,
        )
    return IdentPPNetwork(
        "matrix-single", controller_config=config, policy_default_action="block",
    )


def _place_hosts(ctx: CellContext, plans: list[HostPlan]) -> None:
    client_switches = ctx.switches["client"]
    server_switches = ctx.switches["server"]
    round_robin = {"client": 0, "server": 0}
    for plan in plans:
        if plan.role == "server":
            switch = server_switches[round_robin["server"] % len(server_switches)]
            round_robin["server"] += 1
        elif plan.role == "roam_a":
            switch = client_switches[0]
        elif plan.role == "roam_b":
            switch = client_switches[-1]
        else:
            switch = client_switches[round_robin["client"] % len(client_switches)]
            round_robin["client"] += 1
        host = ctx.net.add_host(
            HostSpec(name=plan.name, ip=plan.ip, users=dict(plan.users),
                     run_daemon=plan.run_daemon),
            switch=switch,
        )
        ctx.plans[plan.name] = plan
        if plan.server_app is not None:
            app, user, port = plan.server_app
            _process, socket = host.run_server(app, user, port)
            if ctx.spec.failure == "retenant":
                ctx.retenant_socket = socket


def _run_once(spec: ScenarioSpec, seed: int, registry: StatsRegistry) -> CellContext:
    """Execute one seeded repeat of one cell and collect everything."""
    rng = random.Random(seed)
    net = _build_network(spec)
    ctx = CellContext(spec=spec, net=net)
    TOPOLOGIES[spec.topology](ctx)
    net.set_policy(dict(POLICIES[spec.policy]))
    plans, intents = TRAFFIC_MIXES[spec.traffic](spec, rng)
    blackout = _blackout_window(spec)
    if blackout is not None:
        intents = [
            replace(intent, expect_delivery=False)
            if blackout[0] <= intent.at <= blackout[1] and intent.wanted
            else intent
            for intent in intents
        ]
    ctx.intents = intents
    _place_hosts(ctx, plans)
    FAILURES[spec.failure](ctx)
    sim = net.topology.sim
    if spec.sanitize:
        sim.enable_sanitizer()
    for counter in ("flows_injected", "decided", "failed_closed",
                    "delivered_wanted", "false_accepts", "false_rejects"):
        registry.counter(counter)

    def inject(intent: FlowIntent) -> None:
        host = net.host(intent.src_host)
        packet, _socket, _process = host.open_flow(
            intent.app, intent.user, intent.dst_ip, intent.dst_port,
        )
        ctx.injected.append((intent, FlowSpec.from_packet(packet)))
        registry.counter("flows_injected").increment()

    for intent in intents:
        sim.schedule_at(intent.at, inject, intent, label="experiment.inject")

    end_time = spec.duration

    def sample() -> bool:
        for name, value in invariants.network_flow_state(net).items():
            key = f"{name}_peak"
            ctx.peaks[key] = max(ctx.peaks.get(key, 0), value)
        return sim.now < end_time

    sim.schedule_repeating(0.25, sample, label="experiment.sampler")
    if ctx.needs_monitoring:
        net.start_monitoring()
    net.run(duration=spec.duration)
    if ctx.needs_monitoring:
        net.stop_monitoring()
    net.run()  # drain: lifecycle sweeps reclaim all remaining state
    _collect_metrics(ctx, registry)
    if spec.failure == "retenant":
        _collect_coherence_probes(ctx)
    return ctx


def _last_action_for(ctx: CellContext, flow: FlowSpec) -> Optional[str]:
    for record in reversed(invariants.network_audit_records(ctx.net)):
        if record.flow == flow:
            return record.action
    return None


def _collect_coherence_probes(ctx: CellContext) -> None:
    t_r = _retenant_time(ctx.spec)
    for intent, flow in ctx.injected:
        expected = "pass" if intent.at < t_r else "block"
        ctx.coherence_probes.append(invariants.CoherenceProbe(
            label=f"{intent.src_host}->{intent.dst_ip}:{intent.dst_port}@{intent.at:.2f}",
            expected=expected,
            observed=_last_action_for(ctx, flow),
        ))


def _delivered_flows(ctx: CellContext) -> set:
    delivered = set()
    for host in ctx.net.hosts.values():
        for packet in host.delivered:
            delivered.add(FlowSpec.from_packet(packet).as_tuple())
    return delivered


def _collect_metrics(ctx: CellContext, registry: StatsRegistry) -> None:
    records = invariants.network_audit_records(ctx.net)
    fresh = invariants.fresh_decisions(records)
    errored = invariants.failed_closed_flows(records)
    registry.counter("decided").increment(len(fresh))
    registry.counter("failed_closed").increment(len(errored))
    latency = registry.histogram("setup_latency")
    rate = registry.rate_counter("decisions", window=max(ctx.spec.duration, 1.0))
    for decisions in fresh.values():
        for record in decisions:
            rate.record(record.time)
            if record.query_latency is not None:
                latency.observe(record.query_latency)
    delivered = _delivered_flows(ctx)
    for intent, flow in ctx.injected:
        arrived = flow.as_tuple() in delivered
        if intent.wanted and intent.should_deliver() and not arrived:
            registry.counter("false_rejects").increment()
        elif not intent.wanted and arrived:
            registry.counter("false_accepts").increment()
        elif intent.wanted and arrived:
            registry.counter("delivered_wanted").increment()


# ======================================================================
# Invariant evaluation
# ======================================================================

def applicable_invariants(spec: ScenarioSpec) -> list[str]:
    """The invariant checkers a cell of this shape must run and pass."""
    names = [invariants.FAIL_CLOSED, invariants.BOUNDED_STATE]
    if spec.control != "single":
        names.append(invariants.ZERO_LOSS)
    if spec.failure == "quarantine_race":
        names.append(invariants.CONTAINMENT)
    if spec.failure == "retenant":
        names.append(invariants.CACHE_COHERENCE)
    return names


def _state_caps(ctx: CellContext) -> dict[str, float]:
    spec = ctx.spec
    flows = len(ctx.injected)
    switches = len(ctx.net.switches)
    quarantine_allowance = 4.0 * len(ctx.quarantined_since) * switches
    return {
        "pending_peak": float(flows),
        "decision_cache_peak": 2.0 * flows + 8,
        "state_table_peak": 2.0 * flows + 8,
        "flow_table_peak": 6.0 * flows + quarantine_allowance + 8,
        "pending_final": 0.0,
        "buffered_final": 0.0,
        "decision_cache_final": 0.0,
        "state_table_final": 0.0,
        "flow_table_final": quarantine_allowance,
        # Push plane: subscriptions are bounded by the host population
        # while running and fully demoted (idle sweeper) after drain.
        "subscriptions_peak": float(len(ctx.net.hosts)),
        "subscriptions_final": 0.0,
    }


def evaluate_invariants(ctx: CellContext) -> dict[str, invariants.InvariantResult]:
    """Run every applicable checker against one finished repeat."""
    spec = ctx.spec
    records = invariants.network_audit_records(ctx.net)
    final = invariants.network_flow_state(ctx.net)
    accounted_flows = [
        flow for intent, flow in ctx.injected if intent.expect_verdict
    ]
    results: dict[str, invariants.InvariantResult] = {}
    for name in applicable_invariants(spec):
        if name == invariants.FAIL_CLOSED:
            results[name] = invariants.check_fail_closed(
                accounted_flows, records,
                pending=final["pending"], buffered=final["buffered"],
            )
        elif name == invariants.ZERO_LOSS:
            results[name] = invariants.check_zero_loss(
                accounted_flows, records,
                pending=final["pending"], buffered=final["buffered"],
            )
        elif name == invariants.CONTAINMENT:
            results[name] = invariants.check_containment(
                invariants.network_deliveries(ctx.net),
                ctx.quarantined_since,
                grace=0.1,
            )
        elif name == invariants.CACHE_COHERENCE:
            results[name] = invariants.check_cache_coherence(ctx.coherence_probes)
        elif name == invariants.BOUNDED_STATE:
            observed = dict(ctx.peaks)
            observed.update({f"{key}_final": value for key, value in final.items()})
            results[name] = invariants.check_bounded_state(observed, _state_caps(ctx))
    return results


# ======================================================================
# Baseline comparison
# ======================================================================

def _evaluate_baselines(ctx: CellContext) -> dict[str, dict[str, float]]:
    baselines = build_baselines(ctx.spec.policy, ctx.plans)
    comparison: dict[str, dict[str, float]] = {}
    for arch, policy in baselines.items():
        stats = {"allowed": 0, "blocked": 0, "false_accepts": 0, "false_rejects": 0}
        for index, intent in enumerate(ctx.intents):
            action = policy.decide(intent.planned_flow(index))
            allowed = action == "pass"
            stats["allowed" if allowed else "blocked"] += 1
            if allowed and not intent.wanted:
                stats["false_accepts"] += 1
            elif not allowed and intent.wanted:
                stats["false_rejects"] += 1
        total = max(len(ctx.intents), 1)
        stats["accuracy"] = round(
            1.0 - (stats["false_accepts"] + stats["false_rejects"]) / total, 4
        )
        comparison[arch] = stats
    return comparison


def _identpp_outcomes(ctx: CellContext) -> dict[str, float]:
    delivered = _delivered_flows(ctx)
    stats = {"allowed": 0, "blocked": 0, "false_accepts": 0, "false_rejects": 0, "judged": 0}
    for intent, flow in ctx.injected:
        arrived = flow.as_tuple() in delivered
        stats["allowed" if arrived else "blocked"] += 1
        if intent.wanted and not intent.should_deliver():
            continue  # blackout windows: delivery is not a verdict here
        stats["judged"] += 1
        if arrived and not intent.wanted:
            stats["false_accepts"] += 1
        elif not arrived and intent.wanted:
            stats["false_rejects"] += 1
    return stats


# ======================================================================
# The experiment runner
# ======================================================================

@dataclass
class CellReport:
    """Everything one cell produced across its repeats."""

    spec: ScenarioSpec
    metrics: dict[str, object]
    architectures: dict[str, dict[str, float]]
    invariants: dict[str, dict[str, object]]
    repeats: int
    trace_hashes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(entry["passed"] for entry in self.invariants.values())

    def as_dict(self) -> dict[str, object]:
        return {
            "cell": self.spec.name,
            "axes": {
                "topology": self.spec.topology,
                "control": self.spec.control,
                "policy": self.spec.policy,
                "traffic": self.spec.traffic,
                "failure": self.spec.failure,
                "daemon_fraction": self.spec.daemon_fraction,
                "identity_plane": self.spec.identity_plane,
            },
            "seed": self.spec.seed,
            "repeats": self.repeats,
            "metrics": self.metrics,
            "architectures": self.architectures,
            "invariants": self.invariants,
            "passed": self.passed,
        }


@dataclass
class ExperimentReport:
    """The aggregated result of one whole matrix run."""

    name: str
    cells: list[CellReport]

    @property
    def passed(self) -> bool:
        return all(cell.passed for cell in self.cells)

    def failed_cells(self) -> list[CellReport]:
        return [cell for cell in self.cells if not cell.passed]

    def as_dict(self) -> dict[str, object]:
        return {
            "experiment": self.name,
            "cells": [cell.as_dict() for cell in self.cells],
            "cells_total": len(self.cells),
            "cells_failed": len(self.failed_cells()),
            "passed": self.passed,
        }


class Experiment:
    """A named collection of scenario specs run with seeded repeats.

    The exemplar this follows used a shared mutable default for its
    scenario list; here ``scenarios`` defaults to ``None`` and each
    instance builds its own list (see lint rule R5).
    """

    def __init__(
        self,
        name: str,
        scenarios: Optional[Iterable[ScenarioSpec]] = None,
        *,
        nb_repeats: int = 1,
    ) -> None:
        if nb_repeats < 1:
            raise ValueError(f"nb_repeats must be >= 1 (got {nb_repeats})")
        self.name = name
        self.scenarios: list[ScenarioSpec] = list(scenarios) if scenarios is not None else []
        self.nb_repeats = nb_repeats

    def add(self, spec: ScenarioSpec) -> "Experiment":
        spec.validate()
        self.scenarios.append(spec)
        return self

    def run(self, *, progress: Optional[Callable[[str], None]] = None) -> ExperimentReport:
        """Run every cell ``nb_repeats`` times and aggregate the report."""
        cells = []
        for spec in self.scenarios:
            spec.validate()
            cells.append(self._run_cell(spec, progress))
        return ExperimentReport(name=self.name, cells=cells)

    def _run_cell(self, spec: ScenarioSpec, progress) -> CellReport:
        registry = StatsRegistry()
        merged: dict[str, invariants.InvariantResult] = {}
        architectures: dict[str, dict[str, float]] = {}
        trace_hashes: list[str] = []
        for repeat in range(self.nb_repeats):
            ctx = _run_once(spec, spec.seed + repeat, registry)
            if spec.sanitize and ctx.net.topology.sim.sanitizer is not None:
                trace_hashes.append(ctx.net.topology.sim.sanitizer.trace_hash)
            for name, result in evaluate_invariants(ctx).items():
                if name not in merged:
                    merged[name] = result
                else:
                    merged[name].violations.extend(result.violations)
            if repeat == 0:
                architectures = _evaluate_baselines(ctx)
            identpp = architectures.setdefault(
                ARCH_IDENTPP,
                {"allowed": 0, "blocked": 0, "false_accepts": 0,
                 "false_rejects": 0, "judged": 0},
            )
            for key, value in _identpp_outcomes(ctx).items():
                identpp[key] += value
        identpp = architectures[ARCH_IDENTPP]
        identpp["accuracy"] = round(
            1.0
            - (identpp["false_accepts"] + identpp["false_rejects"])
            / max(identpp.pop("judged"), 1),
            4,
        )
        metrics = registry.snapshot(now=spec.duration)
        report = CellReport(
            spec=spec,
            metrics=metrics,
            architectures=architectures,
            invariants={name: result.as_dict() for name, result in merged.items()},
            repeats=self.nb_repeats,
            trace_hashes=trace_hashes,
        )
        if progress is not None:
            status = "ok" if report.passed else "FAIL"
            progress(f"  [{status}] {spec.name}")
        return report


# ======================================================================
# The committed default matrix (ROADMAP item 3's >= 20 cells)
# ======================================================================

#: ROADMAP item 3's acceptance floor for the committed matrix size.
MATRIX_MIN_CELLS = 20


def default_matrix() -> list[ScenarioSpec]:
    """The committed scenario matrix: 30 cells across every axis."""
    cells: list[ScenarioSpec] = []
    base = ScenarioSpec()
    # Core sweep: topology x control for the port- and app-gated stories.
    for policy, traffic in (("web_open", "web_burst"), ("app_gated", "app_mix")):
        cells += expand_grid(
            {"topology": ["edge_core", "spine_leaf"], "control": ["single", "cluster2"]},
            base=replace(base, policy=policy, traffic=traffic),
        )
    # Failover sweep: a shard dies mid-burst on a 4-way cluster.
    for policy, traffic in (("web_open", "web_burst"), ("app_gated", "app_mix")):
        cells += expand_grid(
            {"topology": ["edge_core", "spine_leaf"]},
            base=replace(base, control="cluster4", failure="kill_shard",
                         policy=policy, traffic=traffic, seed=base.seed + 100),
        )
    # Users borrow machines; policy follows people, not ports.
    cells += expand_grid(
        {"control": ["single", "cluster2"]},
        base=replace(base, policy="user_gated", traffic="user_mix", seed=base.seed + 200),
    )
    # A staff user re-homes across leaves mid-run.
    cells += expand_grid(
        {"control": ["single", "cluster2"]},
        base=replace(base, topology="spine_leaf", policy="user_gated",
                     traffic="roaming", seed=base.seed + 300),
    )
    # Multi-tenant isolation incl. a contractor badge on the wrong subnet.
    cells += expand_grid(
        {"topology": ["edge_core", "spine_leaf"]},
        base=replace(base, control="cluster2", policy="tenant_iso",
                     traffic="multi_tenant", seed=base.seed + 400),
    )
    # The fabric partitions and heals; flows in the blackout fail closed.
    cells += expand_grid(
        {"control": ["single", "cluster2"]},
        base=replace(base, topology="spine_leaf", failure="partition_heal",
                     seed=base.seed + 500),
    )
    # A worm outbreak races cluster-wide quarantine.
    cells += expand_grid(
        {"control": ["cluster2", "cluster4"]},
        base=replace(base, policy="web_open", traffic="worm",
                     failure="quarantine_race", seed=base.seed + 600),
    )
    # Identity changes mid-run; cached answers must converge.
    cells += expand_grid(
        {"control": ["single", "cluster2"]},
        base=replace(base, policy="dst_app_gated", traffic="retenant",
                     failure="retenant", query_cache_ttl=5.0, seed=base.seed + 700),
    )
    # 90 % daemon-less legacy fleet: ident++ degrades to the firewall.
    cells += expand_grid(
        {"control": ["single", "cluster2"]},
        base=replace(base, policy="web_open", traffic="legacy_fleet",
                     clients=10, daemon_fraction=0.1, query_cache_ttl=2.0,
                     seed=base.seed + 800),
    )
    # Push identity plane (PR 10): a flash crowd hammers two servers on
    # both planes (A/B), push rides out a shard kill with subscription
    # re-homing, and push degrades gracefully on a 90 % daemon-less fleet.
    cells += expand_grid(
        {"identity_plane": ["pull", "push"]},
        base=replace(base, topology="single", policy="web_open",
                     traffic="web_burst", flows=48, query_cache_ttl=2.0,
                     seed=base.seed + 900),
    )
    cells += expand_grid(
        {"identity_plane": ["push"]},
        base=replace(base, control="cluster4", failure="kill_shard",
                     query_cache_ttl=2.0, seed=base.seed + 920),
    )
    cells += expand_grid(
        {"identity_plane": ["push"]},
        base=replace(base, policy="web_open", traffic="legacy_fleet",
                     clients=10, daemon_fraction=0.1, query_cache_ttl=2.0,
                     seed=base.seed + 940),
    )
    # Cell names must be unique: the grids above never collide, keep it so.
    names = [spec.name for spec in cells]
    assert len(names) == len(set(names)), "duplicate cell names in default matrix"
    return cells


def run_default_matrix(*, nb_repeats: int = 2, progress=None) -> ExperimentReport:
    """Run the committed matrix (what ``make matrix`` and the bench use)."""
    experiment = Experiment("scenario-matrix", default_matrix(), nb_repeats=nb_repeats)
    return experiment.run(progress=progress)


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="Run the committed scenario matrix")
    parser.add_argument("--repeats", type=int, default=2, help="seeded repeats per cell")
    parser.add_argument("--quick", action="store_true", help="run only the first 4 cells")
    args = parser.parse_args(argv)
    specs = default_matrix()
    if args.quick:
        specs = specs[:4]
    experiment = Experiment("scenario-matrix", specs, nb_repeats=args.repeats)
    print(f"scenario matrix: {len(specs)} cells x {args.repeats} repeats")
    report = experiment.run(progress=print)
    print(f"\n{'cell':58s} {'invariants':28s} identpp_acc")
    for cell in report.cells:
        inv = ",".join(sorted(cell.invariants))
        acc = cell.architectures[ARCH_IDENTPP]["accuracy"]
        flag = "ok " if cell.passed else "FAIL"
        print(f"[{flag}] {cell.spec.name:55s} {inv:28s} {acc:.3f}")
    failed = report.failed_cells()
    if failed:
        print(f"\nmatrix FAILED: {len(failed)}/{len(report.cells)} cells violated invariants")
        for cell in failed:
            for name, entry in cell.invariants.items():
                for violation in entry["violations"]:
                    print(f"  {cell.spec.name}: [{name}] {violation}")
        return 1
    print(f"\nmatrix ok: {len(report.cells)} cells, all invariants hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
