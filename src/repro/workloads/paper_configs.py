"""The configuration listings of Figures 2–8, as loadable text.

Each function returns the text of one configuration file from the paper.
Where the paper prints a placeholder signature (``21oir...w3eda``) or
public key (``sk3ajf...fa932``), the functions take a
:class:`~repro.crypto.signatures.Signer` (or key material) and substitute
a real signature/key so that ``verify()`` actually verifies.

Addresses follow the paper where given (the mail server
``192.168.42.32``, the LAN ``192.168.0.0/24``, the server ``192.168.1.1``
and the skype update prefix ``123.123.123.0/24``); tables the paper
references but never defines (``<research-machines>``,
``<production-machines>``) get documented defaults here.
"""

from __future__ import annotations

from repro.crypto.signatures import Signer
from repro.hosts.applications import Application

# ---------------------------------------------------------------------------
# Section 3.3 example (the PF+=2 introduction rule)
# ---------------------------------------------------------------------------

SECTION_33_EXAMPLE = """\
table <mail-server> {192.168.42.32}
block all
pass from any \\
    with member(@src[groupID], users) \\
    with eq(@src[app-name], pine) \\
    to <mail-server> \\
    with eq(@dst[userID], smtp)
"""


# ---------------------------------------------------------------------------
# Figure 2: the three controller configuration files of the Skype policy
# ---------------------------------------------------------------------------

FIGURE2_LOCAL_HEADER = """\
table <server> { 192.168.1.1 }
table <lan> { 192.168.0.0/24 }
table <int_hosts> { <lan> <server> }

allowed = "{ http ssh }"   # a macro of apps

# default deny
block all

# allow connections outbound
pass from <int_hosts> \\
    to !<int_hosts> \\
    keep state

# allow all traffic from approved apps
pass from <int_hosts> \\
    to <int_hosts> \\
    with member(@src[name], $allowed) \\
    keep state
"""

FIGURE2_SKYPE = """\
table <skype_update> { 123.123.123.0/24 }

# skype to skype allowed
pass all \\
    with eq(@src[name], skype) \\
    with eq(@dst[name], skype)

# skype update feature
pass from any \\
    to <skype_update> port 80 \\
    with eq(@src[name], skype) \\
    keep state
"""

FIGURE2_LOCAL_FOOTER = """\
# no really old versions of skype
block all \\
    with eq(@src[name], skype) \\
    with lt(@src[version], 200)

# no skype to server
block from any \\
    to <server> \\
    with eq(@src[name], skype)
"""


def figure2_control_files() -> dict[str, str]:
    """Return the Figure 2 configuration exactly as the controller loads it."""
    return {
        "00-local-header.control": FIGURE2_LOCAL_HEADER,
        "50-skype.control": FIGURE2_SKYPE,
        "99-local-footer.control": FIGURE2_LOCAL_FOOTER,
    }


# ---------------------------------------------------------------------------
# Figure 3: the skype @app daemon configuration
# ---------------------------------------------------------------------------

SKYPE_REQUIREMENTS = (
    "pass from any port http with eq(@src[name], skype) "
    "pass from any port https with eq(@src[name], skype)"
)


def figure3_skype_daemon_config(app: Application, signer: Signer | None = None) -> str:
    """Return the Figure 3 ``@app /usr/bin/skype`` block.

    The paper shows a placeholder ``req-sig``; when a ``signer`` is given
    the signature is computed over ``(exe-hash, app-name, requirements)``
    exactly as the ``verify()`` calls in Figures 5 and 7 expect.
    """
    requirements = SKYPE_REQUIREMENTS
    if signer is not None:
        req_sig = signer.sign([app.exe_hash, app.name, requirements])
    else:
        req_sig = "21oir...w3eda"
    return f"""\
@app {app.path} {{
name : {app.name}
version : {app.version}
vendor : {app.vendor or 'skype.com'}
type : voip
requirements : {requirements}
req-sig : {req_sig}
}}
"""


# ---------------------------------------------------------------------------
# Figures 4 and 5: delegation to users (the research application)
# ---------------------------------------------------------------------------

RESEARCH_REQUIREMENTS = (
    "block all "
    "pass all with eq(@src[name], research-app) with eq(@dst[name], research-app)"
)

#: Default contents for the tables Figure 5 references but never defines.
DEFAULT_RESEARCH_MACHINES = ("192.168.2.0/24",)
DEFAULT_PRODUCTION_MACHINES = ("192.168.3.0/24",)


def figure4_research_daemon_config(app: Application, signer: Signer) -> str:
    """Return the Figure 4 ``research-app.conf`` with a real user signature."""
    requirements = RESEARCH_REQUIREMENTS
    req_sig = signer.sign([app.exe_hash, app.name, requirements])
    return f"""\
@app {app.path} {{
name : {app.name}
# research-apps only talk to each other
requirements : {requirements}
req-sig : {req_sig}
}}
"""


def figure5_research_control(
    research_pubkey_hex: str,
    admin_pubkey_hex: str = "",
    *,
    research_machines: tuple[str, ...] = DEFAULT_RESEARCH_MACHINES,
    production_machines: tuple[str, ...] = DEFAULT_PRODUCTION_MACHINES,
) -> dict[str, str]:
    """Return the Figure 5 ``30-research.control`` plus the table/default file it needs."""
    admin_entry = f" admin : {admin_pubkey_hex}" if admin_pubkey_hex else ""
    tables = f"""\
table <research-machines> {{ {' '.join(research_machines)} }}
table <production-machines> {{ {' '.join(production_machines)} }}

# default deny
block all
"""
    research = f"""\
dict <pubkeys> {{ research : {research_pubkey_hex}{admin_entry} }}

# Allow only researchers to run applications
# and only access their own machines.
# Let researchers specify what their apps need.
pass from <research-machines> \\
    with member(@src[groupID], research) \\
    to !<production-machines> \\
    with member(@dst[groupID], research) \\
    with allowed(@dst[requirements]) \\
    with verify(@dst[req-sig], \\
        @pubkeys[research], \\
        @dst[exe-hash], \\
        @dst[app-name], \\
        @dst[requirements])
"""
    return {
        "00-research-tables.control": tables,
        "30-research.control": research,
    }


# ---------------------------------------------------------------------------
# Figures 6 and 7: trust delegation to a third party ("Secur")
# ---------------------------------------------------------------------------

THUNDERBIRD_REQUIREMENTS = (
    "block all "
    "pass from any with eq(@src[name], thunderbird) "
    "to any with eq(@dst[type], email-server)"
)


def figure6_thunderbird_daemon_config(app: Application, secur: Signer) -> str:
    """Return the Figure 6 ``thunderbird.conf`` supplied by the third party Secur."""
    requirements = THUNDERBIRD_REQUIREMENTS
    req_sig = secur.sign([app.exe_hash, app.name, requirements])
    return f"""\
@app {app.path} {{
name : {app.name}
type : email-client
rule-maker : Secur
requirements : {requirements}
req-sig : {req_sig}
}}
"""


def figure7_secur_control(secur_pubkey_hex: str) -> dict[str, str]:
    """Return the Figure 7 ``30-secur.control`` plus a default-deny header."""
    header = """\
# default deny
block all
"""
    secur = f"""\
dict <pubkeys> {{ Secur : {secur_pubkey_hex} }}

# Allow users to run any applications approved
# by Secur and following rules Secur provides
pass from any \\
    with eq(@src[rule-maker], Secur) \\
    with allowed(@src[requirements]) \\
    with verify(@src[req-sig], \\
        @pubkeys[Secur], \\
        @src[exe-hash], \\
        @src[app-name], \\
        @src[requirements]) \\
    to any
"""
    return {
        "00-default.control": header,
        "30-secur.control": secur,
    }


# ---------------------------------------------------------------------------
# Figure 8: user and application-specific rules (Conficker / MS08-067)
# ---------------------------------------------------------------------------

FIGURE8_USER_RULES = """\
# default block everything
block all

# only allow "system" users in the LAN
pass from <lan> \\
    with eq(@src[userID], system) \\
    to <lan> \\
    with eq(@dst[userID], system) \\
    with eq(@dst[name], Server) \\
    with includes(@dst[os-patch], MS08-067)
"""


def figure8_control_files(lan: str = "192.168.0.0/16") -> dict[str, str]:
    """Return the Figure 8 ``10-user-rules.control`` plus the LAN table it references."""
    tables = f"""\
table <lan> {{ {lan} }}
"""
    return {
        "05-tables.control": tables,
        "10-user-rules.control": FIGURE8_USER_RULES,
    }
