"""Users and groups on simulated end-hosts.

PF+=2 policies match on ``userID`` and ``groupID`` keys reported by the
ident++ daemon (Figures 2, 5 and 8 use ``users``, ``research``,
``system`` and ``smtp`` principals), so the end-host model needs a small
account database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.exceptions import UserError


@dataclass(frozen=True)
class Group:
    """A named group with a numeric gid."""

    name: str
    gid: int

    def __str__(self) -> str:
        return self.name


@dataclass
class User:
    """A user account.

    Attributes:
        name: Login name; this is the value reported as ``userID`` in
            ident++ responses.
        uid: Numeric user id.  uid 0 is the superuser.
        groups: Names of the groups the user belongs to (reported as
            ``groupID`` values).
        privileged: Whether the account may bind privileged (< 1024)
            ports without being uid 0 — the Windows ``system`` account
            behaves this way (Figure 8 runs the ``Server`` service as
            ``system`` on port 445).
        compromised: Set by the security harness when an attacker has
            taken over this account.
    """

    name: str
    uid: int
    groups: set[str] = field(default_factory=set)
    privileged: bool = False
    compromised: bool = False

    @property
    def is_superuser(self) -> bool:
        """Return ``True`` for uid 0."""
        return self.uid == 0

    @property
    def can_bind_privileged_ports(self) -> bool:
        """Return ``True`` when the account may bind ports below 1024."""
        return self.is_superuser or self.privileged

    def in_group(self, group: str) -> bool:
        """Return ``True`` if the user belongs to ``group``."""
        return group in self.groups

    def __str__(self) -> str:
        return self.name


class UserDatabase:
    """The account database of one end-host (``/etc/passwd`` + ``/etc/group``)."""

    def __init__(self) -> None:
        self._users: dict[str, User] = {}
        self._groups: dict[str, Group] = {}
        self._next_uid = 1000
        self._next_gid = 1000
        # Every host has a superuser and a system account out of the box,
        # mirroring the paper's Figure 8 "system" principal.
        self.add_group("root", gid=0)
        self.add_group("system", gid=1)
        self.add_user("root", uid=0, groups=["root"])
        self.add_user("system", uid=1, groups=["system"], privileged=True)

    # ------------------------------------------------------------------
    # Groups
    # ------------------------------------------------------------------

    def add_group(self, name: str, gid: int | None = None) -> Group:
        """Create a group.  Re-adding an existing group returns it unchanged."""
        if name in self._groups:
            return self._groups[name]
        if gid is None:
            gid = self._next_gid
            self._next_gid += 1
        group = Group(name=name, gid=gid)
        self._groups[name] = group
        return group

    def group(self, name: str) -> Group:
        """Return the group with the given name."""
        try:
            return self._groups[name]
        except KeyError as exc:
            raise UserError(f"unknown group: {name}") from exc

    def groups(self) -> Iterator[Group]:
        """Iterate over groups sorted by name."""
        for name in sorted(self._groups):
            yield self._groups[name]

    # ------------------------------------------------------------------
    # Users
    # ------------------------------------------------------------------

    def add_user(
        self,
        name: str,
        uid: int | None = None,
        groups: Iterable[str] = (),
        *,
        privileged: bool = False,
    ) -> User:
        """Create a user, creating any missing groups on the fly."""
        if name in self._users:
            raise UserError(f"user already exists: {name}")
        if uid is None:
            uid = self._next_uid
            self._next_uid += 1
        group_names = set(groups)
        for group_name in group_names:
            self.add_group(group_name)
        user = User(name=name, uid=uid, groups=group_names, privileged=privileged)
        self._users[name] = user
        return user

    def user(self, name: str) -> User:
        """Return the user with the given login name."""
        try:
            return self._users[name]
        except KeyError as exc:
            raise UserError(f"unknown user: {name}") from exc

    def has_user(self, name: str) -> bool:
        """Return ``True`` if the login name exists."""
        return name in self._users

    def user_by_uid(self, uid: int) -> Optional[User]:
        """Return the user with the given uid, or ``None``."""
        for user in self._users.values():
            if user.uid == uid:
                return user
        return None

    def users(self) -> Iterator[User]:
        """Iterate over users sorted by name."""
        for name in sorted(self._users):
            yield self._users[name]

    def add_to_group(self, user_name: str, group_name: str) -> None:
        """Add an existing user to a group (creating the group if needed)."""
        user = self.user(user_name)
        self.add_group(group_name)
        user.groups.add(group_name)

    def members_of(self, group_name: str) -> list[User]:
        """Return all users belonging to ``group_name``."""
        return [user for user in self.users() if user.in_group(group_name)]

    def __len__(self) -> int:
        return len(self._users)
