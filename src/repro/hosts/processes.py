"""Process table for simulated end-hosts.

The ident++ daemon "uses the 5-tuple in the query packet to find the
process ID and user ID associated with the flow ... [and] uses the
process ID to find the file name of the process's executable image"
(§3.5).  :class:`ProcessTable` provides exactly those lookups, and also
models the ptrace-isolation discussion from §5.4 (processes launched
``setgid`` with a no-access group cannot be subverted via ``ptrace``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.exceptions import ProcessError
from repro.hosts.applications import Application
from repro.hosts.users import User


@dataclass
class Process:
    """A running process.

    Attributes:
        pid: Process id, unique per host.
        user: The account the process runs as.
        application: The executable image backing the process.
        setgid_isolated: ``True`` when the administrator launched the
            process setgid with a file-access-less group (§5.4), which
            protects it from ``ptrace`` subversion by the same user's
            other processes.
        compromised: Set by the security harness when an attacker
            controls this process.
        runtime_keys: Key/value pairs the application handed to the
            ident++ daemon at run time over the Unix-domain socket
            (e.g. a browser distinguishing click-initiated flows).
    """

    pid: int
    user: User
    application: Application
    setgid_isolated: bool = False
    compromised: bool = False
    runtime_keys: dict[str, str] = field(default_factory=dict)

    @property
    def exe_path(self) -> str:
        """Return the path of the executable image backing the process."""
        return self.application.path

    def can_be_ptraced_by(self, other: "Process") -> bool:
        """Return ``True`` if ``other`` may attach to this process with ptrace.

        Mirrors the §5.4 discussion: same (non-root) user implies yes,
        unless this process was launched with setgid isolation.
        """
        if other.user.is_superuser:
            return True
        if self.setgid_isolated:
            return False
        return other.user.name == self.user.name

    def __str__(self) -> str:
        return f"pid={self.pid} user={self.user.name} exe={self.exe_path}"


class ProcessTable:
    """All running processes on one end-host."""

    def __init__(self) -> None:
        self._processes: dict[int, Process] = {}
        self._pid_counter = itertools.count(100)

    def spawn(
        self,
        user: User,
        application: Application,
        *,
        setgid_isolated: bool = False,
        runtime_keys: Optional[dict[str, str]] = None,
    ) -> Process:
        """Start a new process for ``user`` running ``application``."""
        process = Process(
            pid=next(self._pid_counter),
            user=user,
            application=application,
            setgid_isolated=setgid_isolated,
            runtime_keys=dict(runtime_keys or {}),
        )
        self._processes[process.pid] = process
        return process

    def kill(self, pid: int) -> None:
        """Terminate the process with the given pid."""
        if pid not in self._processes:
            raise ProcessError(f"no such process: {pid}")
        del self._processes[pid]

    def get(self, pid: int) -> Process:
        """Return the process with the given pid."""
        try:
            return self._processes[pid]
        except KeyError as exc:
            raise ProcessError(f"no such process: {pid}") from exc

    def find(self, pid: int) -> Optional[Process]:
        """Return the process with the given pid, or ``None``."""
        return self._processes.get(pid)

    def by_user(self, user_name: str) -> list[Process]:
        """Return every process owned by ``user_name``."""
        return [p for p in self if p.user.name == user_name]

    def by_application(self, app_name: str) -> list[Process]:
        """Return every process running the application named ``app_name``."""
        return [p for p in self if p.application.name == app_name]

    def __iter__(self) -> Iterator[Process]:
        for pid in sorted(self._processes):
            yield self._processes[pid]

    def __len__(self) -> int:
        return len(self._processes)

    def __contains__(self, pid: int) -> bool:
        return pid in self._processes
