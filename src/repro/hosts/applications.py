"""Installed applications on simulated end-hosts.

ident++ responses report application-level facts the network cannot see
on its own — the application *name*, the *hash of the executable*, its
*version* and *vendor* (§2, Figure 3).  An :class:`Application` models an
installed program; the :class:`ApplicationRegistry` is the host's
"filesystem view" mapping executable paths to applications, which is how
the daemon resolves a process to its configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.exceptions import HostError
from repro.crypto.hashing import executable_hash


@dataclass
class Application:
    """An installed application (an executable image plus metadata).

    Attributes:
        name: Short application name as reported in the ``name`` /
            ``app-name`` keys (``skype``, ``pine``, ``thunderbird`` ...).
        path: Absolute executable path (``/usr/bin/skype``); daemon
            configuration ``@app`` blocks are keyed by this path.
        version: Version as an integer-like string; Figure 2's
            ``lt(@src[version], 200)`` compares it numerically.
        vendor: Vendor string (``skype.com``).
        app_type: Free-form type tag (``voip``, ``email-client``); used by
            the thunderbird example's ``eq(@dst[type], email-server)``.
        contents: Synthetic executable contents; only the hash matters.
        default_port: The server port the application listens on when run
            as a service (0 for pure clients).
        extra_keys: Additional static key/value pairs the application
            wants reported for its flows.
    """

    name: str
    path: str
    version: str = "1"
    vendor: str = ""
    app_type: str = ""
    contents: str = ""
    default_port: int = 0
    extra_keys: dict[str, str] = field(default_factory=dict)

    @property
    def exe_hash(self) -> str:
        """Return the stable hash of the executable image."""
        return executable_hash(self.path, self.contents or self.name, self.version)

    def identity_keys(self) -> dict[str, str]:
        """Return the key/value pairs the daemon reports for this application.

        These are the application-intrinsic facts; user- and flow-specific
        keys are added by the daemon itself.
        """
        pairs = {
            "name": self.name,
            "app-name": self.name,
            "exe-hash": self.exe_hash,
            "version": self.version,
        }
        if self.vendor:
            pairs["vendor"] = self.vendor
        if self.app_type:
            pairs["type"] = self.app_type
        pairs.update(self.extra_keys)
        return pairs

    def tampered_copy(self, *, suffix: str = ".trojan") -> "Application":
        """Return a copy with different executable contents (same name/path).

        The security harness uses this to model a trojaned binary: the
        reported name stays the same but the executable hash changes, so
        signature checks over ``exe-hash`` fail.
        """
        return Application(
            name=self.name,
            path=self.path,
            version=self.version,
            vendor=self.vendor,
            app_type=self.app_type,
            contents=(self.contents or self.name) + suffix,
            default_port=self.default_port,
            extra_keys=dict(self.extra_keys),
        )

    def __str__(self) -> str:
        return f"{self.name} ({self.path}, v{self.version})"


class ApplicationRegistry:
    """The set of applications installed on one end-host."""

    def __init__(self) -> None:
        self._by_path: dict[str, Application] = {}
        self._by_name: dict[str, Application] = {}

    def install(self, app: Application) -> Application:
        """Install an application; reinstalling a path replaces the old binary."""
        self._by_path[app.path] = app
        self._by_name[app.name] = app
        return app

    def uninstall(self, path: str) -> None:
        """Remove the application installed at ``path``."""
        app = self._by_path.pop(path, None)
        if app is None:
            raise HostError(f"no application installed at {path}")
        if self._by_name.get(app.name) is app:
            del self._by_name[app.name]

    def by_path(self, path: str) -> Optional[Application]:
        """Return the application installed at ``path``, or ``None``."""
        return self._by_path.get(path)

    def by_name(self, name: str) -> Optional[Application]:
        """Return the application with short name ``name``, or ``None``."""
        return self._by_name.get(name)

    def require(self, name_or_path: str) -> Application:
        """Return an installed application by name or path, raising if absent."""
        app = self.by_path(name_or_path) or self.by_name(name_or_path)
        if app is None:
            raise HostError(f"application not installed: {name_or_path}")
        return app

    def __contains__(self, name_or_path: str) -> bool:
        return name_or_path in self._by_path or name_or_path in self._by_name

    def __len__(self) -> int:
        return len(self._by_path)

    def __iter__(self) -> Iterator[Application]:
        for path in sorted(self._by_path):
            yield self._by_path[path]


def standard_applications() -> list[Application]:
    """Return the catalogue of applications used throughout the paper's examples.

    Includes every application the paper's figures mention (skype, pine,
    thunderbird, the research application, the Windows ``Server`` service)
    plus common enterprise applications used by the workload generators.
    """
    return [
        Application(
            name="skype", path="/usr/bin/skype", version="210", vendor="skype.com",
            app_type="voip", default_port=0,
        ),
        Application(
            name="skype-old", path="/opt/old/skype", version="150", vendor="skype.com",
            app_type="voip", default_port=0, extra_keys={"name": "skype", "app-name": "skype"},
        ),
        Application(
            name="pine", path="/usr/bin/pine", version="46", vendor="uw.edu",
            app_type="email-client",
        ),
        Application(
            name="thunderbird", path="/usr/bin/thunderbird", version="3", vendor="mozilla.org",
            app_type="email-client",
        ),
        Application(
            name="research-app", path="/usr/bin/research-app", version="1", vendor="local",
            app_type="research", default_port=7777,
        ),
        Application(
            name="Server", path="C:/Windows/System32/services.exe", version="6", vendor="microsoft.com",
            app_type="windows-service", default_port=445,
        ),
        Application(
            name="smtp-server", path="/usr/sbin/sendmail", version="8", vendor="sendmail.org",
            app_type="email-server", default_port=25,
        ),
        Application(
            name="http", path="/usr/bin/firefox", version="68", vendor="mozilla.org",
            app_type="browser", default_port=0,
        ),
        Application(
            name="httpd", path="/usr/sbin/httpd", version="2", vendor="apache.org",
            app_type="web-server", default_port=80,
        ),
        Application(
            name="ssh", path="/usr/bin/ssh", version="7", vendor="openssh.org",
            app_type="remote-shell", default_port=0,
        ),
        Application(
            name="sshd", path="/usr/sbin/sshd", version="7", vendor="openssh.org",
            app_type="remote-shell-server", default_port=22,
        ),
        Application(
            name="telnet", path="/usr/bin/telnet", version="1", vendor="gnu.org",
            app_type="remote-shell",
        ),
        Application(
            name="conficker", path="/tmp/.x/conficker.exe", version="2", vendor="",
            app_type="worm",
        ),
    ]
