"""Socket table with lsof-style flow lookups.

The ident++ daemon resolves a queried 5-tuple to a process "using
techniques similar to lsof" (§3.5).  :class:`SocketTable` is that
machinery: applications bind listening sockets or open connected
sockets, and :meth:`SocketTable.lookup_flow` answers "which process owns
this flow?" for both the sending side (connected socket matches the
4-tuple) and the receiving side (connected socket *or* a listening
socket on the destination port — "a destination that has yet to accept a
connection").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.exceptions import SocketError
from repro.netsim.addresses import IPv4Address
from repro.netsim.packet import IP_PROTO_TCP, proto_number
from repro.hosts.processes import Process

#: First ephemeral port handed out to outgoing connections.
EPHEMERAL_PORT_BASE = 32768
#: Ports below this require superuser privileges to bind (§5.4).
PRIVILEGED_PORT_LIMIT = 1024


@dataclass
class Socket:
    """One socket owned by a process.

    ``remote_ip``/``remote_port`` are ``None``/0 for listening sockets.
    """

    proto: int
    local_ip: IPv4Address
    local_port: int
    process: Process
    remote_ip: Optional[IPv4Address] = None
    remote_port: int = 0

    @property
    def is_listening(self) -> bool:
        """Return ``True`` for listening (unconnected) sockets."""
        return self.remote_ip is None

    @property
    def is_privileged(self) -> bool:
        """Return ``True`` if the local port is in the privileged range (< 1024)."""
        return 0 < self.local_port < PRIVILEGED_PORT_LIMIT

    def matches_local_flow(
        self,
        ip_src: IPv4Address,
        ip_dst: IPv4Address,
        proto: int,
        tp_src: int,
        tp_dst: int,
    ) -> bool:
        """Return ``True`` if this socket is the *source* endpoint of the flow."""
        if self.proto != proto:
            return False
        if self.is_listening:
            # A server replying on an accepted connection: local port is
            # the flow's source port.
            return self.local_ip == ip_src and self.local_port == tp_src
        return (
            self.local_ip == ip_src
            and self.local_port == tp_src
            and self.remote_ip == ip_dst
            and self.remote_port == tp_dst
        )

    def matches_remote_flow(
        self,
        ip_src: IPv4Address,
        ip_dst: IPv4Address,
        proto: int,
        tp_src: int,
        tp_dst: int,
    ) -> bool:
        """Return ``True`` if this socket is the *destination* endpoint of the flow."""
        if self.proto != proto:
            return False
        if self.is_listening:
            return self.local_ip == ip_dst and self.local_port == tp_dst
        return (
            self.local_ip == ip_dst
            and self.local_port == tp_dst
            and self.remote_ip == ip_src
            and self.remote_port == tp_src
        )

    def __str__(self) -> str:
        remote = f"{self.remote_ip}:{self.remote_port}" if not self.is_listening else "*:*"
        return f"{self.local_ip}:{self.local_port} <-> {remote} (pid {self.process.pid})"


class SocketTable:
    """All sockets on one end-host."""

    def __init__(self, host_ip: IPv4Address) -> None:
        self.host_ip = IPv4Address(host_ip)
        self._sockets: list[Socket] = []
        self._next_ephemeral = EPHEMERAL_PORT_BASE
        # Which flow a 5-tuple resolves to depends on the socket set; a
        # mutation means previously computed owners may be stale.  The
        # epoch is cheap to compare, the listeners let the ident++
        # daemon push invalidations to controller-side endpoint caches.
        self.epoch = 0
        self._change_listeners: list[Callable[[], None]] = []

    def add_change_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired after every socket open/close."""
        if listener not in self._change_listeners:
            self._change_listeners.append(listener)

    def _changed(self) -> None:
        self.epoch += 1
        for listener in list(self._change_listeners):
            listener()

    # ------------------------------------------------------------------
    # Socket creation
    # ------------------------------------------------------------------

    def listen(self, process: Process, port: int, proto: int | str = IP_PROTO_TCP) -> Socket:
        """Bind a listening socket on ``port``.

        Enforces the privileged-port rule from §5.4: only the superuser
        may bind ports below 1024.
        """
        proto = proto_number(proto)
        if not 0 < port <= 0xFFFF:
            raise SocketError(f"invalid port: {port}")
        if port < PRIVILEGED_PORT_LIMIT and not process.user.can_bind_privileged_ports:
            raise SocketError(
                f"user {process.user.name} cannot bind privileged port {port} (requires superuser)"
            )
        if self.find_listener(port, proto) is not None:
            raise SocketError(f"port {port}/{proto} already in use")
        socket = Socket(proto=proto, local_ip=self.host_ip, local_port=port, process=process)
        self._sockets.append(socket)
        self._changed()
        return socket

    def connect(
        self,
        process: Process,
        remote_ip: IPv4Address | str,
        remote_port: int,
        proto: int | str = IP_PROTO_TCP,
        local_port: int | None = None,
    ) -> Socket:
        """Open a connected socket to ``remote_ip:remote_port``.

        An ephemeral local port is allocated unless ``local_port`` is
        given explicitly.
        """
        proto = proto_number(proto)
        if local_port is None:
            local_port = self._allocate_ephemeral_port()
        socket = Socket(
            proto=proto,
            local_ip=self.host_ip,
            local_port=local_port,
            process=process,
            remote_ip=IPv4Address(remote_ip),
            remote_port=remote_port,
        )
        self._sockets.append(socket)
        self._changed()
        return socket

    def close(self, socket: Socket) -> None:
        """Remove a socket from the table."""
        try:
            self._sockets.remove(socket)
        except ValueError as exc:
            raise SocketError(f"socket not in table: {socket}") from exc
        self._changed()

    def _allocate_ephemeral_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 0xFFFF:
            self._next_ephemeral = EPHEMERAL_PORT_BASE
        return port

    # ------------------------------------------------------------------
    # Lookups (the lsof part)
    # ------------------------------------------------------------------

    def find_listener(self, port: int, proto: int | str = IP_PROTO_TCP) -> Optional[Socket]:
        """Return the listening socket on ``port``/``proto``, if any."""
        proto = proto_number(proto)
        for socket in self._sockets:
            if socket.is_listening and socket.local_port == port and socket.proto == proto:
                return socket
        return None

    def lookup_flow(
        self,
        ip_src: IPv4Address | str,
        ip_dst: IPv4Address | str,
        proto: int | str,
        tp_src: int,
        tp_dst: int,
        *,
        as_destination: bool = False,
    ) -> Optional[Socket]:
        """Return the socket owning the given 5-tuple on this host.

        ``as_destination`` selects which endpoint of the flow this host
        plays.  Connected sockets are preferred over listening sockets so
        that an accepted connection resolves to the worker process rather
        than the listener.
        """
        ip_src = IPv4Address(ip_src)
        ip_dst = IPv4Address(ip_dst)
        proto = proto_number(proto)
        matcher = Socket.matches_remote_flow if as_destination else Socket.matches_local_flow
        best: Optional[Socket] = None
        for socket in self._sockets:
            if matcher(socket, ip_src, ip_dst, proto, tp_src, tp_dst):
                if not socket.is_listening:
                    return socket
                best = best or socket
        return best

    def process_for_flow(
        self,
        ip_src: IPv4Address | str,
        ip_dst: IPv4Address | str,
        proto: int | str,
        tp_src: int,
        tp_dst: int,
        *,
        as_destination: bool = False,
    ) -> Optional[Process]:
        """Return the process owning the given flow, or ``None`` (lsof equivalent)."""
        socket = self.lookup_flow(
            ip_src, ip_dst, proto, tp_src, tp_dst, as_destination=as_destination
        )
        return socket.process if socket is not None else None

    def sockets(self) -> Iterator[Socket]:
        """Iterate over all sockets."""
        return iter(list(self._sockets))

    def __len__(self) -> int:
        return len(self._sockets)
