"""End-host substrate.

The ident++ daemon (§3.5 of the paper) answers queries by mapping the
queried 5-tuple to the local process and user "using techniques similar
to lsof", then reading per-application configuration.  This package
models the parts of an operating system needed for that to work:

* users and groups (:mod:`repro.hosts.users`),
* installed applications with executable hashes, versions and vendors
  (:mod:`repro.hosts.applications`),
* a process table (:mod:`repro.hosts.processes`),
* a socket table with lsof-style lookups (:mod:`repro.hosts.sockets`),
* the :class:`~repro.hosts.endhost.EndHost` simulator node that ties
  them together and lets applications open connections and listen on
  ports.
"""

from repro.hosts.applications import Application, ApplicationRegistry
from repro.hosts.endhost import EndHost
from repro.hosts.processes import Process, ProcessTable
from repro.hosts.sockets import Socket, SocketTable
from repro.hosts.users import Group, User, UserDatabase

__all__ = [
    "Application",
    "ApplicationRegistry",
    "EndHost",
    "Process",
    "ProcessTable",
    "Socket",
    "SocketTable",
    "Group",
    "User",
    "UserDatabase",
]
