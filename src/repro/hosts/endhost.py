"""The end-host simulator node.

An :class:`EndHost` ties together the account database, application
registry, process table and socket table, and participates in the
simulated network as a :class:`~repro.netsim.nodes.Node`: applications
on the host open flows (which emit packets into the network) and listen
on ports (which receive packets delivered to the host's IP address).

Services — most importantly the ident++ daemon listening on TCP port 783
(§2) — register themselves with :meth:`EndHost.register_service`; the
host hands them any packet addressed to their port.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.exceptions import HostError
from repro.hosts.applications import Application, ApplicationRegistry
from repro.hosts.processes import Process, ProcessTable
from repro.hosts.sockets import Socket, SocketTable
from repro.hosts.users import User, UserDatabase
from repro.netsim.addresses import IPv4Address, MACAddress
from repro.netsim.nodes import Node, Port
from repro.netsim.packet import IP_PROTO_TCP, Packet, proto_number
from repro.netsim.statistics import Counter

#: Signature of a service handler: receives the packet and the host.
ServiceHandler = Callable[[Packet, "EndHost"], None]


class EndHost(Node):
    """A simulated end-host with users, applications, processes and sockets."""

    def __init__(
        self,
        name: str,
        ip: IPv4Address | str,
        mac: MACAddress | str | None = None,
    ) -> None:
        super().__init__(name)
        self.ip = IPv4Address(ip)
        self.mac = MACAddress(mac) if mac is not None else MACAddress.from_index(abs(hash(name)) % (2**32))
        self.users = UserDatabase()
        self.applications = ApplicationRegistry()
        self.processes = ProcessTable()
        self.sockets = SocketTable(self.ip)
        self.delivered: list[Packet] = []
        self.delivered_times: list[float] = []
        self.delivered_bytes = Counter(f"{name}.delivered_bytes")
        self.compromised = False
        self.compromised_as_superuser = False
        self._services: dict[tuple[int, int], ServiceHandler] = {}

    # ------------------------------------------------------------------
    # Host administration
    # ------------------------------------------------------------------

    def install(self, app: Application) -> Application:
        """Install an application on this host."""
        return self.applications.install(app)

    def install_all(self, apps: list[Application]) -> None:
        """Install a list of applications."""
        for app in apps:
            self.install(app)

    def add_user(self, name: str, groups: tuple[str, ...] | list[str] = ()) -> User:
        """Create a user account (idempotent for existing users with no group change)."""
        if self.users.has_user(name):
            user = self.users.user(name)
            for group in groups:
                self.users.add_to_group(name, group)
            return user
        return self.users.add_user(name, groups=list(groups))

    def register_service(
        self,
        port: int,
        handler: ServiceHandler,
        proto: int | str = IP_PROTO_TCP,
    ) -> None:
        """Register a packet handler for traffic addressed to ``port``.

        The ident++ daemon registers itself on TCP 783 through this hook.
        """
        self._services[(proto_number(proto), port)] = handler

    def unregister_service(self, port: int, proto: int | str = IP_PROTO_TCP) -> None:
        """Remove a previously registered service handler."""
        self._services.pop((proto_number(proto), port), None)

    # ------------------------------------------------------------------
    # Application activity
    # ------------------------------------------------------------------

    def run_server(
        self,
        app_name: str,
        user_name: str,
        port: int | None = None,
        proto: int | str = IP_PROTO_TCP,
        *,
        setgid_isolated: bool = False,
        runtime_keys: Optional[dict[str, str]] = None,
    ) -> tuple[Process, Socket]:
        """Start an application as a server listening on ``port``.

        ``port`` defaults to the application's ``default_port``.  The
        privileged-port rule is enforced by the socket table: binding a
        port below 1024 as a non-root user follows the fork-as-superuser
        pattern discussed in §5.4, which the caller models by passing the
        ``root`` user explicitly.
        """
        app = self.applications.require(app_name)
        user = self.users.user(user_name)
        if port is None:
            port = app.default_port
        if not port:
            raise HostError(f"application {app_name} has no default port; pass one explicitly")
        process = self.processes.spawn(
            user, app, setgid_isolated=setgid_isolated, runtime_keys=runtime_keys
        )
        socket = self.sockets.listen(process, port, proto)
        return process, socket

    def open_flow(
        self,
        app_name: str,
        user_name: str,
        dst_ip: IPv4Address | str,
        dst_port: int,
        proto: int | str = IP_PROTO_TCP,
        *,
        payload: Any = b"",
        payload_size: Optional[int] = None,
        runtime_keys: Optional[dict[str, str]] = None,
        send: bool = True,
    ) -> tuple[Packet, Socket, Process]:
        """Open a new outgoing flow from an application.

        Spawns a process for the application under ``user_name``, opens a
        connected socket (allocating an ephemeral source port) and, when
        ``send`` is true, emits the flow's first packet into the network.

        Returns ``(first packet, socket, process)``.
        """
        app = self.applications.require(app_name)
        user = self.users.user(user_name)
        process = self.processes.spawn(user, app, runtime_keys=runtime_keys)
        socket = self.sockets.connect(process, dst_ip, dst_port, proto)
        packet = Packet(
            eth_src=self.mac,
            ip_src=self.ip,
            ip_dst=IPv4Address(dst_ip),
            ip_proto=proto_number(proto),
            tp_src=socket.local_port,
            tp_dst=dst_port,
            payload=payload,
            payload_size=payload_size,
            metadata={"origin_host": self.name, "origin_app": app.name, "origin_user": user.name},
        )
        if send:
            self.transmit(packet)
        return packet, socket, process

    def send_on_socket(
        self,
        socket: Socket,
        *,
        payload: Any = b"",
        payload_size: Optional[int] = None,
    ) -> Packet:
        """Send another packet on an already-open connected socket."""
        if socket.is_listening:
            raise HostError("cannot send on a listening socket without a peer")
        packet = Packet(
            eth_src=self.mac,
            ip_src=self.ip,
            ip_dst=socket.remote_ip,
            ip_proto=socket.proto,
            tp_src=socket.local_port,
            tp_dst=socket.remote_port,
            payload=payload,
            payload_size=payload_size,
            metadata={"origin_host": self.name},
        )
        self.transmit(packet)
        return packet

    def transmit(self, packet: Packet) -> bool:
        """Send a packet out of the host's (first wired) uplink port."""
        for port in self.ports():
            if port.is_wired:
                return self.send(packet, port)
        return False

    # ------------------------------------------------------------------
    # Packet reception
    # ------------------------------------------------------------------

    def receive(self, packet: Packet, in_port: Port) -> None:
        """Deliver a packet addressed to this host.

        Packets for a registered service port are handed to the service;
        everything else is recorded in :attr:`delivered` so tests and the
        collaboration benchmark can check exactly what reached the host.
        Packets not addressed to this host's IP are dropped (hosts do not
        forward).
        """
        super().receive(packet, in_port)
        if not packet.is_ip() or packet.ip_dst != self.ip:
            return
        handler = self._services.get((packet.ip_proto, packet.tp_dst))
        if handler is not None:
            handler(packet, self)
            return
        self.delivered.append(packet)
        self.delivered_times.append(self.now)
        self.delivered_bytes.increment(packet.wire_size())

    # ------------------------------------------------------------------
    # Introspection used by daemons and the security harness
    # ------------------------------------------------------------------

    def process_for_flow(
        self,
        ip_src: IPv4Address | str,
        ip_dst: IPv4Address | str,
        proto: int | str,
        tp_src: int,
        tp_dst: int,
    ) -> Optional[Process]:
        """Return the local process owning the flow, looking at both directions."""
        as_destination = IPv4Address(ip_dst) == self.ip
        return self.sockets.process_for_flow(
            ip_src, ip_dst, proto, tp_src, tp_dst, as_destination=as_destination
        )

    def delivered_flows(self) -> set[tuple]:
        """Return the distinct 5-tuples of packets delivered to applications."""
        return {packet.five_tuple() for packet in self.delivered}

    def mark_compromised(self, *, superuser: bool = False) -> None:
        """Mark the host as attacker-controlled (see :mod:`repro.security`).

        Controller-side endpoint caches must drop this host's answers:
        everything its daemon said before the compromise is now
        untrusted, and everything it says afterwards may be spoofed.
        """
        self.compromised = True
        self.compromised_as_superuser = superuser
        daemon = getattr(self, "identpp_daemon", None)
        if daemon is not None:
            daemon.notify_invalidation("host-compromised")

    def __repr__(self) -> str:
        return f"EndHost({self.name!r}, ip={self.ip})"
