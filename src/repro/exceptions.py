"""Exception hierarchy for the ident++ reproduction.

Every package in :mod:`repro` raises exceptions derived from
:class:`ReproError` so that callers can catch library errors without
accidentally swallowing programming errors (``TypeError``, ``KeyError``
and friends are never used to signal library-level failures).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


# ---------------------------------------------------------------------------
# Network simulator
# ---------------------------------------------------------------------------

class NetSimError(ReproError):
    """Base class for discrete-event network simulator errors."""


class AddressError(NetSimError):
    """An IPv4 or MAC address (or prefix) could not be parsed or is invalid."""


class TopologyError(NetSimError):
    """The topology is malformed (unknown node, duplicate link, no path, ...)."""


class PortError(NetSimError):
    """A node port is unknown, already wired, or otherwise unusable."""


class SimulationError(NetSimError):
    """The event scheduler was used incorrectly (time travel, re-run, ...)."""


class PacketError(NetSimError):
    """A packet is malformed or cannot be (de)serialised."""


# ---------------------------------------------------------------------------
# OpenFlow substrate
# ---------------------------------------------------------------------------

class OpenFlowError(ReproError):
    """Base class for OpenFlow substrate errors."""


class MatchError(OpenFlowError):
    """An OpenFlow match structure is invalid."""


class FlowTableError(OpenFlowError):
    """A flow-table operation failed (duplicate entry, bad priority, ...)."""


class ChannelError(OpenFlowError):
    """The switch-to-controller channel is down or misused."""


# ---------------------------------------------------------------------------
# End-host substrate
# ---------------------------------------------------------------------------

class HostError(ReproError):
    """Base class for end-host model errors."""


class UserError(HostError):
    """Unknown user or group, or an invalid account operation."""


class ProcessError(HostError):
    """Unknown process, or an invalid process-table operation."""


class SocketError(HostError):
    """A socket could not be bound, connected or looked up."""


# ---------------------------------------------------------------------------
# ident++ protocol
# ---------------------------------------------------------------------------

class IdentPPError(ReproError):
    """Base class for ident++ protocol errors."""


class WireFormatError(IdentPPError):
    """An ident++ query or response packet could not be parsed."""


class DaemonConfigError(IdentPPError):
    """An ident++ daemon configuration file (``@app`` blocks) is malformed."""


class QueryError(IdentPPError):
    """An ident++ query failed (timeout, no daemon, refused)."""


# ---------------------------------------------------------------------------
# PF+=2 policy language
# ---------------------------------------------------------------------------

class PFError(ReproError):
    """Base class for PF+=2 policy-language errors."""


class PFLexError(PFError):
    """The PF+=2 lexer hit an unexpected character."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(message)
        self.line = line
        self.column = column


class PFParseError(PFError):
    """The PF+=2 parser hit an unexpected token."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(message)
        self.line = line


class PFEvalError(PFError):
    """A PF+=2 rule could not be evaluated (unknown function, bad table, ...)."""


class UnknownFunctionError(PFEvalError):
    """A ``with``-predicate referenced a function that was never registered."""


# ---------------------------------------------------------------------------
# Crypto substrate
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for signature/crypto substrate errors."""


class KeyError_(CryptoError):
    """A key is malformed or missing from a key store."""


class SignatureError(CryptoError):
    """A signature failed to verify or could not be produced."""


# ---------------------------------------------------------------------------
# Core controller
# ---------------------------------------------------------------------------

class ControllerError(ReproError):
    """Base class for ident++ controller errors."""


class PolicyError(ControllerError):
    """The controller's policy configuration is invalid."""


class DelegationError(ControllerError):
    """A delegation grant/revocation is invalid or violated."""


# ---------------------------------------------------------------------------
# Security / attack harness
# ---------------------------------------------------------------------------

class SecurityError(ReproError):
    """Base class for threat-model / attack-injection errors."""


class AttackError(SecurityError):
    """An attack could not be injected into the scenario."""


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

class WorkloadError(ReproError):
    """A workload/scenario could not be generated."""
