"""Plain-text table formatting.

The benchmark harness prints the rows/series each experiment regenerates
(the paper has no numeric tables, so these are the reproduction's own
measurements).  Keeping the formatter here means every benchmark and
example prints results the same way and the tests can assert on the
structure rather than on ad-hoc string building.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], *, title: str = "") -> str:
    """Render a list of row dictionaries as an aligned plain-text table.

    Column order follows the keys of the first row; missing values render
    as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered_rows = []
    for row in rows:
        rendered_rows.append([_render(row.get(column)) for column in columns])
    widths = [
        max(len(str(column)), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(value.ljust(width) for value, width in zip(rendered, widths)))
    return "\n".join(lines)


def _render(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def series_to_rows(
    x_name: str,
    x_values: Iterable[object],
    series: Mapping[str, Sequence[object]],
) -> list[dict[str, object]]:
    """Turn parallel series into row dictionaries (one row per x value)."""
    x_list = list(x_values)
    rows = []
    for index, x_value in enumerate(x_list):
        row: dict[str, object] = {x_name: x_value}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else None
        rows.append(row)
    return rows
