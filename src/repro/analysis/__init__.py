"""Result formatting helpers used by the benchmark harness and examples."""

from repro.analysis.report import format_table, series_to_rows

__all__ = ["format_table", "series_to_rows"]
