"""The paper's threat model (§2) and compromise taxonomy (§5).

"We assume that most users are honest ... users might inadvertently
create security holes or allow their accounts to be compromised.
Attackers might be able to compromise end-hosts, but it is more
difficult to gain access as a super-user or administrator than as
non-privileged users.  Finally, the components of the network themselves
can be attacked and compromised, though these are more difficult targets
than end-hosts."
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The four component classes §5 analyses.
COMPONENT_CONTROLLER = "controller"
COMPONENT_SWITCH = "switch"
COMPONENT_END_HOST = "end-host"
COMPONENT_USER_APPLICATION = "user-application"

ALL_COMPONENTS = (
    COMPONENT_CONTROLLER,
    COMPONENT_SWITCH,
    COMPONENT_END_HOST,
    COMPONENT_USER_APPLICATION,
)

#: Relative difficulty of each compromise in the paper's threat model;
#: larger numbers are harder targets.  Used only for ordering/reporting.
COMPROMISE_DIFFICULTY = {
    COMPONENT_USER_APPLICATION: 1,
    COMPONENT_END_HOST: 2,
    COMPONENT_SWITCH: 3,
    COMPONENT_CONTROLLER: 4,
}


@dataclass(frozen=True)
class CompromiseScenario:
    """One compromise: which component class, and which concrete target."""

    component: str
    target: str
    superuser: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.component not in ALL_COMPONENTS:
            raise ValueError(f"unknown component class: {self.component!r}")

    def difficulty(self) -> int:
        """Return the relative difficulty rank of this compromise."""
        return COMPROMISE_DIFFICULTY[self.component]

    def __str__(self) -> str:
        privilege = " (superuser)" if self.superuser else ""
        return f"{self.component}:{self.target}{privilege}"


@dataclass
class ThreatModel:
    """The assumptions the analysis runs under.

    Attributes:
        honest_users: Most users do not subvert policy on purpose (§2).
        endhost_compromise_possible: Attackers may take over end-hosts.
        superuser_harder: Gaining root on an end-host is harder than a
            user account.
        network_components_hardened: Switches/controllers are harder
            targets than end-hosts.
        users_hold_private_keys: Delegation requests must be signed with
            the user's private key, which a compromised *host* does not
            automatically yield (§5.3).
    """

    honest_users: bool = True
    endhost_compromise_possible: bool = True
    superuser_harder: bool = True
    network_components_hardened: bool = True
    users_hold_private_keys: bool = True
    notes: list[str] = field(default_factory=list)

    def assumptions(self) -> dict[str, bool]:
        """Return the assumptions as a dictionary (for reports)."""
        return {
            "honest_users": self.honest_users,
            "endhost_compromise_possible": self.endhost_compromise_possible,
            "superuser_harder": self.superuser_harder,
            "network_components_hardened": self.network_components_hardened,
            "users_hold_private_keys": self.users_hold_private_keys,
        }
