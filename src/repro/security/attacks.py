"""Attacker actions.

Each method of :class:`Attacker` injects one of the §5 compromises into
a running scenario and returns a :class:`CompromiseRecord` that can be
undone, so a single scenario can be measured under many compromises.

The actions deliberately model only what the paper grants the attacker:

* a compromised **controller** disables all protection (§5.1),
* a compromised **switch** forwards unregulated but does not yield the
  controller (§5.2),
* a compromised **end-host** controls its ident++ daemon and "can send
  false ident++ responses", but cannot produce signatures with users'
  private keys (§5.3),
* a compromised **application** can masquerade as other applications of
  the same user (via ptrace-style subversion) *unless* the administrator
  isolated processes with the setgid trick, and abuses only that user's
  network privileges (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.exceptions import AttackError
from repro.hosts.endhost import EndHost
from repro.identpp.daemon import IdentPPDaemon
from repro.openflow.controller_base import Controller
from repro.openflow.switch import OpenFlowSwitch
from repro.security.threat_model import (
    COMPONENT_CONTROLLER,
    COMPONENT_END_HOST,
    COMPONENT_SWITCH,
    COMPONENT_USER_APPLICATION,
    CompromiseScenario,
)


@dataclass
class CompromiseRecord:
    """One injected compromise plus the callable that undoes it."""

    scenario: CompromiseScenario
    undo: Callable[[], None] = field(repr=False, default=lambda: None)
    details: dict[str, str] = field(default_factory=dict)

    def revert(self) -> None:
        """Undo the compromise (restores the component's honest behaviour)."""
        self.undo()


class Attacker:
    """Injects compromises into scenario components."""

    def __init__(self, name: str = "attacker") -> None:
        self.name = name
        self.compromises: list[CompromiseRecord] = []

    # ------------------------------------------------------------------
    # §5.1 controller
    # ------------------------------------------------------------------

    def compromise_controller(self, controller: Controller) -> CompromiseRecord:
        """Take over the controller: every subsequent decision passes unaudited."""
        controller.mark_compromised()

        def undo() -> None:
            controller.compromised = False

        record = CompromiseRecord(
            scenario=CompromiseScenario(COMPONENT_CONTROLLER, controller.name,
                                        description="all protection disabled"),
            undo=undo,
        )
        self.compromises.append(record)
        return record

    # ------------------------------------------------------------------
    # §5.2 switch
    # ------------------------------------------------------------------

    def compromise_switch(self, switch: OpenFlowSwitch) -> CompromiseRecord:
        """Take over one switch: traffic through it is no longer regulated."""
        switch.mark_compromised()

        def undo() -> None:
            switch.restore()

        record = CompromiseRecord(
            scenario=CompromiseScenario(COMPONENT_SWITCH, switch.name,
                                        description="unregulated forwarding through this switch"),
            undo=undo,
        )
        self.compromises.append(record)
        return record

    # ------------------------------------------------------------------
    # §5.3 end-host
    # ------------------------------------------------------------------

    def compromise_end_host(
        self,
        host: EndHost,
        *,
        superuser: bool = True,
        spoofed_pairs: Optional[dict[str, str]] = None,
    ) -> CompromiseRecord:
        """Take over an end-host (and therefore its ident++ daemon).

        ``spoofed_pairs`` is what the attacker-controlled daemon will
        claim about every flow (defaults to claiming the most permissive
        identity the attacker can plausibly fabricate).  Note what this
        does *not* grant: signatures made with users' private keys, so
        ``requirements``/``req-sig`` pairs cannot be forged — the spoofed
        response simply will not verify.
        """
        daemon: Optional[IdentPPDaemon] = getattr(host, "identpp_daemon", None)
        host.mark_compromised(superuser=superuser)
        previous_spoof = daemon.spoofed_pairs if daemon is not None else None
        if daemon is not None:
            pairs = spoofed_pairs if spoofed_pairs is not None else {
                "userID": "system",
                "groupID": "system users research",
                "name": "http",
                "app-name": "http",
                "version": "999",
            }
            daemon.spoof_responses(pairs)

        def undo() -> None:
            host.compromised = False
            host.compromised_as_superuser = False
            if daemon is not None:
                daemon.spoof_responses(previous_spoof)

        record = CompromiseRecord(
            scenario=CompromiseScenario(COMPONENT_END_HOST, host.name, superuser=superuser,
                                        description="daemon sends false responses"),
            undo=undo,
            details={"spoofed": "yes" if daemon is not None else "no daemon"},
        )
        self.compromises.append(record)
        return record

    # ------------------------------------------------------------------
    # §5.4 user application
    # ------------------------------------------------------------------

    def compromise_application(
        self,
        host: EndHost,
        app_name: str,
        user_name: str,
        *,
        masquerade_as: Optional[str] = None,
    ) -> CompromiseRecord:
        """Take over one application run by one user.

        The attacker gains that user's network privileges.  If the target
        process (the one being masqueraded as) is *not* setgid-isolated,
        the compromised process can ptrace its way into claiming that
        application's identity; with isolation the masquerade fails and
        the daemon keeps reporting the actually compromised application.
        """
        application = host.applications.by_name(app_name)
        if application is None:
            raise AttackError(f"host {host.name} does not have application {app_name!r}")
        user = host.users.user(user_name)
        process = host.processes.spawn(user, application)
        process.compromised = True

        masquerade_allowed = False
        if masquerade_as is not None:
            target_app = host.applications.by_name(masquerade_as)
            if target_app is not None:
                victims = [
                    p for p in host.processes.by_application(masquerade_as)
                    if p.user.name == user_name
                ]
                blocked = any(not victim.can_be_ptraced_by(process) for victim in victims)
                if not victims or not blocked:
                    # Either no running instance to subvert is isolated, so the
                    # attacker execs + ptraces its way to the identity (§5.4).
                    process.runtime_keys.update({
                        "name": target_app.name,
                        "app-name": target_app.name,
                        "version": target_app.version,
                    })
                    masquerade_allowed = True

        def undo() -> None:
            if process.pid in host.processes:
                host.processes.kill(process.pid)

        record = CompromiseRecord(
            scenario=CompromiseScenario(COMPONENT_USER_APPLICATION, f"{host.name}:{app_name}",
                                        description=f"running as {user_name}"),
            undo=undo,
            details={
                "user": user_name,
                "masquerade_as": masquerade_as or "",
                "masquerade_succeeded": "yes" if masquerade_allowed else "no",
                "pid": str(process.pid),
            },
        )
        self.compromises.append(record)
        return record

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def revert_all(self) -> None:
        """Undo every injected compromise (most recent first)."""
        for record in reversed(self.compromises):
            record.revert()
        self.compromises.clear()

    def __len__(self) -> int:
        return len(self.compromises)
