"""Threat model and attack-injection harness (§5 of the paper).

§5 walks through what an attacker gains by compromising each component
of an ident++ network — the controller, a switch, an end-host, or a
user's application — and compares the damage with a network protected by
vanilla firewalls.  The paper's treatment is qualitative; this package
makes it mechanical:

* :mod:`repro.security.threat_model` — the component taxonomy and
  assumptions (§2 "Threat Model"),
* :mod:`repro.security.attacks` — attacker actions that mutate a running
  scenario (compromise the controller, a switch, a host's daemon, or an
  application; spoof daemon responses; masquerade as other applications),
* :mod:`repro.security.analysis` — attack *probes* (flows an attacker
  would like to open, with the identity claims they can plausibly make)
  and the impact calculator that compares how many probes succeed before
  and after a compromise under each architecture.

Experiment E9 (``benchmarks/bench_security_matrix.py``) uses these to
regenerate the §5 comparison as a quantitative matrix.
"""

from repro.security.analysis import AttackProbe, ImpactResult, SecurityMatrix, impact_of_compromise
from repro.security.attacks import Attacker, CompromiseRecord
from repro.security.threat_model import (
    COMPONENT_CONTROLLER,
    COMPONENT_END_HOST,
    COMPONENT_SWITCH,
    COMPONENT_USER_APPLICATION,
    CompromiseScenario,
    ThreatModel,
)

__all__ = [
    "AttackProbe",
    "ImpactResult",
    "SecurityMatrix",
    "impact_of_compromise",
    "Attacker",
    "CompromiseRecord",
    "COMPONENT_CONTROLLER",
    "COMPONENT_END_HOST",
    "COMPONENT_SWITCH",
    "COMPONENT_USER_APPLICATION",
    "CompromiseScenario",
    "ThreatModel",
]
