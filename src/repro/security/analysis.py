"""Attack probes and compromise-impact accounting.

The §5 comparison boils down to a question per (architecture,
compromise) pair: *which flows can the attacker now open that it could
not open before?*  An :class:`AttackProbe` is one flow the attacker
would like to open together with the identity claims it can plausibly
present; a *decider* is any callable mapping a probe to ``True``
(allowed) / ``False`` (blocked) under one architecture.  The impact
calculator runs every probe through every decider before and after a
compromise and reports the gained set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.identpp.flowspec import FlowSpec
from repro.security.threat_model import CompromiseScenario

#: A decider maps a probe to "is this flow allowed?".
ProbeDecider = Callable[["AttackProbe"], bool]


@dataclass(frozen=True)
class AttackProbe:
    """One flow an attacker attempts, with the identity it claims.

    Attributes:
        flow: The 5-tuple the attacker tries to open.
        claimed_src: Key/value pairs the attacker's side would present to
            an ident++ query (what a compromised daemon would spoof).
        description: Label used in reports ("reach file server as system",
            "worm probe to Server service", ...).
        requires_spoofing: ``True`` when the claimed identity is a lie —
            useful when reporting which architectures were fooled by it.
    """

    flow: FlowSpec
    claimed_src: tuple[tuple[str, str], ...] = ()
    description: str = ""
    requires_spoofing: bool = False

    @classmethod
    def build(
        cls,
        flow: FlowSpec,
        claimed_src: Optional[Mapping[str, str]] = None,
        *,
        description: str = "",
        requires_spoofing: bool = False,
    ) -> "AttackProbe":
        """Convenience constructor accepting a dict of claims."""
        claims = tuple(sorted((claimed_src or {}).items()))
        return cls(
            flow=flow,
            claimed_src=claims,
            description=description,
            requires_spoofing=requires_spoofing,
        )

    def claims(self) -> dict[str, str]:
        """Return the claimed source identity as a dict."""
        return dict(self.claimed_src)


@dataclass
class ImpactResult:
    """The impact of one compromise under one architecture."""

    architecture: str
    scenario: CompromiseScenario
    allowed_before: set[AttackProbe] = field(default_factory=set)
    allowed_after: set[AttackProbe] = field(default_factory=set)
    total_probes: int = 0

    @property
    def gained(self) -> set[AttackProbe]:
        """Return the probes that succeed only after the compromise."""
        return self.allowed_after - self.allowed_before

    @property
    def gained_count(self) -> int:
        """Return how many probes the attacker gained."""
        return len(self.gained)

    @property
    def gained_fraction(self) -> float:
        """Return gained probes as a fraction of all probes."""
        if self.total_probes == 0:
            return 0.0
        return self.gained_count / self.total_probes

    @property
    def exposure_after(self) -> float:
        """Return the fraction of probes that succeed after the compromise."""
        if self.total_probes == 0:
            return 0.0
        return len(self.allowed_after) / self.total_probes

    def summary(self) -> dict[str, float]:
        """Return the numbers the E9 matrix prints."""
        return {
            "allowed_before": float(len(self.allowed_before)),
            "allowed_after": float(len(self.allowed_after)),
            "gained": float(self.gained_count),
            "gained_fraction": self.gained_fraction,
            "exposure_after": self.exposure_after,
        }


def allowed_set(decider: ProbeDecider, probes: Iterable[AttackProbe]) -> set[AttackProbe]:
    """Return the probes a decider allows."""
    return {probe for probe in probes if decider(probe)}


def impact_of_compromise(
    architecture: str,
    scenario: CompromiseScenario,
    decider_before: ProbeDecider,
    decider_after: ProbeDecider,
    probes: Sequence[AttackProbe],
) -> ImpactResult:
    """Measure one (architecture, compromise) cell of the §5 matrix."""
    probes = list(probes)
    return ImpactResult(
        architecture=architecture,
        scenario=scenario,
        allowed_before=allowed_set(decider_before, probes),
        allowed_after=allowed_set(decider_after, probes),
        total_probes=len(probes),
    )


class SecurityMatrix:
    """The full §5 comparison: architectures × compromise scenarios."""

    def __init__(self) -> None:
        self._cells: dict[tuple[str, str], ImpactResult] = {}

    def add(self, result: ImpactResult) -> None:
        """Record one cell."""
        self._cells[(result.architecture, str(result.scenario))] = result

    def cell(self, architecture: str, scenario: CompromiseScenario | str) -> ImpactResult:
        """Return one cell."""
        return self._cells[(architecture, str(scenario))]

    def architectures(self) -> list[str]:
        """Return the architectures present, sorted."""
        return sorted({arch for arch, _ in self._cells})

    def scenarios(self) -> list[str]:
        """Return the compromise scenarios present, sorted by first appearance."""
        seen: list[str] = []
        for _, scenario in self._cells:
            if scenario not in seen:
                seen.append(scenario)
        return seen

    def rows(self) -> list[dict[str, object]]:
        """Return the matrix as a list of row dictionaries (scenario × architecture)."""
        table = []
        for scenario in self.scenarios():
            row: dict[str, object] = {"scenario": scenario}
            for architecture in self.architectures():
                result = self._cells.get((architecture, scenario))
                row[architecture] = result.gained_count if result is not None else None
            table.append(row)
        return table

    def exposure_rows(self) -> list[dict[str, object]]:
        """Return rows of post-compromise exposure fractions."""
        table = []
        for scenario in self.scenarios():
            row: dict[str, object] = {"scenario": scenario}
            for architecture in self.architectures():
                result = self._cells.get((architecture, scenario))
                row[architecture] = (
                    round(result.exposure_after, 3) if result is not None else None
                )
            table.append(row)
        return table

    def __len__(self) -> int:
        return len(self._cells)
