"""Key/value pairs, sections and response documents.

§3.2 of the paper: a response "contains ... a list of key-value pairs
separated by line breaks.  The list is broken up into sections delineated
by empty lines.  New sections correspond to key-value pairs from
different sources" — the user, the application, the local administrator,
and controllers on the path that augment the response.

§3.3 defines how PF+=2 reads the document:

* indexing ``@src[key]`` returns "the latest value added to the
  response" (the last section containing the key wins, because "a
  controller can overwrite or modify any responses that it sees"), and
* ``*@src[key]`` returns "a concatenation of the values in all sections",
  which lets a policy check a chain of endorsements.

:class:`ResponseDocument` implements exactly those semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.exceptions import WireFormatError

#: Separator used when concatenating ``*@src[key]`` values across sections.
CONCAT_SEPARATOR = " "


@dataclass
class KeyValueSection:
    """One section of a response: an ordered list of key/value pairs.

    Keys may repeat *within* a section (the last occurrence wins on
    lookup, all occurrences survive serialisation).  ``source`` labels
    where the section came from ("daemon", "user", "app:/usr/bin/skype",
    "controller:branch-b") — it is not part of the wire format but makes
    audit logs and tests much clearer.
    """

    pairs: list[tuple[str, str]] = field(default_factory=list)
    source: str = ""

    @classmethod
    def from_dict(cls, mapping: dict[str, str], source: str = "") -> "KeyValueSection":
        """Build a section from a plain dictionary (insertion order preserved)."""
        return cls(pairs=[(str(k), str(v)) for k, v in mapping.items()], source=source)

    def add(self, key: str, value: str) -> None:
        """Append one key/value pair."""
        key = str(key).strip()
        if not key:
            raise WireFormatError("empty key in key-value section")
        self.pairs.append((key, str(value).strip()))

    def get(self, key: str) -> Optional[str]:
        """Return the last value recorded for ``key`` in this section, or ``None``."""
        result = None
        for existing_key, value in self.pairs:
            if existing_key == key:
                result = value
        return result

    def keys(self) -> list[str]:
        """Return the distinct keys in first-appearance order."""
        seen: list[str] = []
        for key, _ in self.pairs:
            if key not in seen:
                seen.append(key)
        return seen

    def as_dict(self) -> dict[str, str]:
        """Return the section as a dict (later duplicates win)."""
        return {key: value for key, value in self.pairs}

    def copy(self) -> "KeyValueSection":
        """Return a deep-enough copy of the section."""
        return KeyValueSection(pairs=list(self.pairs), source=self.source)

    def __len__(self) -> int:
        return len(self.pairs)

    def __bool__(self) -> bool:
        return bool(self.pairs)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self.pairs)


class ResponseDocument:
    """An ordered list of :class:`KeyValueSection` objects.

    Section order is provenance order: the sections supplied by the
    queried end-host come first, and each controller that augments the
    response appends a new section at the end (§3.4: "the controller
    inserts an empty line followed by the key-value pairs it wishes to
    add").
    """

    def __init__(self, sections: Optional[list[KeyValueSection]] = None) -> None:
        self.sections: list[KeyValueSection] = list(sections or [])

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add_section(self, section: KeyValueSection | dict[str, str], source: str = "") -> KeyValueSection:
        """Append a section (dicts are converted).  Empty sections are kept out."""
        if isinstance(section, dict):
            section = KeyValueSection.from_dict(section, source=source)
        elif source and not section.source:
            section.source = source
        if section:
            self.sections.append(section)
        return section

    def augment(self, pairs: dict[str, str], source: str = "controller") -> KeyValueSection:
        """Append a new section the way an on-path controller does (§3.4)."""
        return self.add_section(KeyValueSection.from_dict(pairs, source=source))

    def copy(self) -> "ResponseDocument":
        """Return a copy whose sections can be modified independently."""
        return ResponseDocument([section.copy() for section in self.sections])

    # ------------------------------------------------------------------
    # PF+=2 lookup semantics
    # ------------------------------------------------------------------

    def latest(self, key: str) -> Optional[str]:
        """Return the most recently added value for ``key`` (``@src[key]`` semantics).

        "Indexing the dictionaries will give the latest value added to
        the response" (§3.3) — i.e. the last section wins.
        """
        for section in reversed(self.sections):
            value = section.get(key)
            if value is not None:
                return value
        return None

    def concatenated(self, key: str, separator: str = CONCAT_SEPARATOR) -> str:
        """Return all values for ``key`` joined in section order (``*@src[key]`` semantics)."""
        values = []
        for section in self.sections:
            value = section.get(key)
            if value is not None:
                values.append(value)
        return separator.join(values)

    def all_values(self, key: str) -> list[str]:
        """Return every value recorded for ``key`` in section order."""
        return [section.get(key) for section in self.sections if section.get(key) is not None]

    def keys(self) -> list[str]:
        """Return every distinct key across all sections, in first-appearance order."""
        seen: list[str] = []
        for section in self.sections:
            for key in section.keys():
                if key not in seen:
                    seen.append(key)
        return seen

    def has_key(self, key: str) -> bool:
        """Return ``True`` if any section carries ``key``."""
        return self.latest(key) is not None

    def as_flat_dict(self) -> dict[str, str]:
        """Return a {key: latest value} dictionary (the ``@src``/``@dst`` view)."""
        return {key: self.latest(key) for key in self.keys()}

    def section_count(self) -> int:
        """Return the number of sections."""
        return len(self.sections)

    def sources(self) -> list[str]:
        """Return the provenance labels of the sections, in order."""
        return [section.source for section in self.sections]

    # ------------------------------------------------------------------
    # Serialisation (body only; the first line of the wire format is
    # handled by repro.identpp.wire)
    # ------------------------------------------------------------------

    def to_body(self) -> str:
        """Serialise the sections to the ``key: value`` / blank-line body format."""
        blocks = []
        for section in self.sections:
            lines = [f"{key}: {value}" for key, value in section.pairs]
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks)

    @classmethod
    def from_body(cls, body: str) -> "ResponseDocument":
        """Parse a body produced by :meth:`to_body` (or written by hand)."""
        document = cls()
        current = KeyValueSection()
        for raw_line in body.splitlines():
            line = raw_line.rstrip()
            if not line.strip():
                if current:
                    document.sections.append(current)
                    current = KeyValueSection()
                continue
            if ":" not in line:
                raise WireFormatError(f"malformed key-value line: {raw_line!r}")
            key, _, value = line.partition(":")
            current.add(key.strip(), value.strip())
        if current:
            document.sections.append(current)
        return document

    def __len__(self) -> int:
        return len(self.sections)

    def __bool__(self) -> bool:
        return any(self.sections)

    def __repr__(self) -> str:
        return f"ResponseDocument(sections={len(self.sections)}, keys={self.keys()})"
