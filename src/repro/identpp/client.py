"""The query side of ident++: what a controller uses to ask end-hosts.

When the ident++ controller needs a decision about a flow it "requests
additional information from both the source and the destination
end-hosts" (§2).  :class:`QueryClient` performs one such query:

* it resolves the target IP address to the end-host owning it,
* walks the list of on-path *interceptors* (other ident++ controllers)
  in order, giving each the chance to answer the query itself — in
  which case the real end-host is never asked and "intercepted queries
  are not allowed to cause new queries" (§3.4),
* otherwise obtains the response from the end-host's daemon,
* then walks the interceptors in reverse order letting each *augment*
  the response with an extra section, and
* accounts the network round-trip latency from the querying switch to
  the target host so flow-setup latency measurements are meaningful.

Hosts that do not run a daemon (legacy hosts, §4 "Incremental Benefit")
produce a timeout outcome unless an interceptor answered on their
behalf.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence

from repro.exceptions import TopologyError
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.identpp.wire import DEFAULT_QUERY_KEYS, IdentQuery, IdentResponse, ROLE_DESTINATION, ROLE_SOURCE
from repro.netsim.events import Future
from repro.netsim.nodes import Node
from repro.netsim.statistics import Counter
from repro.netsim.topology import Topology

#: What a query costs when the target never answers (seconds).
DEFAULT_QUERY_TIMEOUT = 0.05


class QueryInterceptor(Protocol):
    """The interface on-path controllers implement to intercept ident++ traffic."""

    def intercept_query(self, query: IdentQuery) -> Optional[IdentResponse]:
        """Answer the query on behalf of the end-host, or return ``None`` to pass it on."""

    def augment_response(self, query: IdentQuery, response: IdentResponse) -> None:
        """Append additional sections to a response passing through."""


def per_role_interceptors(
    interceptors: Sequence[QueryInterceptor],
) -> tuple[tuple[QueryInterceptor, ...], tuple[QueryInterceptor, ...]]:
    """Split one on-path interceptor list into per-role query orderings.

    :meth:`QueryClient.query` requires its interceptors "ordered from
    the querier toward the target host".  A caller querying *both* ends
    of a flow sits between them, so a single sequence cannot be correct
    for both queries: walking toward the destination traverses the
    on-path controllers in the given order, while walking toward the
    source traverses the very same controllers in **reverse**.  The
    input is ordered querier → destination; the returned pair is
    ``(toward_source, toward_destination)``.
    """
    toward_destination = tuple(interceptors)
    return tuple(reversed(toward_destination)), toward_destination


@dataclass
class QueryOutcome:
    """The result of one ident++ query."""

    query: IdentQuery
    response: Optional[IdentResponse]
    latency: float
    answered_by: str = ""
    intercepted: bool = False
    timed_out: bool = False
    #: ``True`` when the target host exists but no path to it does — the
    #: query could never have been delivered.  Such outcomes are also
    #: ``timed_out`` (a partitioned host looks exactly like a silent one
    #: to the querier), the flag only records *why* for diagnostics.
    unreachable: bool = False
    #: Set by the :class:`~repro.identpp.engine.QueryEngine` when the
    #: response was served from its endpoint cache (no daemon contact).
    cached: bool = False
    #: Set by the engine when this query shared another punt's
    #: still-outstanding query instead of issuing its own.
    coalesced: bool = False
    augmented_by: list[str] = field(default_factory=list)

    @property
    def document(self) -> ResponseDocument:
        """Return the response document (empty when the query timed out)."""
        if self.response is None:
            return ResponseDocument()
        return self.response.document

    def succeeded(self) -> bool:
        """Return ``True`` when some party produced a response."""
        return self.response is not None


class QueryClient:
    """Issues ident++ queries on behalf of a controller."""

    def __init__(
        self,
        topology: Topology,
        *,
        default_keys: Sequence[str] = DEFAULT_QUERY_KEYS,
        timeout: float = DEFAULT_QUERY_TIMEOUT,
    ) -> None:
        self.topology = topology
        self.default_keys = tuple(default_keys)
        self.timeout = timeout
        self.queries_sent = Counter("query_client.queries_sent")
        self.queries_intercepted = Counter("query_client.queries_intercepted")
        self.queries_timed_out = Counter("query_client.queries_timed_out")
        # (topology mutation epoch, mean link latency) — recomputed only
        # when connectivity changes, not on every intercepted query.
        self._mean_link_latency: Optional[tuple[int, float]] = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(
        self,
        flow: FlowSpec,
        role: str,
        *,
        from_node: Optional[Node] = None,
        keys: Optional[Sequence[str]] = None,
        interceptors: Sequence[QueryInterceptor] = (),
    ) -> QueryOutcome:
        """Query one end of ``flow``.

        Args:
            flow: The flow being decided.
            role: ``"src"`` or ``"dst"`` — which end to ask.
            from_node: The switch the flow's first packet arrived at; used
                to compute the query round-trip latency.  ``None`` charges
                only daemon processing time.
            keys: Key hints for the query (defaults to the client's
                default key list).
            interceptors: On-path controllers, ordered from the querier
                toward the target host.
        """
        query = IdentQuery(
            flow=flow,
            target_role=role,
            keys=tuple(keys) if keys is not None else self.default_keys,
        )
        self.queries_sent.increment()

        # Give each on-path controller the chance to answer outright.
        for interceptor in interceptors:
            answer = interceptor.intercept_query(query)
            if answer is not None:
                self.queries_intercepted.increment()
                latency = self._interceptor_latency(from_node)
                return QueryOutcome(
                    query=query,
                    response=answer,
                    latency=latency,
                    answered_by=getattr(interceptor, "name", "interceptor"),
                    intercepted=True,
                )

        host = self.topology.node_for_ip(query.target_ip)
        daemon = getattr(host, "identpp_daemon", None) if host is not None else None
        if daemon is None:
            self.queries_timed_out.increment()
            return QueryOutcome(
                query=query, response=None, latency=self.timeout, timed_out=True
            )
        round_trip = self._round_trip(from_node, host)
        if round_trip is None:
            # No path from the querying switch to the host: the query is
            # never delivered, so the daemon is never asked and the
            # outcome is a genuine timeout — not a healthy answer that
            # happens to cost ``self.timeout``.
            self.queries_timed_out.increment()
            return QueryOutcome(
                query=query,
                response=None,
                latency=self.timeout,
                timed_out=True,
                unreachable=True,
            )
        response, processing = daemon.query_local(query, now=self.topology.sim.now)
        latency = round_trip + processing

        # Responses are augmented on the way back, nearest-the-host first.
        augmented: list[str] = []
        for interceptor in reversed(list(interceptors)):
            interceptor.augment_response(query, response)
            augmented.append(getattr(interceptor, "name", "interceptor"))
        return QueryOutcome(
            query=query,
            response=response,
            latency=latency,
            answered_by=response.responder,
            augmented_by=augmented,
        )

    def query_async(
        self,
        flow: FlowSpec,
        role: str,
        *,
        from_node: Optional[Node] = None,
        keys: Optional[Sequence[str]] = None,
        interceptors: Sequence[QueryInterceptor] = (),
    ) -> Future:
        """Dispatch one endpoint query; the answer *arrives* as its own event.

        Same resolution as :meth:`query`, but instead of handing the
        outcome back in the same call (which forces the caller to model
        the round trip as one opaque delay), the returned
        :class:`~repro.netsim.events.Future` completes with the
        :class:`QueryOutcome` at ``now + outcome.latency`` on the
        topology's simulator — so a controller can interleave thousands
        of in-flight queries and react to each answer the instant it
        lands.  Without a simulator the future completes immediately
        (degenerate synchronous operation, used by sim-less tests).
        """
        outcome = self.query(
            flow, role, from_node=from_node, keys=keys, interceptors=interceptors
        )
        future = Future()
        sim = self.topology.sim
        if sim is None or outcome.latency <= 0:
            future.set_result(outcome)
        else:
            sim.schedule(
                outcome.latency, future.set_result, outcome,
                label=f"identpp:answer:{role}",
            )
        return future

    def query_both_ends(
        self,
        flow: FlowSpec,
        *,
        from_node: Optional[Node] = None,
        keys: Optional[Sequence[str]] = None,
        interceptors: Sequence[QueryInterceptor] = (),
    ) -> tuple[QueryOutcome, QueryOutcome]:
        """Query the source and the destination of ``flow`` (§2 step 3).

        The two queries are issued in parallel in a real deployment, so
        the caller should charge ``max`` of the two latencies, not the
        sum; :meth:`combined_latency` does that.

        ``interceptors`` are given ordered from the querier toward the
        flow's **destination**.  :meth:`query`'s contract wants them
        ordered toward the *target* of each query, and the on-path order
        toward the source is the reverse of the order toward the
        destination — so the source-side query walks them reversed (see
        :func:`per_role_interceptors`).
        """
        toward_source, toward_destination = per_role_interceptors(interceptors)
        src_outcome = self.query(
            flow, ROLE_SOURCE, from_node=from_node, keys=keys, interceptors=toward_source
        )
        dst_outcome = self.query(
            flow, ROLE_DESTINATION, from_node=from_node, keys=keys,
            interceptors=toward_destination,
        )
        return src_outcome, dst_outcome

    @staticmethod
    def combined_latency(outcomes: Sequence[QueryOutcome]) -> float:
        """Return the wall-clock cost of queries issued in parallel."""
        return max((outcome.latency for outcome in outcomes), default=0.0)

    # ------------------------------------------------------------------
    # Latency accounting
    # ------------------------------------------------------------------

    def _round_trip(self, from_node: Optional[Node], host: Node) -> Optional[float]:
        """Return the query round trip from ``from_node`` to ``host``.

        ``None`` means the host is unreachable (no path): the caller
        must treat the query as timed out, not as answered.  Only
        :class:`~repro.exceptions.TopologyError` signals that — any
        other exception is a real bug and propagates.
        """
        if from_node is None:
            return 0.0
        try:
            one_way = self.topology.path_latency(from_node, host)
        except TopologyError:
            return None
        return 2.0 * one_way

    def _interceptor_latency(self, from_node: Optional[Node]) -> float:
        # An interceptor sits on the path; charge a single hop either way
        # as an approximation of "closer than the end-host".  The mean is
        # cached against the topology's mutation epoch so a punt-heavy
        # run neither copies the link list nor re-sums latencies per
        # intercepted query, while remove-then-add churn (which leaves
        # the link *count* unchanged) still recomputes it.
        if from_node is None:
            return 0.0
        epoch = self.topology.mutation_epoch
        cached = self._mean_link_latency
        if cached is None or cached[0] != epoch:
            links = self.topology.links()
            count = len(links)
            mean = sum(link.latency for link in links) / count if count else 0.0
            cached = (epoch, mean)
            self._mean_link_latency = cached
        return 2.0 * cached[1]
