"""The ident++ query/response wire format (§3.2).

A query packet's payload is::

    <PROTO> <SRC PORT> <DST PORT>
    <key 0>
    <key 1>
    ...

and a response packet's payload is::

    <PROTO> <SRC PORT> <DST PORT>
    <key 0>: <value 0>
    ...
    <newline>
    <key n>: <value n>
    ...

The flow's IP addresses are carried in the packet's IP header rather
than the payload: "The controller making the query uses the flow's
destination IP address as the query's source IP address" when querying
the flow's *source* host (mirroring RFC 1413, where the connection's
remote end asks the local end).  Symmetrically, a query to the flow's
*destination* host is sent with the flow's source IP address as the
query's source.  Queries are addressed to TCP port 783.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import PacketError, WireFormatError
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import ResponseDocument
from repro.netsim.packet import IP_PROTO_TCP, Packet, proto_name, proto_number

#: The TCP port the ident++ daemon listens on (§2). RFC 1413 uses 113;
#: the paper moves the richer protocol to 783.
IDENT_PP_PORT = 783

#: Roles a queried host can play in the flow being asked about.
ROLE_SOURCE = "src"
ROLE_DESTINATION = "dst"

#: Default keys a controller asks for when the policy does not say
#: otherwise.  "The list of keys in the query packet only provide a hint
#: for what the controller needs" (§3.2).
DEFAULT_QUERY_KEYS = (
    "userID",
    "groupID",
    "name",
    "app-name",
    "exe-hash",
    "version",
    "requirements",
    "req-sig",
)

#: Wire protocol versions.  Version 1 is the paper's pull-only
#: query/response exchange above; version 2 adds the standing
#: SUBSCRIBE / DELTA / UNSUBSCRIBE messages of the push identity plane.
#: A v2 controller talking to a v1 daemon negotiates down to pull —
#: legacy fleets keep working unchanged.
WIRE_VERSION_PULL = 1
WIRE_VERSION_PUSH = 2

#: Capability token a push-capable daemon advertises in its SUBSCRIBE-ACK.
CAP_SUBSCRIBE = "subscribe"


def _first_line(flow: FlowSpec) -> str:
    return f"{flow.proto_name().upper()} {flow.src_port} {flow.dst_port}"


def _parse_first_line(line: str) -> tuple[int, int, int]:
    parts = line.split()
    if len(parts) != 3:
        raise WireFormatError(f"malformed ident++ first line: {line!r}")
    proto_text, src_text, dst_text = parts
    try:
        proto = proto_number(proto_text.lower())
        src_port = int(src_text)
        dst_port = int(dst_text)
    except (ValueError, PacketError) as exc:
        raise WireFormatError(f"malformed ident++ first line: {line!r}") from exc
    if not (0 <= src_port <= 0xFFFF and 0 <= dst_port <= 0xFFFF):
        raise WireFormatError(f"ident++ first line port out of range: {line!r}")
    return proto, src_port, dst_port


@dataclass
class IdentQuery:
    """An ident++ query about one flow, aimed at one of its endpoints.

    Attributes:
        flow: The flow being asked about.
        target_role: Which end of the flow is being queried
            (``"src"`` or ``"dst"``).
        keys: The key hints included in the query payload.
    """

    flow: FlowSpec
    target_role: str = ROLE_SOURCE
    keys: tuple[str, ...] = field(default_factory=lambda: tuple(DEFAULT_QUERY_KEYS))

    def __post_init__(self) -> None:
        if self.target_role not in (ROLE_SOURCE, ROLE_DESTINATION):
            raise WireFormatError(f"unknown ident++ query target role: {self.target_role!r}")
        self.keys = tuple(self.keys)

    @property
    def target_ip(self):
        """Return the IP address of the host this query is addressed to."""
        return self.flow.src_ip if self.target_role == ROLE_SOURCE else self.flow.dst_ip

    @property
    def spoofed_source_ip(self):
        """Return the source IP the controller writes on the query packet.

        §3.2: the query's source IP is the flow's *other* endpoint, so
        the queried daemon can recover the full 5-tuple from the IP
        header plus the payload's proto/port line.
        """
        return self.flow.dst_ip if self.target_role == ROLE_SOURCE else self.flow.src_ip

    def to_payload(self) -> str:
        """Serialise the query payload."""
        lines = [_first_line(self.flow)]
        lines.extend(self.keys)
        return "\n".join(lines)

    def to_packet(self) -> Packet:
        """Build the query packet (IP header spoofing per §3.2, TCP port 783)."""
        return Packet(
            ip_src=self.spoofed_source_ip,
            ip_dst=self.target_ip,
            ip_proto=IP_PROTO_TCP,
            tp_src=IDENT_PP_PORT,
            tp_dst=IDENT_PP_PORT,
            payload=self.to_payload(),
            metadata={"identpp": "query", "role": self.target_role},
        )


@dataclass
class IdentResponse:
    """An ident++ response: the echoed flow line plus the section document."""

    flow: FlowSpec
    document: ResponseDocument
    responder: str = ""

    def to_payload(self) -> str:
        """Serialise the response payload (§3.2 format)."""
        body = self.document.to_body()
        first = _first_line(self.flow)
        if body:
            return first + "\n" + body
        return first

    def to_packet(self, query_packet: Packet) -> Packet:
        """Build the response packet as a reply to ``query_packet``."""
        reply = query_packet.reply_template()
        reply.payload = self.to_payload()
        reply.metadata = {"identpp": "response", "responder": self.responder}
        return reply


# ----------------------------------------------------------------------
# Push-plane messages (wire version 2)
# ----------------------------------------------------------------------

@dataclass
class IdentSubscribe:
    """A standing-interest registration against one host's daemon.

    The controller (named ``subscriber``) asks the daemon on ``host_ip``
    to push an :class:`IdentDelta` whenever any of ``keys`` may have
    changed.  ``version`` carries the sender's wire version so a legacy
    (v1) daemon can refuse with a downgraded ack instead of guessing.
    """

    host_ip: str
    subscriber: str
    keys: tuple[str, ...] = field(default_factory=lambda: tuple(DEFAULT_QUERY_KEYS))
    version: int = WIRE_VERSION_PUSH

    def __post_init__(self) -> None:
        self.host_ip = str(self.host_ip)
        self.keys = tuple(self.keys)
        if not self.subscriber or any(ch.isspace() for ch in self.subscriber):
            raise WireFormatError(f"invalid ident++ subscriber name: {self.subscriber!r}")

    def to_payload(self) -> str:
        lines = [f"SUBSCRIBE {self.version} {self.subscriber}"]
        lines.extend(self.keys)
        return "\n".join(lines)


@dataclass
class IdentSubscribeAck:
    """The daemon's answer to an :class:`IdentSubscribe`.

    ``accepted`` is the capability negotiation result: a push-capable
    daemon accepts and advertises :data:`CAP_SUBSCRIBE`; a legacy daemon
    answers ``accepted=False`` at ``version=1`` with no capabilities,
    telling the controller to fall back to the pull path.  ``serial`` is
    the daemon's current delta serial — the subscriber's baseline, so
    the first delta it must apply is ``serial + 1``.
    """

    host_ip: str
    accepted: bool
    capabilities: tuple[str, ...] = ()
    version: int = WIRE_VERSION_PUSH
    serial: int = 0

    def __post_init__(self) -> None:
        self.host_ip = str(self.host_ip)
        self.capabilities = tuple(self.capabilities)

    def to_payload(self) -> str:
        status = "ok" if self.accepted else "refused"
        lines = [f"SUBSCRIBE-ACK {self.version} {status} {self.serial}"]
        lines.extend(self.capabilities)
        return "\n".join(lines)


@dataclass
class IdentDelta:
    """One pushed identity change: (host, key-set), serial-numbered.

    ``serial`` totally orders one daemon's deltas; a subscriber that
    sees ``serial <= last_applied`` drops the message as a duplicate,
    and a gap after failover means deltas were missed and the resident
    answers must be re-primed.  An empty ``keys`` tuple means "the
    whole identity document may have changed".
    """

    host_ip: str
    serial: int
    reason: str = ""
    keys: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.host_ip = str(self.host_ip)
        self.keys = tuple(self.keys)
        if self.serial < 0:
            raise WireFormatError(f"ident++ delta serial must be >= 0: {self.serial}")

    def to_payload(self) -> str:
        reason = self.reason or "-"
        if any(ch.isspace() for ch in reason):
            reason = reason.replace(" ", "_")
        lines = [f"DELTA {self.serial} {reason}"]
        lines.extend(self.keys)
        return "\n".join(lines)


@dataclass
class IdentUnsubscribe:
    """Cancel one subscriber's standing interest in one host."""

    host_ip: str
    subscriber: str

    def __post_init__(self) -> None:
        self.host_ip = str(self.host_ip)
        if not self.subscriber or any(ch.isspace() for ch in self.subscriber):
            raise WireFormatError(f"invalid ident++ subscriber name: {self.subscriber!r}")

    def to_payload(self) -> str:
        return f"UNSUBSCRIBE {self.subscriber}"


def parse_push_payload(payload: str, *, host_ip):
    """Parse one push-plane payload; dispatches on the first token.

    Returns the matching message dataclass.  ``host_ip`` supplies the
    addressing the payload itself does not carry (it rides in the IP
    header, like query/response addressing does).  Raises
    :class:`WireFormatError` on malformed input or an unsupported
    version.
    """
    lines = str(payload).splitlines()
    if not lines or not lines[0].split():
        raise WireFormatError("empty ident++ push payload")
    head = lines[0].split()
    kind = head[0].upper()
    rest = tuple(line.strip() for line in lines[1:] if line.strip())
    if kind == "SUBSCRIBE":
        if len(head) != 3:
            raise WireFormatError(f"malformed SUBSCRIBE line: {lines[0]!r}")
        try:
            version = int(head[1])
        except ValueError as exc:
            raise WireFormatError(f"malformed SUBSCRIBE version: {lines[0]!r}") from exc
        if version < WIRE_VERSION_PUSH:
            raise WireFormatError(
                f"SUBSCRIBE requires wire version >= {WIRE_VERSION_PUSH} (got {version})"
            )
        return IdentSubscribe(host_ip=host_ip, subscriber=head[2], keys=rest or tuple(DEFAULT_QUERY_KEYS), version=version)
    if kind == "SUBSCRIBE-ACK":
        if len(head) != 4 or head[2] not in ("ok", "refused"):
            raise WireFormatError(f"malformed SUBSCRIBE-ACK line: {lines[0]!r}")
        try:
            version, serial = int(head[1]), int(head[3])
        except ValueError as exc:
            raise WireFormatError(f"malformed SUBSCRIBE-ACK line: {lines[0]!r}") from exc
        return IdentSubscribeAck(
            host_ip=host_ip, accepted=head[2] == "ok",
            capabilities=rest, version=version, serial=serial,
        )
    if kind == "DELTA":
        if len(head) != 3:
            raise WireFormatError(f"malformed DELTA line: {lines[0]!r}")
        try:
            serial = int(head[1])
        except ValueError as exc:
            raise WireFormatError(f"malformed DELTA serial: {lines[0]!r}") from exc
        reason = "" if head[2] == "-" else head[2]
        return IdentDelta(host_ip=host_ip, serial=serial, reason=reason, keys=rest)
    if kind == "UNSUBSCRIBE":
        if len(head) != 2:
            raise WireFormatError(f"malformed UNSUBSCRIBE line: {lines[0]!r}")
        return IdentUnsubscribe(host_ip=host_ip, subscriber=head[1])
    raise WireFormatError(f"unknown ident++ push message kind: {head[0]!r}")


def parse_query_payload(
    payload: str,
    *,
    query_src_ip,
    query_dst_ip,
    target_role: str = ROLE_SOURCE,
) -> IdentQuery:
    """Parse a query payload back into an :class:`IdentQuery`.

    The flow's IP addresses are reconstructed from the query packet's IP
    header: the queried host is always the packet's destination, and the
    spoofed source is the flow's other end.  ``target_role`` says which
    end the queried host plays.
    """
    lines = [line for line in str(payload).splitlines()]
    if not lines:
        raise WireFormatError("empty ident++ query payload")
    proto, src_port, dst_port = _parse_first_line(lines[0])
    keys = tuple(line.strip() for line in lines[1:] if line.strip())
    if target_role == ROLE_SOURCE:
        flow = FlowSpec(
            src_ip=query_dst_ip, dst_ip=query_src_ip,
            proto=proto, src_port=src_port, dst_port=dst_port,
        )
    elif target_role == ROLE_DESTINATION:
        flow = FlowSpec(
            src_ip=query_src_ip, dst_ip=query_dst_ip,
            proto=proto, src_port=src_port, dst_port=dst_port,
        )
    else:
        raise WireFormatError(f"unknown ident++ query target role: {target_role!r}")
    return IdentQuery(flow=flow, target_role=target_role, keys=keys or tuple(DEFAULT_QUERY_KEYS))


def parse_query_packet(packet: Packet) -> IdentQuery:
    """Parse a query directly from a packet (role read from packet metadata)."""
    if not packet.is_tcp() or packet.tp_dst != IDENT_PP_PORT:
        raise WireFormatError("packet is not an ident++ query (wrong protocol/port)")
    role = packet.metadata.get("role", ROLE_SOURCE)
    payload = packet.payload if isinstance(packet.payload, str) else packet.payload_bytes().decode("utf-8")
    return parse_query_payload(
        payload, query_src_ip=packet.ip_src, query_dst_ip=packet.ip_dst, target_role=role
    )


def parse_response_payload(payload: str, flow: Optional[FlowSpec] = None) -> IdentResponse:
    """Parse a response payload into an :class:`IdentResponse`.

    When ``flow`` is given it overrides the proto/port line (the IP
    addresses are not carried in the payload); otherwise a placeholder
    flow with zeroed addresses is synthesised from the first line.
    """
    lines = str(payload).splitlines()
    if not lines:
        raise WireFormatError("empty ident++ response payload")
    proto, src_port, dst_port = _parse_first_line(lines[0])
    body = "\n".join(lines[1:])
    document = ResponseDocument.from_body(body)
    if flow is None:
        flow = FlowSpec(src_ip=0, dst_ip=0, proto=proto, src_port=src_port, dst_port=dst_port)
    else:
        if (flow.proto, flow.src_port, flow.dst_port) != (proto, src_port, dst_port):
            raise WireFormatError(
                "response first line does not match the expected flow: "
                f"{proto_name(proto)} {src_port} {dst_port} vs {flow}"
            )
    return IdentResponse(flow=flow, document=document)
