"""The ident++ protocol.

ident++ (§2, §3.2, §3.5 of the paper) is a richer descendant of the RFC
1413 Identification Protocol: firewalls/controllers query the two ends
of a flow on TCP port 783 and receive a list of key/value pairs grouped
into sections, which they feed into the PF+=2 policy.

This package contains the protocol itself, independent of any
controller:

* :mod:`repro.identpp.flowspec` — the 5-tuple flow definition,
* :mod:`repro.identpp.keyvalue` — key/value pairs, sections and the
  response document with "latest value" and ``*@`` concatenation
  semantics,
* :mod:`repro.identpp.wire` — the query/response wire format of §3.2,
* :mod:`repro.identpp.daemon_config` — the ``@app { ... }`` end-host
  configuration files of Figures 3, 4 and 6,
* :mod:`repro.identpp.daemon` — the end-host daemon, including the
  run-time key/value channel applications use,
* :mod:`repro.identpp.client` — the query client controllers use, with
  hooks for on-path interception,
* :mod:`repro.identpp.engine` — the caching/coalescing query engine a
  controller puts in front of its client (endpoint response cache,
  in-flight coalescing, negative cache for daemon-less hosts).
"""

from repro.identpp.client import QueryClient, QueryOutcome
from repro.identpp.daemon import IdentPPDaemon, RuntimeKeyRegistry
from repro.identpp.engine import QueryEngine
from repro.identpp.daemon_config import AppConfig, DaemonConfig, parse_daemon_config
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import KeyValueSection, ResponseDocument
from repro.identpp.wire import (
    IDENT_PP_PORT,
    IdentQuery,
    IdentResponse,
    parse_query_payload,
    parse_response_payload,
)

__all__ = [
    "QueryClient",
    "QueryEngine",
    "QueryOutcome",
    "IdentPPDaemon",
    "RuntimeKeyRegistry",
    "AppConfig",
    "DaemonConfig",
    "parse_daemon_config",
    "FlowSpec",
    "KeyValueSection",
    "ResponseDocument",
    "IDENT_PP_PORT",
    "IdentQuery",
    "IdentResponse",
    "parse_query_payload",
    "parse_response_payload",
]
