"""The ident++ 5-tuple flow definition.

"A flow under ident++ is defined as the 5-tuple {IP destination and
source addresses, IP protocol, TCP or UDP destination and source ports}"
(§2).  :class:`FlowSpec` is that 5-tuple; it is hashable so controllers
can key decision caches and pending-query tables on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.addresses import IPv4Address
from repro.netsim.packet import Packet, proto_name, proto_number


@dataclass(frozen=True)
class FlowSpec:
    """An ident++ flow: ``(src ip, dst ip, ip protocol, src port, dst port)``."""

    src_ip: IPv4Address
    dst_ip: IPv4Address
    proto: int
    src_port: int
    dst_port: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "src_ip", IPv4Address(self.src_ip))
        object.__setattr__(self, "dst_ip", IPv4Address(self.dst_ip))
        object.__setattr__(self, "proto", proto_number(self.proto))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_packet(cls, packet: Packet) -> "FlowSpec":
        """Extract the 5-tuple from an IP packet."""
        return cls(
            src_ip=packet.ip_src,
            dst_ip=packet.ip_dst,
            proto=packet.ip_proto,
            src_port=packet.tp_src,
            dst_port=packet.tp_dst,
        )

    @classmethod
    def tcp(cls, src_ip, dst_ip, src_port: int, dst_port: int) -> "FlowSpec":
        """Convenience constructor for TCP flows."""
        return cls(src_ip=src_ip, dst_ip=dst_ip, proto="tcp", src_port=src_port, dst_port=dst_port)

    @classmethod
    def udp(cls, src_ip, dst_ip, src_port: int, dst_port: int) -> "FlowSpec":
        """Convenience constructor for UDP flows."""
        return cls(src_ip=src_ip, dst_ip=dst_ip, proto="udp", src_port=src_port, dst_port=dst_port)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def reversed(self) -> "FlowSpec":
        """Return the flow in the opposite direction (for return traffic)."""
        return FlowSpec(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            proto=self.proto,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )

    def proto_name(self) -> str:
        """Return the protocol name (``tcp``/``udp``/...)."""
        return proto_name(self.proto)

    def matches_packet(self, packet: Packet) -> bool:
        """Return ``True`` if ``packet`` belongs to this exact flow (same direction)."""
        return packet.is_ip() and FlowSpec.from_packet(packet) == self

    def as_tuple(self) -> tuple:
        """Return the plain tuple ``(src_ip, dst_ip, proto, src_port, dst_port)``."""
        return (self.src_ip, self.dst_ip, self.proto, self.src_port, self.dst_port)

    def endpoint_ips(self) -> tuple[IPv4Address, IPv4Address]:
        """Return ``(src_ip, dst_ip)``."""
        return (self.src_ip, self.dst_ip)

    def __str__(self) -> str:
        return (
            f"{self.proto_name()} {self.src_ip}:{self.src_port} -> "
            f"{self.dst_ip}:{self.dst_port}"
        )
