"""The ident++ end-host daemon (§3.5).

"End-hosts run a simple userspace ident++ daemon that responds with the
key-value pairs to controller queries.  The daemon can answer queries
both when the end-host is the source and when it is a destination that
has yet to accept a connection."

The daemon gathers key/value pairs from three places:

1. **The operating system** — the process and user owning the queried
   5-tuple (found lsof-style through the host's socket table), the
   application's identity keys (name, executable hash, version, vendor)
   and host-level facts such as the installed OS patch level.
2. **Configuration files** — ``@app`` blocks from the system and user
   configuration directories (:mod:`repro.identpp.daemon_config`),
   possibly containing signed ``requirements`` the controller's
   ``allowed()``/``verify()`` functions consume.
3. **The application at run time** — pairs published over the
   Unix-domain-socket channel, modelled by :class:`RuntimeKeyRegistry`
   (e.g. a browser marking which flows were user-initiated).

Pairs from different sources go into different response sections, as the
wire format requires.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.exceptions import IdentPPError, QueryError
from repro.hosts.endhost import EndHost
from repro.hosts.processes import Process
from repro.identpp.daemon_config import DaemonConfig
from repro.identpp.flowspec import FlowSpec
from repro.identpp.keyvalue import KeyValueSection, ResponseDocument
from repro.identpp.wire import (
    CAP_SUBSCRIBE,
    IDENT_PP_PORT,
    ROLE_DESTINATION,
    ROLE_SOURCE,
    WIRE_VERSION_PULL,
    WIRE_VERSION_PUSH,
    IdentDelta,
    IdentQuery,
    IdentResponse,
    IdentSubscribe,
    IdentSubscribeAck,
    parse_query_packet,
)
from repro.netsim.packet import Packet
from repro.netsim.statistics import Counter

#: Time the daemon takes to assemble one response (process lookup +
#: config file reads), charged to flow-setup latency.
DEFAULT_PROCESSING_DELAY = 500e-6


class RuntimeKeyRegistry:
    """Run-time key/value pairs published by applications.

    "The application can provide key-value pairs to the ident++ daemon at
    run-time ... sent to the ident++ daemon via a Unix domain socket"
    (§3.5).  The registry keys published pairs by flow so a single
    process can label individual flows differently (the browser example).
    """

    def __init__(self) -> None:
        self._by_flow: dict[FlowSpec, dict[str, str]] = {}
        self._by_pid: dict[int, dict[str, str]] = {}
        #: Called with a reason string whenever published pairs change.
        #: The owning daemon wires this to its cache-invalidation
        #: listeners so controller-side endpoint caches drop answers
        #: assembled before the publish.
        self.on_publish: Optional[Callable[[str], None]] = None

    def publish_for_flow(self, flow: FlowSpec, pairs: dict[str, str]) -> None:
        """Publish pairs that apply to one specific flow."""
        self._by_flow.setdefault(flow, {}).update({str(k): str(v) for k, v in pairs.items()})
        self._published()

    def publish_for_process(self, process: Process, pairs: dict[str, str]) -> None:
        """Publish pairs that apply to every flow of one process."""
        self._by_pid.setdefault(process.pid, {}).update({str(k): str(v) for k, v in pairs.items()})
        self._published()

    def _published(self) -> None:
        if self.on_publish is not None:
            self.on_publish("runtime-publish")

    def pairs_for(self, flow: FlowSpec, process: Optional[Process]) -> dict[str, str]:
        """Return the merged run-time pairs for a flow (flow-specific wins)."""
        merged: dict[str, str] = {}
        if process is not None:
            merged.update(self._by_pid.get(process.pid, {}))
            merged.update(process.runtime_keys)
        merged.update(self._by_flow.get(flow, {}))
        return merged

    def has_flow_pairs(self, flow: FlowSpec) -> bool:
        """Return whether any pairs were published for this *specific* flow."""
        return bool(self._by_flow.get(flow))

    def clear(self) -> None:
        """Forget all published pairs."""
        self._by_flow.clear()
        self._by_pid.clear()
        self._published()


class IdentPPDaemon:
    """The ident++ daemon running on one end-host."""

    def __init__(
        self,
        host: EndHost,
        *,
        processing_delay: float = DEFAULT_PROCESSING_DELAY,
        host_facts: Optional[dict[str, str]] = None,
        serialize: bool = False,
        push_capable: bool = True,
    ) -> None:
        self.host = host
        self.processing_delay = processing_delay
        #: Wire-version-2 daemons accept SUBSCRIBE and publish deltas;
        #: legacy (v1) daemons refuse the handshake and the controller
        #: falls back to the pull path untouched.
        self.push_capable = push_capable
        #: §3.5's "simple userspace ident++ daemon" is a serial process:
        #: with ``serialize`` on, each answer occupies the daemon for
        #: ``processing_delay``, so a flash crowd's queries queue behind
        #: each other and a popular server's daemon becomes a measurable
        #: bottleneck.  Off by default so scenario timelines are stable.
        self.serialize = serialize
        self._busy_until = 0.0
        self.system_config = DaemonConfig()
        self.user_config = DaemonConfig()
        self.runtime = RuntimeKeyRegistry()
        self.runtime.on_publish = self.notify_invalidation
        #: Host-level facts reported on every response (OS name, patch
        #: level, ...).  Figure 8's policy checks ``os-patch``.
        self.host_facts: dict[str, str] = dict(host_facts or {})
        #: When the host is compromised an attacker may replace responses
        #: wholesale ("The attacker would gain control of the ident++
        #: daemon and can send false ident++ responses", §5.3).
        self.spoofed_pairs: Optional[dict[str, str]] = None
        self.queries_answered = Counter(f"{host.name}.identpp.queries_answered")
        self.queries_failed = Counter(f"{host.name}.identpp.queries_failed")
        self.deltas_published = Counter(f"{host.name}.identpp.deltas_published")
        # Controller-side endpoint caches (QueryEngine) register here to
        # hear about anything that changes future answers.
        self._invalidation_listeners: list[Callable[[str], None]] = []
        #: Standing push subscriptions: subscriber name → delta sink.
        self._delta_subscribers: dict[str, Callable[[IdentDelta], None]] = {}
        #: Serial number of the *last* identity change this daemon saw.
        #: Bumped on every invalidation — subscribers or not — so a
        #: controller re-subscribing after failover can tell from the
        #: ack's serial whether it missed deltas during the gap.
        self.delta_serial = 0
        # Register on TCP 783 so queries arriving over the network reach us.
        host.register_service(IDENT_PP_PORT, self._service_handler)
        # Make the daemon discoverable by the query client / controllers.
        setattr(host, "identpp_daemon", self)
        # A socket gaining or losing an owner changes which process a
        # 5-tuple resolves to, which changes the answer.
        host.sockets.add_change_listener(self._on_socket_change)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def load_system_config(self, text: str, source: str = "system") -> None:
        """Load an administrator-controlled configuration file."""
        self.system_config.load(text, source=source)
        self.notify_invalidation("config-load")

    def load_user_config(self, text: str, source: str = "user") -> None:
        """Load a user-controlled configuration file."""
        self.user_config.load(text, source=source)
        self.notify_invalidation("config-load")

    def set_host_fact(self, key: str, value: str) -> None:
        """Set a host-level fact (e.g. ``os-patch: MS08-067``)."""
        self.host_facts[str(key)] = str(value)
        self.notify_invalidation("host-fact")

    def spoof_responses(self, pairs: Optional[dict[str, str]]) -> None:
        """Make the daemon lie (attacker-controlled host).  ``None`` restores honesty."""
        self.spoofed_pairs = dict(pairs) if pairs is not None else None
        self.notify_invalidation("spoofed")

    # ------------------------------------------------------------------
    # Cache-invalidation fan-out
    # ------------------------------------------------------------------

    def add_invalidation_listener(self, listener: Callable[[str], None]) -> None:
        """Register a callback fired whenever future answers may change.

        Fired on runtime-key publishes, configuration loads, host-fact
        changes, spoofing toggles, host compromise and socket-table
        owner changes.  The controller-side
        :class:`~repro.identpp.engine.QueryEngine` subscribes here the
        first time it caches one of this daemon's answers.
        """
        if listener not in self._invalidation_listeners:
            self._invalidation_listeners.append(listener)

    def remove_invalidation_listener(self, listener: Callable[[str], None]) -> None:
        """Unregister an invalidation callback (no-op when absent).

        An engine dropping its interest in this host must call this, or
        the daemon keeps a strong reference to the dead engine's closure
        forever — the stale-subscription leak the push plane's demotion
        path exists to prevent.
        """
        try:
            self._invalidation_listeners.remove(listener)
        except ValueError:
            pass

    def notify_invalidation(self, reason: str) -> None:
        """Tell every subscribed endpoint cache to drop this host's answers.

        Every invalidation is also one identity *delta*: the serial is
        bumped unconditionally (even with no subscribers, so a later
        subscriber's baseline reflects changes it never saw), and each
        standing push subscription receives an :class:`IdentDelta`
        carrying the new serial.
        """
        self.delta_serial += 1
        for listener in list(self._invalidation_listeners):
            listener(reason)
        if self._delta_subscribers:
            delta = IdentDelta(
                host_ip=str(self.host.ip), serial=self.delta_serial, reason=reason,
            )
            for deliver in list(self._delta_subscribers.values()):
                self.deltas_published.increment()
                deliver(delta)

    def _on_socket_change(self) -> None:
        self.notify_invalidation("socket-table")

    # ------------------------------------------------------------------
    # Push subscriptions (wire version 2)
    # ------------------------------------------------------------------

    def capabilities(self) -> tuple[str, ...]:
        """Return the wire capabilities this daemon advertises."""
        return (CAP_SUBSCRIBE,) if self.push_capable else ()

    def subscribe(
        self, message: IdentSubscribe, deliver: Callable[[IdentDelta], None]
    ) -> IdentSubscribeAck:
        """Handle a SUBSCRIBE: capability negotiation plus registration.

        A push-capable daemon accepts a version-2 SUBSCRIBE, registers
        ``deliver`` as the subscriber's delta sink (latest registration
        per subscriber name wins) and acks with its current
        :attr:`delta_serial` as the subscriber's baseline.  A legacy
        daemon — or a downlevel SUBSCRIBE — is refused with a version-1
        ack carrying no capabilities, which tells the controller to keep
        using the pull path.
        """
        if not self.push_capable or message.version < WIRE_VERSION_PUSH:
            return IdentSubscribeAck(
                host_ip=str(self.host.ip), accepted=False,
                capabilities=(), version=WIRE_VERSION_PULL, serial=0,
            )
        self._delta_subscribers[message.subscriber] = deliver
        return IdentSubscribeAck(
            host_ip=str(self.host.ip), accepted=True,
            capabilities=self.capabilities(), version=WIRE_VERSION_PUSH,
            serial=self.delta_serial,
        )

    def unsubscribe(self, subscriber: str) -> bool:
        """Cancel one subscriber's standing interest; True when it existed."""
        return self._delta_subscribers.pop(subscriber, None) is not None

    def subscriber_count(self) -> int:
        """Return how many standing push subscriptions this daemon holds."""
        return len(self._delta_subscribers)

    # ------------------------------------------------------------------
    # Answering queries
    # ------------------------------------------------------------------

    def answer(self, query: IdentQuery) -> IdentResponse:
        """Build the response document for a query.

        The queried host must be an endpoint of the flow in the role the
        query names; otherwise :class:`~repro.exceptions.QueryError` is
        raised (a real daemon would simply not receive such a query).
        """
        flow = query.flow
        expected_ip = flow.src_ip if query.target_role == ROLE_SOURCE else flow.dst_ip
        if expected_ip != self.host.ip:
            self.queries_failed.increment()
            raise QueryError(
                f"daemon on {self.host.name} ({self.host.ip}) queried as {query.target_role} "
                f"of flow {flow}, which names {expected_ip}"
            )
        if self.spoofed_pairs is not None:
            self.queries_answered.increment()
            document = ResponseDocument()
            document.add_section(dict(self.spoofed_pairs), source=f"{self.host.name}:spoofed")
            return IdentResponse(flow=flow, document=document, responder=self.host.name)

        as_destination = query.target_role == ROLE_DESTINATION
        process = self.host.sockets.process_for_flow(
            flow.src_ip, flow.dst_ip, flow.proto, flow.src_port, flow.dst_port,
            as_destination=as_destination,
        )
        document = ResponseDocument()
        document.add_section(self._base_section(process))
        for section in self._config_sections(process):
            document.add_section(section)
        runtime_pairs = self.runtime.pairs_for(flow, process)
        if runtime_pairs:
            document.add_section(
                KeyValueSection.from_dict(runtime_pairs, source=f"{self.host.name}:runtime")
            )
        self.queries_answered.increment()
        return IdentResponse(flow=flow, document=document, responder=self.host.name)

    def answer_is_shareable(self, query: IdentQuery) -> bool:
        """Return whether the answer depends only on (host, role, proto, port).

        A controller-side endpoint cache may serve one flow's answer to
        *other* flows hitting the same host/role/port only when nothing
        in the answer is specific to the queried flow.  That fails in
        two cases: pairs were published for this exact flow
        (:meth:`RuntimeKeyRegistry.publish_for_flow`), or the 5-tuple
        resolves to a *connected* socket — a per-connection worker
        process whose identity must not be attributed to other flows.
        A listening socket's answer (the hot-server case) is shared
        safely; so is a spoofed answer (the attacker lies to everyone
        alike).
        """
        if self.spoofed_pairs is not None:
            return True
        flow = query.flow
        if self.runtime.has_flow_pairs(flow):
            return False
        as_destination = query.target_role == ROLE_DESTINATION
        socket = self.host.sockets.lookup_flow(
            flow.src_ip, flow.dst_ip, flow.proto, flow.src_port, flow.dst_port,
            as_destination=as_destination,
        )
        return socket is None or socket.is_listening

    def _base_section(self, process: Optional[Process]) -> KeyValueSection:
        """Build the OS-derived section (user, group, application identity, host facts)."""
        section = KeyValueSection(source=f"{self.host.name}:daemon")
        if process is None:
            section.add("responder", self.host.name)
            section.add("no-process", "true")
        else:
            section.add("responder", self.host.name)
            section.add("userID", process.user.name)
            section.add("groupID", " ".join(sorted(process.user.groups)) or process.user.name)
            section.add("pid", str(process.pid))
            for key, value in process.application.identity_keys().items():
                section.add(key, value)
        for key, value in sorted(self.host_facts.items()):
            section.add(key, value)
        return section

    def _config_sections(self, process: Optional[Process]) -> list[KeyValueSection]:
        """Return the configuration-file sections that apply to the owning process."""
        sections: list[KeyValueSection] = []
        if process is None:
            return sections
        path = process.exe_path
        sections.extend(self.system_config.sections_for_path(path))
        sections.extend(self.user_config.sections_for_path(path))
        return sections

    # ------------------------------------------------------------------
    # Network-facing entry points
    # ------------------------------------------------------------------

    def _service_handler(self, packet: Packet, host: EndHost) -> None:
        """Handle a query packet arriving over the simulated network."""
        try:
            query = parse_query_packet(packet)
            response = self.answer(query)
        except (IdentPPError, UnicodeDecodeError):
            # Malformed or mis-addressed queries off the wire are the
            # daemon's expected failure class: count and stay silent (a
            # real identd ignores garbage).  Programming errors propagate
            # — swallowing them here used to hide real bugs as timeouts.
            self.queries_failed.increment()
            return
        reply = response.to_packet(packet)
        delay = self.processing_delay
        if host.sim is not None:
            host.sim.schedule(delay, host.transmit, reply, label=f"identpp-reply:{host.name}")
        else:
            host.transmit(reply)

    def query_local(
        self, query: IdentQuery, *, now: Optional[float] = None
    ) -> tuple[IdentResponse, float]:
        """Answer a query without going through the network.

        Returns ``(response, processing delay)``; the query client adds
        network round-trip time on top.  With :attr:`serialize` on and a
        clock reading supplied, the answer occupies the daemon's single
        thread — concurrent queries queue, and the returned delay is the
        caller's *wait-plus-service* time, not just the service time.
        """
        response = self.answer(query)
        if not self.serialize or now is None:
            return response, self.processing_delay
        start = max(now, self._busy_until)
        self._busy_until = start + self.processing_delay
        return response, self._busy_until - now

    def __repr__(self) -> str:
        return f"IdentPPDaemon(host={self.host.name!r})"
